//! The cross-process transport: event-driven sockets, plus optional
//! shared-memory rings (`shm-xproc`) for co-located peers.
//!
//! Each OS process hosts exactly one rank. All socket I/O — every inbound
//! and outbound connection, the data listener, connect retries, the idle
//! heartbeat — is owned by a single [`super::progress::Engine`] thread, so
//! the per-rank thread count is *flat in job size* (the seed design spent
//! a reader + writer thread pair per peer). [`SocketTransport::post`]
//! never touches the wire: it encodes the frame, appends it to the peer's
//! outbound queue and rings the engine's eventfd doorbell.
//!
//! Connections are *unidirectional*: to send to rank `d`, the engine
//! lazily connects to `d`'s data listener (address from the rendezvous
//! table) and announces itself with a `Hello` frame; per-(source → dest)
//! FIFO order is queue order, which is `post` call order. Incoming
//! envelopes land in the local rank's [`Mailbox`], so matching semantics
//! (FIFO per source lane, `ANY_SOURCE` arrival stamps) are *identical* to
//! the shared-memory backend by construction.
//!
//! # shm-xproc
//!
//! Under `KAMPING_TRANSPORT=shm-xproc`, rank pairs that are both in the
//! co-located set exchange frames over mmap'd SPSC byte rings
//! ([`super::ring`]) instead of sockets: `post` writes the frame straight
//! into the destination's inbox ring (same wire format, two memcpy parts:
//! header + payload) and a single ring-consumer thread per rank drains all
//! inbound rings. Control frames travel the ring too, so `Finished` can
//! never overtake data on the same channel. Pairs that are *not* both
//! local fall back to the socket path per peer — mixed topologies share
//! one transport.
//!
//! Synchronous-mode sends travel with a registry key (`ack_id`): the
//! receiving side rebuilds the envelope with an [`AckCell`] whose hook
//! sends an `Ack` frame back when the message is matched, and the origin
//! flips the registered cell (and notifies the [`Hub`]) when that frame
//! arrives. Frames dropped because a peer became unreachable settle their
//! acks locally, so no sender waits on a frame that will never arrive.
//!
//! Failure detection is two-plane: a connect/write/read error on a data
//! connection marks the peer failed *locally*, and the rendezvous monitor
//! on rank 0 (see [`super::launch`]) catches crashed processes globally
//! and broadcasts `Failed` to everyone. A peer whose `Finished` control
//! frame was seen closes its connections *cleanly*; EOFs from it are not
//! failures. Ring producers poll the same verdicts while blocked on a
//! full ring, so a crashed consumer cannot wedge a sender.

use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::trace::{EventKind, TraceCtx};
use crate::transport::{
    members_to_mask, AckCell, ControlMsg, ControlSink, Envelope, Hub, Locality, Mailbox, Payload,
    Transport,
};

use super::addr::{Addr, Listener};
use super::progress::{Engine, EngineHooks, OutFrame};
use super::ring::{inbox_path, Inbox, RingTx};
use super::wire::{data_frame_header, encode_prefixed, Frame, MAX_FRAME};

/// How often a parked ring consumer re-checks the shutdown flag.
const CONSUMER_PARK_SLICE: Duration = Duration::from_millis(100);

/// Empty-drain passes the ring consumer makes (yielding, so a co-scheduled
/// producer can run) before parking on the doorbell futex. Deliberately
/// generous: while the consumer spins, `CONSUMER_SLEEP` stays clear and
/// producers skip the doorbell `futex_wake` syscall entirely — on the
/// latency path a *waiting receiver* drains the rings itself (the mailbox
/// progress poll), so the consumer's job is to yield cheaply, not to wake
/// fast. `KAMPING_RING_SPIN` overrides for experiments.
const CONSUMER_IDLE_PASSES: u32 = 256;

fn consumer_idle_passes() -> u32 {
    std::env::var("KAMPING_RING_SPIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(CONSUMER_IDLE_PASSES)
}

/// Where control frames go before/after the universe binds itself.
enum SinkState {
    /// No sink yet: queue events, replayed on bind.
    Pending(Vec<ControlMsg>),
    /// Bound to the universe (weakly — the universe owns the transport).
    Bound(Weak<dyn ControlSink>),
}

/// Everything the ring consumer thread needs about the shm-xproc side.
pub(crate) struct XprocSetup {
    /// This rank's own inbox (created before the rendezvous join, so every
    /// peer that holds the address table can already map it).
    pub inbox: Inbox,
    /// Directory holding all inbox files.
    pub dir: std::path::PathBuf,
    /// The co-located rank set (includes this rank). A pair uses rings iff
    /// *both* ends are in the set.
    pub local: Vec<usize>,
    /// Per-channel ring capacity (bytes, power of two).
    pub ring_bytes: usize,
}

/// Inbound-ring drain state: the per-source reassembly buffers plus the
/// inbox they fill from. Behind a mutex in [`Shared`] because *two* kinds
/// of thread drain: the dedicated ring consumer (always, so a computing
/// rank cannot wedge its producers) and any receiver blocked in
/// [`Mailbox::wait`]-style calls, which pulls its own frames via the
/// mailbox progress poll to skip the consumer-thread handoff.
struct RingRx {
    inbox: Arc<Inbox>,
    /// `(source rank, partial-frame reassembly buffer)` per inbound ring.
    chans: Vec<(usize, Vec<u8>)>,
}

/// State shared between the transport handle, the progress engine, the
/// ring consumer and ack hooks.
struct Shared {
    /// Back-reference to the owning `Arc` (set by `Arc::new_cyclic`), so
    /// ack hooks — which must own the state they fire into — can be built
    /// from `&self` contexts like the engine callbacks.
    me: Weak<Shared>,
    my_rank: usize,
    size: usize,
    hub: Arc<Hub>,
    /// The one local rank's mailbox ([`Mailbox::post`] is the only entry
    /// point for incoming envelopes, remote and loopback alike).
    mailbox: Mailbox,
    /// Outbound ring per destination, for peers co-located with this rank
    /// (unset = socket path). The mutex serializes producers: the main
    /// thread and the chaos delivery thread can both post. Slots are
    /// `OnceLock` because elastic joiners are installed after construction.
    rings: Vec<OnceLock<Mutex<RingTx>>>,
    /// Inbound-ring drain state (`None` on the pure-socket path).
    rx: Option<Mutex<RingRx>>,
    /// Sources whose inbound-ring channel must be added on the next drain.
    /// Written by `install_peer` (which may run *inside* a drain, via
    /// `route_frame`) — a separate lock avoids re-entering the `rx` mutex.
    pending_chans: Mutex<Vec<usize>>,
    /// Ranks this process knows to exist: the launch membership plus every
    /// admitted joiner. `size` is the *capacity* of the universe; slots
    /// outside this set were never occupied and must not be contacted.
    active: Mutex<HashSet<usize>>,
    /// shm-xproc ring directory (`None` on the pure-socket path); used to
    /// open rings to late joiners and to unlink departed ranks' inboxes.
    xproc_dir: Option<std::path::PathBuf>,
    /// Per-channel ring capacity for lazily opened joiner rings.
    ring_bytes: usize,
    sink: Mutex<SinkState>,
    /// Ranks whose `Finished` control frame has been applied: EOF from
    /// them is a clean close, not a failure.
    finished_seen: Mutex<HashSet<usize>>,
    /// Ranks seen as failed — ring producers blocked on their inbox abort.
    failed_seen: Mutex<HashSet<usize>>,
    /// In-flight synchronous-mode sends awaiting a wire ack, by ack id.
    acks: Mutex<HashMap<u64, Arc<AckCell>>>,
    next_ack_id: AtomicU64,
    /// Set at shutdown: suppresses failure marks from teardown-induced
    /// connection errors and unblocks ring producers/consumer.
    down: AtomicBool,
    /// Event ring of this universe; control-plane frames are recorded here
    /// (and *only* here — they never touch the profiling counters).
    trace: Arc<TraceCtx>,
    /// `TraceCtx::now_ns` of the last heartbeat ping sent to each peer;
    /// 0 = none outstanding. A `Pong` arrival closes the loop into the
    /// heartbeat-RTT histogram. Overlapping pings overwrite (the engine
    /// pings far slower than any RTT, so the skew is negligible).
    last_ping_ns: Vec<AtomicU64>,
    /// The socket progress engine (set once, right after construction —
    /// the engine's hooks point back at this struct).
    engine: OnceLock<Engine>,
}

impl Shared {
    fn engine(&self) -> &Engine {
        self.engine.get().expect("engine wired at construction")
    }

    /// Routes a control event into the universe state (or the pending
    /// queue before the sink is bound). Never re-broadcasts.
    fn deliver_control(&self, msg: ControlMsg) {
        match msg {
            ControlMsg::Finished { rank } => {
                self.finished_seen
                    .lock()
                    .expect("finished set poisoned")
                    .insert(rank);
                self.unlink_ring_file(rank);
            }
            ControlMsg::Failed { rank } => {
                self.failed_seen
                    .lock()
                    .expect("failed set poisoned")
                    .insert(rank);
                self.unlink_ring_file(rank);
            }
            _ => {}
        }
        let sink = {
            let mut st = self.sink.lock().expect("sink poisoned");
            match &mut *st {
                SinkState::Pending(q) => {
                    q.push(msg);
                    return;
                }
                SinkState::Bound(w) => w.clone(),
            }
        };
        if let Some(sink) = sink.upgrade() {
            sink.apply(msg);
        }
    }

    /// A departed rank's inbox ring file serves nobody: ranks are never
    /// reused, so unlink it the moment `Failed`/`Finished` is applied
    /// (mapped ring memory stays valid for any producer mid-write; the
    /// unlink only drops the directory entry). Keeps `KAMPING_SHM_DIR`
    /// from accumulating dead ring files across kill → shrink → grow
    /// cycles in long-running elastic jobs.
    fn unlink_ring_file(&self, rank: usize) {
        if rank == self.my_rank {
            return;
        }
        if let Some(dir) = &self.xproc_dir {
            let _ = std::fs::remove_file(inbox_path(dir, rank));
        }
    }

    /// Makes a late-admitted joiner reachable: records its data address
    /// with the engine, adds it to the active set and — when this process
    /// is on the xproc path and the joiner's inbox ring exists here (i.e.
    /// it is co-located) — opens the outbound ring and schedules its
    /// inbound channel for the next drain. Idempotent; ranks are never
    /// reused so a second install for the same rank is a no-op.
    fn install_peer(&self, rank: usize, addr: &Addr) {
        if rank >= self.size || rank == self.my_rank {
            return;
        }
        self.engine().set_addr(rank, addr.clone());
        if !self
            .active
            .lock()
            .expect("active set poisoned")
            .insert(rank)
        {
            return;
        }
        if let Some(dir) = &self.xproc_dir {
            let path = inbox_path(dir, rank);
            if path.exists() {
                if let Ok(tx) = RingTx::open(dir, rank, self.my_rank, self.size, self.ring_bytes) {
                    let _ = self.rings[rank].set(Mutex::new(tx));
                }
                self.pending_chans
                    .lock()
                    .expect("pending chans poisoned")
                    .push(rank);
            }
        }
    }

    /// A data channel to/from `rank` broke. Outside of shutdown, and
    /// unless the rank already announced a clean finish, that is evidence
    /// of its death.
    fn peer_lost(&self, rank: usize) {
        if self.down.load(Ordering::Acquire) {
            return;
        }
        // Capacity slots that never joined cannot die.
        if !self
            .active
            .lock()
            .expect("active set poisoned")
            .contains(&rank)
        {
            return;
        }
        if self
            .finished_seen
            .lock()
            .expect("finished set poisoned")
            .contains(&rank)
        {
            return;
        }
        self.deliver_control(ControlMsg::Failed { rank });
    }

    /// Records a non-data frame sent to `peer` in the event ring.
    fn trace_control(&self, peer: usize, frame: &'static str) {
        if self.trace.tracing() {
            self.trace.record(EventKind::Control {
                rank: self.my_rank as u32,
                peer: peer as u32,
                frame,
            });
        }
    }

    /// Sends `frame` to `dest` over its ring (co-located peer) or the
    /// socket engine. Returns false if the peer is unreachable — already
    /// or about to be marked failed.
    fn send_frame(&self, dest: usize, frame: Frame) -> bool {
        match &frame {
            Frame::Data { .. } => {}
            Frame::Ack { .. } => self.trace_control(dest, "ack"),
            Frame::Control(_) => self.trace_control(dest, "control"),
            Frame::Ping => self.trace_control(dest, "ping"),
            Frame::Pong => self.trace_control(dest, "pong"),
            Frame::Grow { .. } => self.trace_control(dest, "grow"),
            _ => self.trace_control(dest, "rendezvous"),
        }
        if let Some(ring) = self.rings[dest].get() {
            return self.ring_send(dest, ring, &frame);
        }
        let ack_id = match &frame {
            Frame::Data { ack_id, .. } => *ack_id,
            _ => 0,
        };
        self.engine().enqueue(
            dest,
            OutFrame {
                bytes: encode_prefixed(&frame),
                ack_id,
            },
        )
    }

    /// Writes one frame into `dest`'s inbox ring, blocking (abortably) on
    /// space. `Data` payloads skip the intermediate encode buffer: header
    /// and payload go in as two parts of one frame.
    fn ring_send(&self, dest: usize, ring: &Mutex<RingTx>, frame: &Frame) -> bool {
        let abort = || {
            self.down.load(Ordering::Acquire)
                || self
                    .failed_seen
                    .lock()
                    .expect("failed set poisoned")
                    .contains(&dest)
                || self
                    .finished_seen
                    .lock()
                    .expect("finished set poisoned")
                    .contains(&dest)
        };
        let wait_hint = |parked: Duration| {
            if self.trace.metrics().enabled() {
                use crate::metrics::Counter;
                let rm = self.trace.metrics().rank(self.my_rank);
                rm.add(Counter::RingFutexSleeps, 1);
                rm.add(Counter::RingFutexSleepNs, parked.as_nanos() as u64);
            }
            if self.trace.tracing() {
                self.trace.record(EventKind::RingWait {
                    rank: self.my_rank as u32,
                    peer: dest as u32,
                    role: "send",
                    dur_ns: parked.as_nanos() as u64,
                });
            }
        };
        let tx = ring.lock().expect("ring producer poisoned");
        if self.trace.metrics().enabled() {
            self.trace.metrics().rank(self.my_rank).gauge_max(
                crate::metrics::Gauge::RingOccupancyMax,
                tx.occupancy() as u64,
            );
        }
        match frame {
            Frame::Data {
                src,
                tag,
                ctx,
                ack_id,
                payload,
            } => {
                let hdr = data_frame_header(*src, *tag, *ctx, *ack_id, payload.len());
                tx.write(&[&hdr[..], payload.as_slice()], abort, wait_hint)
            }
            other => tx.write(&[&encode_prefixed(other)], abort, wait_hint),
        }
    }

    /// Ack hook target: tells `origin` that its synchronous-mode send
    /// `ack_id` has been matched.
    fn send_ack(&self, origin: usize, ack_id: u64) {
        self.send_frame(origin, Frame::Ack { ack_id });
    }

    /// Completes a registered ack locally (destination unreachable: the
    /// send is dropped, but the sender must not wait forever — same
    /// semantics as posting to a failed rank on the shm backend).
    fn complete_ack_locally(&self, ack_id: u64) {
        let cell = self
            .acks
            .lock()
            .expect("ack registry poisoned")
            .remove(&ack_id);
        if let Some(cell) = cell {
            cell.set();
            self.hub.notify();
        }
    }

    /// Routes one arrived data-plane frame — shared by the socket engine
    /// and the ring consumer.
    fn route_frame(&self, src: usize, frame: Frame) {
        match frame {
            Frame::Data {
                src: env_src,
                tag,
                ctx,
                ack_id,
                payload,
            } => {
                if env_src >= self.size {
                    return; // protocol violation; drop
                }
                let ack = (ack_id != 0).then(|| {
                    let origin = env_src;
                    let me = self.me.clone();
                    Arc::new(AckCell::with_hook(move || {
                        if let Some(sh) = me.upgrade() {
                            sh.send_ack(origin, ack_id);
                        }
                    }))
                });
                self.mailbox.post(Envelope {
                    src: env_src,
                    tag,
                    ctx,
                    payload: Payload::from_vec(payload),
                    ack,
                });
            }
            Frame::Ack { ack_id } => self.complete_ack_locally(ack_id),
            Frame::Control(msg) => self.deliver_control(msg),
            Frame::Ping => {
                // Echo so the pinger can close its RTT loop. Enqueue-only
                // on the socket path (never blocks the progress thread).
                if src < self.size {
                    self.send_frame(src, Frame::Pong);
                }
            }
            Frame::Grow {
                epoch,
                joiner,
                addr,
                members,
            } => {
                // A joiner was admitted: make it reachable *before* the
                // epoch event is visible, so the first operation on the
                // grown communicator can already route to it.
                if joiner < self.size && members.iter().all(|&m| m < 64) {
                    if let Ok(a) = Addr::parse(&addr) {
                        self.install_peer(joiner, &a);
                    }
                    self.deliver_control(ControlMsg::Grow {
                        epoch,
                        joiner,
                        members: members_to_mask(&members),
                    });
                }
            }
            Frame::Pong => {
                if src < self.size && self.trace.metrics().enabled() {
                    let sent = self.last_ping_ns[src].swap(0, Ordering::Relaxed);
                    if sent != 0 {
                        let rtt = self.trace.now_ns().saturating_sub(sent);
                        self.trace
                            .metrics()
                            .rank(self.my_rank)
                            .observe(crate::metrics::Hist::HeartbeatRtt, rtt);
                    }
                }
            }
            _ => {
                // Rendezvous-plane frame on the data plane: tolerated as a
                // no-op (the engine already dropped truly unidentifiable
                // connections).
                let _ = src;
            }
        }
    }

    /// Drains every inbound ring once, reassembling length-prefixed frames
    /// (they may arrive in chunks — a frame larger than the ring streams
    /// through it) and routing them exactly like socket arrivals. Returns
    /// whether any bytes moved.
    fn drain_rx(&self, rx: &mut RingRx) -> bool {
        {
            let mut pend = self.pending_chans.lock().expect("pending chans poisoned");
            for src in pend.drain(..) {
                if !rx.chans.iter().any(|(s, _)| *s == src) {
                    rx.chans.push((src, Vec::new()));
                }
            }
        }
        let RingRx { inbox, chans } = rx;
        let mut progressed = false;
        for (src, buf) in chans.iter_mut() {
            if inbox.recv_into(*src, buf, usize::MAX) > 0 {
                progressed = true;
            }
            let mut pos = 0;
            while buf.len() - pos >= 4 {
                let len =
                    u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                if len > MAX_FRAME {
                    // Corrupt stream; skip everything buffered. The
                    // failure planes cover a truly broken peer.
                    pos = buf.len();
                    break;
                }
                if buf.len() - pos - 4 < len {
                    break;
                }
                if let Ok(frame) = Frame::decode(&buf[pos + 4..pos + 4 + len]) {
                    self.route_frame(*src, frame);
                }
                pos += 4 + len;
            }
            if pos > 0 {
                buf.drain(..pos);
            }
        }
        progressed
    }

    /// Opportunistic drain from a *waiting receiver* (the mailbox progress
    /// poll): skips the consumer-thread handoff entirely when the lock is
    /// free, backs off (`false`) when the consumer is mid-drain.
    fn try_drain_rx(&self) -> bool {
        let Some(rx) = &self.rx else { return false };
        let Ok(mut rx) = rx.try_lock() else {
            return false;
        };
        self.drain_rx(&mut rx)
    }
}

impl EngineHooks for Shared {
    fn on_frame(&self, src: usize, frame: Frame) {
        self.route_frame(src, frame);
    }

    fn on_peer_gone(&self, rank: usize, dropped_acks: Vec<u64>) {
        for ack in dropped_acks {
            self.complete_ack_locally(ack);
        }
        self.peer_lost(rank);
    }

    fn on_control_sent(&self, peer: usize, kind: &'static str) {
        if kind == "ping" && peer < self.size && self.trace.metrics().enabled() {
            self.last_ping_ns[peer].store(self.trace.now_ns(), Ordering::Relaxed);
            self.trace
                .metrics()
                .rank(self.my_rank)
                .add(crate::metrics::Counter::PingsSent, 1);
        }
        self.trace_control(peer, kind);
    }

    fn on_wakeup(&self, events: usize, frames: usize, busy: Duration) {
        if self.trace.metrics().enabled() {
            use crate::metrics::Counter;
            let rm = self.trace.metrics().rank(self.my_rank);
            rm.add(Counter::EpollWakeups, 1);
            rm.add(Counter::EpollEvents, events as u64);
            rm.add(Counter::EpollFrames, frames as u64);
        }
        if self.trace.tracing() {
            self.trace.record(EventKind::Progress {
                rank: self.my_rank as u32,
                events: events as u32,
                frames: frames as u32,
                dur_ns: busy.as_nanos() as u64,
            });
        }
    }

    fn on_writev(&self, calls: usize, frames: usize) {
        if self.trace.metrics().enabled() {
            use crate::metrics::Counter;
            let rm = self.trace.metrics().rank(self.my_rank);
            rm.add(Counter::WritevCalls, calls as u64);
            rm.add(Counter::WritevFrames, frames as u64);
        }
    }

    fn on_queue_depth(&self, depth: usize) {
        if self.trace.metrics().enabled() {
            self.trace
                .metrics()
                .rank(self.my_rank)
                .gauge_max(crate::metrics::Gauge::OutboundQueueMax, depth as u64);
        }
    }
}

/// The [`Transport`] implementation over the progress engine and optional
/// shm-xproc rings. One per process; hosts exactly one rank.
pub struct SocketTransport {
    shared: Arc<Shared>,
    /// Whether any ring channels are configured (backend name).
    xproc: bool,
    /// Own inbox, shared with the consumer thread (for the shutdown wake).
    inbox: Option<Arc<Inbox>>,
    consumer: Mutex<Option<JoinHandle<()>>>,
}

impl SocketTransport {
    /// Builds the transport for `my_rank` of `size`: starts the progress
    /// engine on `listener` (already bound; its address is
    /// `addrs[my_rank]`) and, given an [`XprocSetup`], opens ring channels
    /// to every co-located peer and starts the ring consumer.
    ///
    /// `size` is the universe *capacity*: `addrs` holds one slot per
    /// capacity rank, `Some` for ranks present at launch (or listed in the
    /// admission table a joiner received) and `None` for slots that may be
    /// filled later by [`SocketTransport::install_peer`]. The active set
    /// starts as exactly the `Some` slots.
    pub(crate) fn new(
        my_rank: usize,
        size: usize,
        hub: Arc<Hub>,
        addrs: Vec<Option<Addr>>,
        listener: Listener,
        trace: Arc<TraceCtx>,
        xproc: Option<XprocSetup>,
    ) -> io::Result<Self> {
        let active: HashSet<usize> = (0..size).filter(|&r| addrs[r].is_some()).collect();
        let rings: Vec<OnceLock<Mutex<RingTx>>> = (0..size).map(|_| OnceLock::new()).collect();
        let mut xproc_dir = None;
        let mut ring_bytes = 0;
        if let Some(setup) = &xproc {
            debug_assert!(setup.local.contains(&my_rank));
            for &peer in &setup.local {
                if peer == my_rank {
                    continue;
                }
                match RingTx::open(&setup.dir, peer, my_rank, size, setup.ring_bytes) {
                    Ok(tx) => {
                        let _ = rings[peer].set(Mutex::new(tx));
                    }
                    // The peer's inbox existed when the co-location
                    // snapshot was taken but has been unlinked since:
                    // the peer died or departed (rings are only removed
                    // on Failed/Bye, and ranks are never reused), so
                    // skip the channel — its death arrives over the
                    // control plane like any other failure.
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
            xproc_dir = Some(setup.dir.clone());
            ring_bytes = setup.ring_bytes;
        }
        let (inbox, rx) = match xproc {
            None => (None, None),
            Some(setup) => {
                let chans = setup
                    .local
                    .iter()
                    .copied()
                    .filter(|&r| r != my_rank)
                    .map(|r| (r, Vec::new()))
                    .collect();
                let inbox = Arc::new(setup.inbox);
                let rx = RingRx {
                    inbox: Arc::clone(&inbox),
                    chans,
                };
                (Some(inbox), Some(Mutex::new(rx)))
            }
        };
        let shared = Arc::new_cyclic(|me| Shared {
            me: me.clone(),
            my_rank,
            size,
            mailbox: Mailbox::new(my_rank, size, Arc::clone(&hub), Arc::clone(&trace)),
            hub,
            trace,
            rings,
            rx,
            pending_chans: Mutex::new(Vec::new()),
            active: Mutex::new(active),
            xproc_dir,
            ring_bytes,
            sink: Mutex::new(SinkState::Pending(Vec::new())),
            finished_seen: Mutex::new(HashSet::new()),
            failed_seen: Mutex::new(HashSet::new()),
            acks: Mutex::new(HashMap::new()),
            next_ack_id: AtomicU64::new(1),
            down: AtomicBool::new(false),
            last_ping_ns: (0..size).map(|_| AtomicU64::new(0)).collect(),
            engine: OnceLock::new(),
        });
        let engine = Engine::start(
            my_rank,
            addrs,
            listener,
            Arc::clone(&shared) as Arc<dyn EngineHooks>,
        )?;
        shared
            .engine
            .set(engine)
            .unwrap_or_else(|_| unreachable!("engine set exactly once"));

        let consumer = match &inbox {
            None => None,
            Some(ib) => {
                // Waiting receivers drain their own rings (weak ref: the
                // mailbox lives inside `shared`, a strong ref would leak
                // the cycle).
                let me = shared.me.clone();
                shared
                    .mailbox
                    .set_progress_poll(move || me.upgrade().is_some_and(|sh| sh.try_drain_rx()));
                let sh = Arc::clone(&shared);
                let ib = Arc::clone(ib);
                Some(
                    std::thread::Builder::new()
                        .name(format!("kamping-ring-{my_rank}"))
                        .spawn(move || ring_consumer(sh, ib))?,
                )
            }
        };
        Ok(Self {
            shared,
            xproc: inbox.is_some(),
            inbox,
            consumer: Mutex::new(consumer),
        })
    }

    /// Binds the universe state as the destination for incoming control
    /// frames and replays any events that arrived before the bind.
    /// Idempotent: binding again (e.g. both a chaos wrapper and the
    /// universe pointing at the same state) replaces the sink — while
    /// bound nothing queues, so there is never anything to replay twice.
    pub(crate) fn bind_sink(&self, sink: Weak<dyn ControlSink>) {
        let pending = {
            let mut st = self.shared.sink.lock().expect("sink poisoned");
            match std::mem::replace(&mut *st, SinkState::Bound(sink.clone())) {
                SinkState::Pending(q) => q,
                SinkState::Bound(_) => Vec::new(),
            }
        };
        if let Some(s) = sink.upgrade() {
            for msg in pending {
                s.apply(msg);
            }
        }
    }

    /// Rank 0's half of an admission: installs the joiner locally, then
    /// broadcasts `Grow` over the data plane to every *other* active rank.
    /// The caller applies the grow event to its own universe state (the
    /// broadcast deliberately skips self — `deliver_control` would race
    /// the monitor's own bookkeeping otherwise).
    pub(crate) fn announce_join(&self, epoch: u64, joiner: usize, addr: &Addr, members: &[usize]) {
        self.shared.install_peer(joiner, addr);
        let finished = self
            .shared
            .finished_seen
            .lock()
            .expect("finished set poisoned")
            .clone();
        let mut targets: Vec<usize> = self
            .shared
            .active
            .lock()
            .expect("active set poisoned")
            .iter()
            .copied()
            .filter(|&d| d != self.shared.my_rank && d != joiner && !finished.contains(&d))
            .collect();
        targets.sort_unstable();
        for dest in targets {
            self.shared.send_frame(
                dest,
                Frame::Grow {
                    epoch,
                    joiner,
                    addr: addr.to_string(),
                    members: members.to_vec(),
                },
            );
        }
    }
}

/// The per-rank ring consumer: the *guaranteed* drain of the inbound
/// rings. A receiver blocked in the mailbox usually beats it to the frames
/// through the progress poll; this thread's job is the case where the rank
/// is off computing — producers must never wedge on a full ring because
/// nobody is listening. Parks on the inbox doorbell futex when idle.
fn ring_consumer(shared: Arc<Shared>, inbox: Arc<Inbox>) {
    crate::trace::set_thread_rank(shared.my_rank);
    let max_idle_passes = consumer_idle_passes();
    let mut idle_passes = 0u32;
    loop {
        let snapshot = inbox.doorbell_value();
        let progressed = {
            let mut rx = shared
                .rx
                .as_ref()
                .expect("consumer spawned only with rings")
                .lock()
                .expect("ring rx poisoned");
            shared.drain_rx(&mut rx)
        };
        if shared.down.load(Ordering::Acquire) {
            return;
        }
        if progressed {
            idle_passes = 0;
            continue;
        }
        if idle_passes < max_idle_passes {
            idle_passes += 1;
            // Yield rather than spin: on a busy (or single-core) host the
            // producer needs the CPU to make the doorbell move at all.
            std::thread::yield_now();
            continue;
        }
        idle_passes = 0;
        let start = std::time::Instant::now();
        inbox.park(snapshot, CONSUMER_PARK_SLICE);
        let parked = start.elapsed();
        if shared.trace.metrics().enabled() {
            use crate::metrics::Counter;
            let rm = shared.trace.metrics().rank(shared.my_rank);
            rm.add(Counter::RingFutexSleeps, 1);
            rm.add(Counter::RingFutexSleepNs, parked.as_nanos() as u64);
        }
        if shared.trace.tracing() {
            shared.trace.record(EventKind::RingWait {
                rank: shared.my_rank as u32,
                peer: u32::MAX,
                role: "recv",
                dur_ns: parked.as_nanos() as u64,
            });
        }
    }
}

impl Transport for SocketTransport {
    fn name(&self) -> &'static str {
        if self.xproc {
            "shm-xproc"
        } else {
            "socket"
        }
    }

    fn post(&self, dest: usize, envelope: Envelope) {
        if dest == self.shared.my_rank {
            self.shared.mailbox.post(envelope);
            return;
        }
        let ack_id = match &envelope.ack {
            Some(ack) => {
                let id = self.shared.next_ack_id.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .acks
                    .lock()
                    .expect("ack registry poisoned")
                    .insert(id, Arc::clone(ack));
                id
            }
            None => 0,
        };
        let frame = Frame::Data {
            src: envelope.src,
            tag: envelope.tag,
            ctx: envelope.ctx,
            ack_id,
            payload: envelope.payload.as_slice().to_vec(),
        };
        if !self.shared.send_frame(dest, frame) && ack_id != 0 {
            self.shared.complete_ack_locally(ack_id);
        }
    }

    fn mailbox(&self, rank: usize) -> &Mailbox {
        assert_eq!(
            rank, self.shared.my_rank,
            "socket backend hosts exactly one rank per process"
        );
        &self.shared.mailbox
    }

    fn is_local(&self, rank: usize) -> bool {
        rank == self.shared.my_rank
    }

    fn locality(&self, rank: usize) -> Locality {
        if rank == self.shared.my_rank {
            Locality::Process
        } else if self.shared.rings[rank].get().is_some() {
            Locality::Host
        } else {
            Locality::Remote
        }
    }

    fn control(&self, msg: ControlMsg) {
        let finished = self
            .shared
            .finished_seen
            .lock()
            .expect("finished set poisoned")
            .clone();
        // Only ranks that actually joined: contacting an empty capacity
        // slot would wait out the connect retry and then mark a process
        // that never existed as failed.
        let mut targets: Vec<usize> = self
            .shared
            .active
            .lock()
            .expect("active set poisoned")
            .iter()
            .copied()
            .filter(|&d| d != self.shared.my_rank && !finished.contains(&d))
            .collect();
        targets.sort_unstable();
        for dest in targets {
            self.shared.send_frame(dest, Frame::Control(msg));
        }
    }

    fn kick_local(&self) {
        self.shared.mailbox.kick();
    }

    fn shutdown(&self) {
        self.shared.down.store(true, Ordering::Release);
        // Flush and join the progress engine: guarantees all outgoing
        // socket frames (including the Finished broadcast) are on the wire
        // before the process may exit. Ring frames were durable in shared
        // memory the moment `post` returned — nothing to flush there.
        self.shared.engine().shutdown();
        if let Some(inbox) = &self.inbox {
            inbox.wake_self();
        }
        if let Some(h) = self.consumer.lock().expect("consumer poisoned").take() {
            let _ = h.join();
        }
        // Drop our own inbox's directory entry: peers that saw `Finished`
        // already unlinked it (ranks are never reused), this covers runs
        // where nobody else was co-located. Mapped producers are unharmed.
        if let Some(dir) = &self.shared.xproc_dir {
            let _ = std::fs::remove_file(inbox_path(dir, self.shared.my_rank));
        }
        // Peers that still send to this finished rank get their frames
        // dropped (socket) or their ring writes aborted, mirroring shm
        // semantics for finished ranks.
    }
}
