//! The cross-process socket backend.
//!
//! Each OS process hosts exactly one rank. Connections are
//! *unidirectional*: to send to rank `d`, this process lazily connects to
//! `d`'s data listener (address from the rendezvous table), announces
//! itself with a `Hello` frame, and from then on a dedicated writer thread
//! drains an unbounded channel into a buffered stream — one writer per
//! peer, so per-(source → dest) FIFO order is the order frames enter the
//! channel, which is the order [`SocketTransport::post`] was called in.
//! Incoming connections are handled by an accept loop that spawns one
//! receive thread per peer; received envelopes land in the local rank's
//! [`Mailbox`], so matching semantics (FIFO per source lane, `ANY_SOURCE`
//! arrival stamps) are *identical* to the shared-memory backend by
//! construction.
//!
//! Synchronous-mode sends travel with a registry key (`ack_id`): the
//! receiving side rebuilds the envelope with an [`AckCell`] whose hook
//! sends an `Ack` frame back when the message is matched, and the origin
//! flips the registered cell (and notifies the [`Hub`]) when that frame
//! arrives.
//!
//! Failure detection is two-plane: a connect/write/read error on a data
//! connection marks the peer failed *locally*, and the rendezvous monitor
//! on rank 0 (see [`super::launch`]) catches crashed processes globally
//! and broadcasts `Failed` to everyone. A peer whose `Finished` control
//! frame was seen closes its connections *cleanly*; EOFs from it are not
//! failures.

use std::collections::{HashMap, HashSet};
use std::io::{BufReader, BufWriter};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::trace::{EventKind, TraceCtx};
use crate::transport::{
    AckCell, ControlMsg, ControlSink, Envelope, Hub, Mailbox, Payload, Transport,
};

use super::addr::{Addr, Listener, Stream};
use super::wire::{read_frame, write_frame, Frame};

/// An idle writer emits a `Ping` this often, so a dead peer's socket fails
/// the write (and the failure is marked) within roughly one interval even
/// when the application has nothing to send.
const HEARTBEAT: Duration = Duration::from_millis(500);

/// How long a lazy data-plane connect keeps retrying (with exponential
/// backoff, see [`Stream::connect_retry`]) before the peer is declared
/// unreachable. Short on purpose: post-rendezvous, every listener is
/// already bound, so persistent refusal means the peer is gone.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// Where control frames go before/after the universe binds itself.
enum SinkState {
    /// No sink yet: queue events, replayed on bind.
    Pending(Vec<ControlMsg>),
    /// Bound to the universe (weakly — the universe owns the transport).
    Bound(Weak<dyn ControlSink>),
}

/// Outgoing link to one peer.
enum PeerSlot {
    /// Never connected.
    Idle,
    /// Writer thread running.
    Up {
        tx: Sender<Frame>,
        handle: JoinHandle<()>,
    },
    /// Unreachable or shut down; frames to it are dropped.
    Gone,
}

/// State shared between the transport handle, writer threads, receive
/// threads and ack hooks.
struct Shared {
    my_rank: usize,
    size: usize,
    hub: Arc<Hub>,
    /// The one local rank's mailbox ([`Mailbox::post`] is the only entry
    /// point for incoming envelopes, remote and loopback alike).
    mailbox: Mailbox,
    /// Data-plane address of every rank, from the rendezvous table.
    addrs: Vec<Addr>,
    peers: Vec<Mutex<PeerSlot>>,
    sink: Mutex<SinkState>,
    /// Ranks whose `Finished` control frame has been applied: EOF from
    /// them is a clean close, not a failure.
    finished_seen: Mutex<HashSet<usize>>,
    /// In-flight synchronous-mode sends awaiting a wire ack, by ack id.
    acks: Mutex<HashMap<u64, Arc<AckCell>>>,
    next_ack_id: AtomicU64,
    /// Set at shutdown: suppresses failure marks from teardown-induced
    /// connection errors.
    down: AtomicBool,
    /// Event ring of this universe; control-plane frames are recorded here
    /// (and *only* here — they never touch the profiling counters).
    trace: Arc<TraceCtx>,
}

impl Shared {
    /// Routes a control event into the universe state (or the pending
    /// queue before the sink is bound). Never re-broadcasts.
    fn deliver_control(&self, msg: ControlMsg) {
        if let ControlMsg::Finished { rank } = msg {
            self.finished_seen
                .lock()
                .expect("finished set poisoned")
                .insert(rank);
        }
        let sink = {
            let mut st = self.sink.lock().expect("sink poisoned");
            match &mut *st {
                SinkState::Pending(q) => {
                    q.push(msg);
                    return;
                }
                SinkState::Bound(w) => w.clone(),
            }
        };
        if let Some(sink) = sink.upgrade() {
            sink.apply(msg);
        }
    }

    /// A data connection to/from `rank` broke. Outside of shutdown, and
    /// unless the rank already announced a clean finish, that is evidence
    /// of its death.
    fn peer_lost(&self, rank: usize) {
        if self.down.load(Ordering::Acquire) {
            return;
        }
        if self
            .finished_seen
            .lock()
            .expect("finished set poisoned")
            .contains(&rank)
        {
            return;
        }
        self.deliver_control(ControlMsg::Failed { rank });
    }

    /// Records a non-data frame sent to `peer` in the event ring.
    fn trace_control(&self, peer: usize, frame: &'static str) {
        if self.trace.tracing() {
            self.trace.record(EventKind::Control {
                rank: self.my_rank as u32,
                peer: peer as u32,
                frame,
            });
        }
    }

    /// Enqueues `frame` for `dest`, connecting lazily on first use.
    /// Returns false if the peer is unreachable (already marked failed).
    fn send_frame(self: &Arc<Self>, dest: usize, frame: Frame) -> bool {
        match &frame {
            Frame::Data { .. } => {}
            Frame::Ack { .. } => self.trace_control(dest, "ack"),
            Frame::Control(_) => self.trace_control(dest, "control"),
            Frame::Ping => self.trace_control(dest, "ping"),
            _ => self.trace_control(dest, "rendezvous"),
        }
        let mut slot = self.peers[dest].lock().expect("peer slot poisoned");
        if let PeerSlot::Idle = *slot {
            match Stream::connect_retry(&self.addrs[dest], CONNECT_TIMEOUT) {
                Ok(stream) => {
                    let (tx, rx) = std::sync::mpsc::channel();
                    self.trace_control(dest, "hello");
                    tx.send(Frame::Hello { rank: self.my_rank })
                        .expect("fresh channel cannot be closed");
                    let shared = Arc::clone(self);
                    let handle = std::thread::Builder::new()
                        .name(format!("kamping-tx-{}-{}", self.my_rank, dest))
                        .spawn(move || writer_loop(stream, rx, dest, shared))
                        .expect("spawning writer thread");
                    *slot = PeerSlot::Up { tx, handle };
                }
                Err(_) => {
                    *slot = PeerSlot::Gone;
                    drop(slot);
                    self.peer_lost(dest);
                    return false;
                }
            }
        }
        match &*slot {
            PeerSlot::Up { tx, .. } => tx.send(frame).is_ok(),
            _ => false,
        }
    }

    /// Ack hook target: tells `origin` that its synchronous-mode send
    /// `ack_id` has been matched.
    fn send_ack(self: &Arc<Self>, origin: usize, ack_id: u64) {
        self.send_frame(origin, Frame::Ack { ack_id });
    }

    /// Completes a registered ack locally (destination unreachable: the
    /// send is dropped, but the sender must not wait forever — same
    /// semantics as posting to a failed rank on the shm backend).
    fn complete_ack_locally(&self, ack_id: u64) {
        let cell = self
            .acks
            .lock()
            .expect("ack registry poisoned")
            .remove(&ack_id);
        if let Some(cell) = cell {
            cell.set();
            self.hub.notify();
        }
    }
}

/// Drains one peer's frame channel into its stream, flushing when the
/// channel runs dry (batches bursts, keeps latency low when idle). An idle
/// channel emits a heartbeat `Ping` every [`HEARTBEAT`], so a broken
/// connection is discovered — and the peer marked failed — without waiting
/// for the application's next send.
fn writer_loop(stream: Stream, rx: Receiver<Frame>, dest: usize, shared: Arc<Shared>) {
    let mut w = BufWriter::new(stream);
    loop {
        let frame = match rx.try_recv() {
            Ok(f) => f,
            Err(TryRecvError::Empty) => {
                if std::io::Write::flush(&mut w).is_err() {
                    shared.peer_lost(dest);
                    return;
                }
                match rx.recv_timeout(HEARTBEAT) {
                    Ok(f) => f,
                    // Idle for a full interval: probe the connection. The
                    // ping is flushed by the next iteration's dry-run flush.
                    Err(RecvTimeoutError::Timeout) => {
                        shared.trace_control(dest, "ping");
                        Frame::Ping
                    }
                    // Channel closed with nothing buffered: clean exit.
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
            Err(TryRecvError::Disconnected) => {
                if std::io::Write::flush(&mut w).is_err() {
                    shared.peer_lost(dest);
                }
                return;
            }
        };
        if write_frame(&mut w, &frame).is_err() {
            shared.peer_lost(dest);
            return;
        }
    }
}

/// Reads one peer's frames, landing envelopes in the local mailbox and
/// routing acks/control events.
fn recv_loop(stream: Stream, shared: Arc<Shared>) {
    let mut r = BufReader::new(stream);
    let src = match read_frame(&mut r) {
        Ok(Frame::Hello { rank }) if rank < shared.size => rank,
        // A connection that cannot even identify itself is not attributed
        // to any rank; the rendezvous monitor covers real crashes.
        _ => return,
    };
    loop {
        match read_frame(&mut r) {
            Ok(Frame::Data {
                src: env_src,
                tag,
                ctx,
                ack_id,
                payload,
            }) => {
                if env_src >= shared.size {
                    return; // protocol violation
                }
                let ack = (ack_id != 0).then(|| {
                    let origin = env_src;
                    let sh = Arc::clone(&shared);
                    Arc::new(AckCell::with_hook(move || sh.send_ack(origin, ack_id)))
                });
                shared.mailbox.post(Envelope {
                    src: env_src,
                    tag,
                    ctx,
                    payload: Payload::from_vec(payload),
                    ack,
                });
            }
            Ok(Frame::Ack { ack_id }) => shared.complete_ack_locally(ack_id),
            Ok(Frame::Control(msg)) => shared.deliver_control(msg),
            Ok(Frame::Ping) => continue, // heartbeat; liveness only
            Ok(_) => return,             // protocol violation
            Err(_) => {
                // EOF or reset. Clean if the peer finished (or we are
                // tearing down), a failure otherwise.
                shared.peer_lost(src);
                return;
            }
        }
    }
}

/// The [`Transport`] implementation over per-peer sockets. One per
/// process; hosts exactly one rank.
pub struct SocketTransport {
    shared: Arc<Shared>,
}

impl SocketTransport {
    /// Builds the transport for `my_rank` of `size` and starts accepting
    /// data connections on `listener` (already bound; its address is
    /// `addrs[my_rank]`).
    pub(crate) fn new(
        my_rank: usize,
        size: usize,
        hub: Arc<Hub>,
        addrs: Vec<Addr>,
        listener: Listener,
        trace: Arc<TraceCtx>,
    ) -> Self {
        let shared = Arc::new(Shared {
            my_rank,
            size,
            mailbox: Mailbox::new(my_rank, size, Arc::clone(&hub), Arc::clone(&trace)),
            hub,
            trace,
            addrs,
            peers: (0..size).map(|_| Mutex::new(PeerSlot::Idle)).collect(),
            sink: Mutex::new(SinkState::Pending(Vec::new())),
            finished_seen: Mutex::new(HashSet::new()),
            acks: Mutex::new(HashMap::new()),
            next_ack_id: AtomicU64::new(1),
            down: AtomicBool::new(false),
        });
        {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("kamping-accept-{my_rank}"))
                .spawn(move || loop {
                    match listener.accept() {
                        Ok(stream) => {
                            let sh = Arc::clone(&shared);
                            std::thread::Builder::new()
                                .name(format!("kamping-rx-{}", shared.my_rank))
                                .spawn(move || recv_loop(stream, sh))
                                .expect("spawning receive thread");
                        }
                        Err(_) => return,
                    }
                })
                .expect("spawning accept thread");
        }
        Self { shared }
    }

    /// Binds the universe state as the destination for incoming control
    /// frames and replays any events that arrived before the bind.
    /// Idempotent: binding again (e.g. both a chaos wrapper and the
    /// universe pointing at the same state) replaces the sink — while
    /// bound nothing queues, so there is never anything to replay twice.
    pub(crate) fn bind_sink(&self, sink: Weak<dyn ControlSink>) {
        let pending = {
            let mut st = self.shared.sink.lock().expect("sink poisoned");
            match std::mem::replace(&mut *st, SinkState::Bound(sink.clone())) {
                SinkState::Pending(q) => q,
                SinkState::Bound(_) => Vec::new(),
            }
        };
        if let Some(s) = sink.upgrade() {
            for msg in pending {
                s.apply(msg);
            }
        }
    }
}

impl Transport for SocketTransport {
    fn name(&self) -> &'static str {
        "socket"
    }

    fn post(&self, dest: usize, envelope: Envelope) {
        if dest == self.shared.my_rank {
            self.shared.mailbox.post(envelope);
            return;
        }
        let ack_id = match &envelope.ack {
            Some(ack) => {
                let id = self.shared.next_ack_id.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .acks
                    .lock()
                    .expect("ack registry poisoned")
                    .insert(id, Arc::clone(ack));
                id
            }
            None => 0,
        };
        let frame = Frame::Data {
            src: envelope.src,
            tag: envelope.tag,
            ctx: envelope.ctx,
            ack_id,
            payload: envelope.payload.as_slice().to_vec(),
        };
        if !self.shared.send_frame(dest, frame) && ack_id != 0 {
            self.shared.complete_ack_locally(ack_id);
        }
    }

    fn mailbox(&self, rank: usize) -> &Mailbox {
        assert_eq!(
            rank, self.shared.my_rank,
            "socket backend hosts exactly one rank per process"
        );
        &self.shared.mailbox
    }

    fn is_local(&self, rank: usize) -> bool {
        rank == self.shared.my_rank
    }

    fn control(&self, msg: ControlMsg) {
        let finished = self
            .shared
            .finished_seen
            .lock()
            .expect("finished set poisoned")
            .clone();
        for dest in 0..self.shared.size {
            if dest == self.shared.my_rank || finished.contains(&dest) {
                continue;
            }
            self.shared.send_frame(dest, Frame::Control(msg));
        }
    }

    fn kick_local(&self) {
        self.shared.mailbox.kick();
    }

    fn shutdown(&self) {
        self.shared.down.store(true, Ordering::Release);
        // Closing each channel makes its writer flush and exit; joining
        // guarantees all outgoing frames (including the Finished
        // broadcast) are on the wire before the process may exit.
        let mut handles = Vec::new();
        for slot in self.shared.peers.iter() {
            let mut slot = slot.lock().expect("peer slot poisoned");
            if let PeerSlot::Up { handle, .. } = std::mem::replace(&mut *slot, PeerSlot::Gone) {
                handles.push(handle);
            }
        }
        for h in handles {
            let _ = h.join();
        }
        // Accept/receive threads stay parked on their sockets; they hold
        // only `Shared` weak-free state and die with the process. Peers
        // that still send to this finished rank get their messages
        // dropped, mirroring shm semantics for finished ranks.
    }
}
