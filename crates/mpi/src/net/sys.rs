//! Minimal Linux syscall surface for the event-driven net layer.
//!
//! The workspace vendors no external crates, so the handful of primitives
//! std does not expose — epoll, eventfd, `poll`, `mmap` and futexes — are
//! declared here as direct `extern "C"` bindings against the libc that the
//! Rust standard library already links. Every raw call is wrapped in a
//! small RAII type or free function with an `io::Result` interface;
//! nothing in this module knows about frames, rings or ranks.
//!
//! Scope is deliberately tiny: exactly what [`super::progress`] (epoll +
//! eventfd), [`super::ring`] (mmap + futex) and the rendezvous monitor
//! (`poll`) need, and nothing else.

use std::ffi::{c_int, c_long, c_uint, c_void};
use std::fs::File;
use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::AtomicU32;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Raw bindings
// ---------------------------------------------------------------------------

/// One epoll readiness record. x86-64 packs this struct (kernel ABI quirk);
/// other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    events: u32,
    token: u64,
}

impl EpollEvent {
    /// An empty record for `epoll_wait` output buffers.
    pub fn zeroed() -> Self {
        Self {
            events: 0,
            token: 0,
        }
    }

    /// Ready-event mask ([`EPOLLIN`] / [`EPOLLOUT`] / [`EPOLLERR`] / [`EPOLLHUP`]).
    pub fn events(&self) -> u32 {
        // By-value copy: fields of a packed struct must not be referenced.

        self.events
    }

    /// The token the fd was registered with.
    pub fn token(&self) -> u64 {
        self.token
    }
}

/// `struct pollfd` for the rendezvous monitor's `poll` loop.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    pub fd: c_int,
    pub events: i16,
    pub revents: i16,
}

#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    fn syscall(num: c_long, ...) -> c_long;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_MOD: c_int = 3;

/// Readable (also: peer hung up a readable stream).
pub const EPOLLIN: u32 = 0x1;
/// Writable without blocking.
pub const EPOLLOUT: u32 = 0x4;
/// Error condition on the fd.
pub const EPOLLERR: u32 = 0x8;
/// Peer hang-up.
pub const EPOLLHUP: u32 = 0x10;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const PROT_READ: c_int = 1;
const PROT_WRITE: c_int = 2;
const MAP_SHARED: c_int = 1;

#[cfg(target_arch = "x86_64")]
const SYS_FUTEX: c_long = 202;
#[cfg(not(target_arch = "x86_64"))]
const SYS_FUTEX: c_long = 98;

// The *shared* (non-PRIVATE) futex ops: waiters and wakers may live in
// different processes mapping the same file.
const FUTEX_WAIT: c_int = 0;
const FUTEX_WAKE: c_int = 1;

/// `POLLIN` for [`PollFd::events`].
pub const POLLIN: i16 = 0x1;

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------------
// Epoll
// ---------------------------------------------------------------------------

/// An epoll instance. `epoll_ctl` is kernel-thread-safe, so registration
/// may happen from any thread while another is parked in [`Epoll::wait`].
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, token };
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
    }

    /// Starts watching `fd` under `token` for the given interests.
    pub fn add(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest(read, write), token)
    }

    /// Replaces `fd`'s interest set.
    pub fn modify(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest(read, write), token)
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// expires (`None` waits forever). A signal interruption reports as
    /// zero ready events rather than an error.
    pub fn wait(&self, events: &mut [EpollEvent], timeout: Option<Duration>) -> io::Result<usize> {
        let ms: c_int = match timeout {
            None => -1,
            // Round up so the caller's deadline has truly passed when a
            // timeout-wakeup fires.
            Some(d) => (d.as_millis() as i64 + i64::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as i64) as c_int,
        };
        let n = unsafe {
            epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as c_int,
                ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }
}

fn interest(read: bool, write: bool) -> u32 {
    let mut ev = 0;
    if read {
        ev |= EPOLLIN;
    }
    if write {
        ev |= EPOLLOUT;
    }
    ev
}

// ---------------------------------------------------------------------------
// EventFd
// ---------------------------------------------------------------------------

/// A nonblocking eventfd used as a cross-thread wakeup doorbell for an
/// epoll loop.
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Self {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The fd to register with an [`Epoll`].
    pub fn raw(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Makes the fd readable (wakes the poller). Saturation of the
    /// counter (`EAGAIN`) already implies a pending wakeup, so it is not
    /// an error.
    pub fn ring(&self) {
        let one: u64 = 1;
        unsafe {
            write(
                self.fd.as_raw_fd(),
                (&one as *const u64).cast::<c_void>(),
                8,
            )
        };
    }

    /// Clears the counter so the fd stops reading as ready.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe {
            read(
                self.fd.as_raw_fd(),
                (&mut buf as *mut u64).cast::<c_void>(),
                8,
            )
        };
    }
}

// ---------------------------------------------------------------------------
// Shared mappings + futexes
// ---------------------------------------------------------------------------

/// A `MAP_SHARED` read-write mapping of a file, unmapped on drop. The
/// backing file may be closed once mapped; the mapping (and the pages any
/// other process sees through its own mapping) stays alive.
pub struct SharedMap {
    ptr: *mut u8,
    len: usize,
}

// The mapping is plain memory; all concurrent access goes through the
// atomics the callers place in it.
unsafe impl Send for SharedMap {}
unsafe impl Sync for SharedMap {}

impl SharedMap {
    /// Maps `len` bytes of `file` shared read-write.
    pub fn map(file: &File, len: usize) -> io::Result<Self> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            ptr: ptr.cast(),
            len,
        })
    }

    /// A shared atomic word at byte offset `off` (must be 4-aligned and in
    /// bounds — both are layout invariants of the callers, asserted here).
    pub fn atomic_u32(&self, off: usize) -> &AtomicU32 {
        assert!(
            off.is_multiple_of(4) && off + 4 <= self.len,
            "misplaced ring word"
        );
        unsafe { &*self.ptr.add(off).cast::<AtomicU32>() }
    }

    /// Copies `src` into the mapping at `off`.
    ///
    /// # Safety
    /// The caller must guarantee exclusive write ownership of
    /// `[off, off + src.len())` under the ring protocol.
    pub unsafe fn write_bytes_at(&self, off: usize, src: &[u8]) {
        debug_assert!(off + src.len() <= self.len);
        std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(off), src.len());
    }

    /// Appends `len` bytes at `off` from the mapping to `out`.
    ///
    /// # Safety
    /// The caller must guarantee the range is owned (published by the
    /// producer, not yet released by the consumer).
    pub unsafe fn read_bytes_at(&self, off: usize, len: usize, out: &mut Vec<u8>) {
        debug_assert!(off + len <= self.len);
        out.extend_from_slice(std::slice::from_raw_parts(self.ptr.add(off), len));
    }
}

impl Drop for SharedMap {
    fn drop(&mut self) {
        unsafe { munmap(self.ptr.cast(), self.len) };
    }
}

/// Blocks until `word` is woken or no longer holds `expected` (the kernel
/// re-checks under its internal lock, which is what makes sleep/wake-free
/// handoffs race-free). Spurious returns are fine — all callers loop.
pub fn futex_wait(word: &AtomicU32, expected: u32, timeout: Option<Duration>) {
    let ts;
    let ts_ptr: *const Timespec = match timeout {
        None => std::ptr::null(),
        Some(d) => {
            ts = Timespec {
                tv_sec: d.as_secs() as i64,
                tv_nsec: i64::from(d.subsec_nanos()),
            };
            &ts
        }
    };
    unsafe {
        syscall(
            SYS_FUTEX,
            word.as_ptr(),
            FUTEX_WAIT,
            expected as c_uint,
            ts_ptr,
            std::ptr::null::<c_void>(),
            0 as c_uint,
        );
    }
    // EAGAIN (value changed), EINTR and ETIMEDOUT are all just "go
    // re-check" to our callers.
}

/// Wakes up to `n` waiters parked on `word`.
pub fn futex_wake(word: &AtomicU32, n: u32) {
    unsafe {
        syscall(
            SYS_FUTEX,
            word.as_ptr(),
            FUTEX_WAKE,
            n as c_uint,
            std::ptr::null::<c_void>(),
            std::ptr::null::<c_void>(),
            0 as c_uint,
        );
    }
}

/// `poll(2)` over `fds`; signal interruptions report as zero ready fds.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let ms: c_int = match timeout {
        None => -1,
        Some(d) => (d.as_millis() as i64).min(i32::MAX as i64) as c_int,
    };
    let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
    if n < 0 {
        let e = io::Error::last_os_error();
        if e.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(e);
    }
    Ok(n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), 42, true, false).unwrap();
        let mut out = [EpollEvent::zeroed(); 4];

        // Nothing rung: a zero-timeout wait sees nothing.
        assert_eq!(ep.wait(&mut out, Some(Duration::ZERO)).unwrap(), 0);

        ev.ring();
        let n = ep.wait(&mut out, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(out[0].token(), 42);
        assert!(out[0].events() & EPOLLIN != 0);

        // Drained, the fd stops reading as ready.
        ev.drain();
        assert_eq!(ep.wait(&mut out, Some(Duration::ZERO)).unwrap(), 0);
    }

    #[test]
    fn epoll_interest_can_be_modified() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ev.ring();
        ep.add(ev.raw(), 7, false, false).unwrap();
        let mut out = [EpollEvent::zeroed(); 4];
        // No read interest: the pending counter is invisible.
        assert_eq!(ep.wait(&mut out, Some(Duration::ZERO)).unwrap(), 0);
        ep.modify(ev.raw(), 7, true, false).unwrap();
        assert_eq!(ep.wait(&mut out, Some(Duration::ZERO)).unwrap(), 1);
        // Withdrawing read interest hides the pending counter again.
        ep.modify(ev.raw(), 7, false, false).unwrap();
        assert_eq!(ep.wait(&mut out, Some(Duration::ZERO)).unwrap(), 0);
    }

    #[test]
    fn futex_wake_releases_waiter() {
        let word = Arc::new(AtomicU32::new(0));
        let w = Arc::clone(&word);
        let t = std::thread::spawn(move || {
            while w.load(Ordering::Acquire) == 0 {
                futex_wait(&w, 0, Some(Duration::from_millis(100)));
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        word.store(1, Ordering::Release);
        futex_wake(&word, u32::MAX);
        t.join().unwrap();
    }

    #[test]
    fn futex_wait_returns_when_value_already_changed() {
        // The kernel's compare makes a stale-expected wait return
        // immediately — the property the ring doorbell relies on.
        let word = AtomicU32::new(5);
        let start = std::time::Instant::now();
        futex_wait(&word, 4, Some(Duration::from_secs(10)));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn shared_map_is_coherent_across_two_mappings() {
        let path = std::env::temp_dir().join(format!("kamping-sysmap-{}", std::process::id()));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        file.set_len(4096).unwrap();
        let a = SharedMap::map(&file, 4096).unwrap();
        let b = SharedMap::map(&file, 4096).unwrap();
        a.atomic_u32(64).store(0xfeed, Ordering::Release);
        assert_eq!(b.atomic_u32(64).load(Ordering::Acquire), 0xfeed);
        unsafe {
            a.write_bytes_at(128, b"ring bytes");
            let mut out = Vec::new();
            b.read_bytes_at(128, 10, &mut out);
            assert_eq!(out, b"ring bytes");
        }
        drop(a);
        drop(b);
        let _ = std::fs::remove_file(&path);
    }
}
