//! Length-prefixed framed wire protocol for the socket backend.
//!
//! Every frame is `u32` little-endian body length followed by the body; the
//! body is a `kamping-serial` archive starting with a one-byte frame kind.
//! Integers travel as fixed-width little-endian words, byte strings as a
//! `u64` length prefix plus the raw bytes — the same conventions as the
//! serialization layer the bindings use for user payloads (Cereal-style,
//! paper §III-D3), so the wire format needs no second codec.
//!
//! Frame inventory:
//!
//! | kind | frame      | plane       | direction                         |
//! |------|------------|-------------|-----------------------------------|
//! | 1    | `Hello`    | data        | first frame of every connection   |
//! | 2    | `Data`     | data        | an [`crate::transport::Envelope`] |
//! | 3    | `Ack`      | data        | ssend matched (wire ack)          |
//! | 4    | `Control`  | data        | fault/barrier event broadcast     |
//! | 5    | `Join`     | rendezvous  | rank → rank 0                     |
//! | 6    | `Table`    | rendezvous  | rank 0 → rank                     |
//! | 7    | `Bye`      | rendezvous  | clean-exit notice to the monitor  |
//! | 8    | `Ping`     | data        | heartbeat from an idle writer     |
//! | 10   | `JoinElastic` | rendezvous | late joiner → rank 0 (no rank yet) |
//! | 11   | `Admit`    | rendezvous  | rank 0 → joiner (rank + epoch + table) |
//! | 12   | `Grow`     | data        | epoched membership update to survivors |
//!
//! `Data.ack_id` is 0 for standard-mode sends; synchronous-mode sends carry
//! the sender's ack-registry key, and the receiver returns it in an `Ack`
//! frame when the message is *matched* (not when it is received — NBX
//! completion semantics).

use std::io::{self, Read, Write};

use kamping_serial::{Reader, SerialError, Writer};

use crate::tag::Tag;
use crate::transport::ControlMsg;

/// Refuse frames larger than this (a corrupt length prefix must not
/// trigger a giant allocation).
pub(crate) const MAX_FRAME: usize = 1 << 30;

const KIND_HELLO: u8 = 1;
const KIND_DATA: u8 = 2;
const KIND_ACK: u8 = 3;
const KIND_CONTROL: u8 = 4;
const KIND_JOIN: u8 = 5;
const KIND_TABLE: u8 = 6;
const KIND_BYE: u8 = 7;
const KIND_PING: u8 = 8;
const KIND_PONG: u8 = 9;
const KIND_JOIN_ELASTIC: u8 = 10;
const KIND_ADMIT: u8 = 11;
const KIND_GROW: u8 = 12;

/// One unit of the socket backend's wire protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Identifies the connecting rank; first frame on every data
    /// connection (connections are unidirectional: the connector writes,
    /// the acceptor reads).
    Hello {
        /// Global rank of the connector.
        rank: usize,
    },
    /// A message envelope.
    Data {
        /// Global source rank.
        src: usize,
        /// Message tag.
        tag: Tag,
        /// Communicator context id.
        ctx: u64,
        /// Sender's ack-registry key for synchronous-mode sends; 0 = none.
        ack_id: u64,
        /// The payload bytes (re-packed into a
        /// [`crate::transport::Payload`] on arrival).
        payload: Vec<u8>,
    },
    /// A synchronous-mode send with this registry key has been matched.
    Ack {
        /// The `ack_id` the matching `Data` frame carried.
        ack_id: u64,
    },
    /// A fault/barrier control event (applied, never re-broadcast).
    Control(ControlMsg),
    /// Rendezvous: `rank` is up and its data listener is at `data_addr`.
    Join {
        /// Global rank of the joiner.
        rank: usize,
        /// String form of the joiner's data-plane [`super::Addr`].
        data_addr: String,
    },
    /// Rendezvous: the full rank table, indexed by global rank.
    Table {
        /// String forms of every rank's data-plane address.
        addrs: Vec<String>,
    },
    /// Clean exit notice on the rendezvous plane; an EOF *without* a
    /// preceding `Bye` is how the monitor detects a crashed rank.
    Bye {
        /// Global rank that is exiting cleanly.
        rank: usize,
    },
    /// Heartbeat written by an idle writer thread. Carries nothing; its
    /// purpose is to make a dead peer's socket *fail the write* within one
    /// heartbeat interval instead of staying silently wedged.
    Ping,
    /// Echo of a received `Ping`, sent on the receiver's own outbound
    /// link. Closes the round trip the metrics plane records as
    /// heartbeat RTT. Carries nothing: the pinger keeps the send
    /// timestamp per peer.
    Pong,
    /// Rendezvous: a late-arriving process asks to join the running job.
    /// Unlike `Join` it carries no rank — rank 0 assigns a fresh one.
    JoinElastic {
        /// String form of the joiner's data-plane [`super::Addr`].
        data_addr: String,
    },
    /// Rendezvous: rank 0 admits a late joiner, assigning its fresh global
    /// rank and the membership epoch its admission creates. `members` and
    /// `addrs` are aligned: the current member set (joiner included) and
    /// each member's data-plane address.
    Admit {
        /// The joiner's freshly assigned global rank (never reused).
        rank: usize,
        /// The membership epoch created by this admission.
        epoch: u64,
        /// Global ranks of every member at this epoch, joiner included.
        members: Vec<usize>,
        /// Data-plane addresses aligned with `members`.
        addrs: Vec<String>,
    },
    /// Data plane: an epoched membership update broadcast by rank 0 when a
    /// joiner is admitted. Carries the joiner's address so survivors can
    /// wire up the new peer before any traffic flows to it.
    Grow {
        /// The membership epoch created by this admission.
        epoch: u64,
        /// The admitted rank.
        joiner: usize,
        /// String form of the joiner's data-plane address.
        addr: String,
        /// Global ranks of every member at this epoch, joiner included.
        members: Vec<usize>,
    },
}

fn put_u64(w: &mut Writer, v: u64) {
    w.put_bytes(&v.to_le_bytes());
}

fn put_str(w: &mut Writer, s: &str) {
    w.put_len(s.len());
    w.put_bytes(s.as_bytes());
}

fn take_u64(r: &mut Reader<'_>) -> Result<u64, SerialError> {
    Ok(u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes")))
}

fn take_str(r: &mut Reader<'_>) -> Result<String, SerialError> {
    let n = r.take_len(1)?;
    String::from_utf8(r.take(n)?.to_vec()).map_err(|_| SerialError::Invalid("address is not utf-8"))
}

impl Frame {
    /// Serializes the frame body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Frame::Hello { rank } => {
                w.put_u8(KIND_HELLO);
                put_u64(&mut w, *rank as u64);
            }
            Frame::Data {
                src,
                tag,
                ctx,
                ack_id,
                payload,
            } => {
                w.put_u8(KIND_DATA);
                put_u64(&mut w, *src as u64);
                put_u64(&mut w, *tag as u64);
                put_u64(&mut w, *ctx);
                put_u64(&mut w, *ack_id);
                w.put_len(payload.len());
                w.put_bytes(payload);
            }
            Frame::Ack { ack_id } => {
                w.put_u8(KIND_ACK);
                put_u64(&mut w, *ack_id);
            }
            Frame::Control(msg) => {
                w.put_u8(KIND_CONTROL);
                match msg {
                    ControlMsg::Failed { rank } => {
                        w.put_u8(0);
                        put_u64(&mut w, *rank as u64);
                    }
                    ControlMsg::Finished { rank } => {
                        w.put_u8(1);
                        put_u64(&mut w, *rank as u64);
                    }
                    ControlMsg::Revoked { ctx } => {
                        w.put_u8(2);
                        put_u64(&mut w, *ctx);
                    }
                    ControlMsg::Grow {
                        epoch,
                        joiner,
                        members,
                    } => {
                        w.put_u8(3);
                        put_u64(&mut w, *epoch);
                        put_u64(&mut w, *joiner as u64);
                        put_u64(&mut w, *members);
                    }
                }
            }
            Frame::Join { rank, data_addr } => {
                w.put_u8(KIND_JOIN);
                put_u64(&mut w, *rank as u64);
                put_str(&mut w, data_addr);
            }
            Frame::Table { addrs } => {
                w.put_u8(KIND_TABLE);
                w.put_len(addrs.len());
                for a in addrs {
                    put_str(&mut w, a);
                }
            }
            Frame::Bye { rank } => {
                w.put_u8(KIND_BYE);
                put_u64(&mut w, *rank as u64);
            }
            Frame::Ping => {
                w.put_u8(KIND_PING);
            }
            Frame::Pong => {
                w.put_u8(KIND_PONG);
            }
            Frame::JoinElastic { data_addr } => {
                w.put_u8(KIND_JOIN_ELASTIC);
                put_str(&mut w, data_addr);
            }
            Frame::Admit {
                rank,
                epoch,
                members,
                addrs,
            } => {
                w.put_u8(KIND_ADMIT);
                put_u64(&mut w, *rank as u64);
                put_u64(&mut w, *epoch);
                w.put_len(members.len());
                for m in members {
                    put_u64(&mut w, *m as u64);
                }
                w.put_len(addrs.len());
                for a in addrs {
                    put_str(&mut w, a);
                }
            }
            Frame::Grow {
                epoch,
                joiner,
                addr,
                members,
            } => {
                w.put_u8(KIND_GROW);
                put_u64(&mut w, *epoch);
                put_u64(&mut w, *joiner as u64);
                put_str(&mut w, addr);
                w.put_len(members.len());
                for m in members {
                    put_u64(&mut w, *m as u64);
                }
            }
        }
        w.into_bytes()
    }

    /// Deserializes a frame body produced by [`Frame::encode`].
    pub fn decode(body: &[u8]) -> Result<Self, SerialError> {
        let mut r = Reader::new(body);
        let frame = match r.take_u8()? {
            KIND_HELLO => Frame::Hello {
                rank: take_u64(&mut r)? as usize,
            },
            KIND_DATA => {
                let src = take_u64(&mut r)? as usize;
                let tag = take_u64(&mut r)? as Tag;
                let ctx = take_u64(&mut r)?;
                let ack_id = take_u64(&mut r)?;
                let n = r.take_len(1)?;
                let payload = r.take(n)?.to_vec();
                Frame::Data {
                    src,
                    tag,
                    ctx,
                    ack_id,
                    payload,
                }
            }
            KIND_ACK => Frame::Ack {
                ack_id: take_u64(&mut r)?,
            },
            KIND_CONTROL => {
                let msg = match r.take_u8()? {
                    0 => ControlMsg::Failed {
                        rank: take_u64(&mut r)? as usize,
                    },
                    1 => ControlMsg::Finished {
                        rank: take_u64(&mut r)? as usize,
                    },
                    2 => ControlMsg::Revoked {
                        ctx: take_u64(&mut r)?,
                    },
                    3 => ControlMsg::Grow {
                        epoch: take_u64(&mut r)?,
                        joiner: take_u64(&mut r)? as usize,
                        members: take_u64(&mut r)?,
                    },
                    _ => return Err(SerialError::Invalid("unknown control kind")),
                };
                Frame::Control(msg)
            }
            KIND_JOIN => Frame::Join {
                rank: take_u64(&mut r)? as usize,
                data_addr: take_str(&mut r)?,
            },
            KIND_TABLE => {
                let n = r.take_len(8)?;
                let addrs = (0..n).map(|_| take_str(&mut r)).collect::<Result<_, _>>()?;
                Frame::Table { addrs }
            }
            KIND_BYE => Frame::Bye {
                rank: take_u64(&mut r)? as usize,
            },
            KIND_PING => Frame::Ping,
            KIND_PONG => Frame::Pong,
            KIND_JOIN_ELASTIC => Frame::JoinElastic {
                data_addr: take_str(&mut r)?,
            },
            KIND_ADMIT => {
                let rank = take_u64(&mut r)? as usize;
                let epoch = take_u64(&mut r)?;
                let n = r.take_len(8)?;
                let members = (0..n)
                    .map(|_| take_u64(&mut r).map(|v| v as usize))
                    .collect::<Result<_, _>>()?;
                let n = r.take_len(1)?;
                let addrs = (0..n).map(|_| take_str(&mut r)).collect::<Result<_, _>>()?;
                Frame::Admit {
                    rank,
                    epoch,
                    members,
                    addrs,
                }
            }
            KIND_GROW => {
                let epoch = take_u64(&mut r)?;
                let joiner = take_u64(&mut r)? as usize;
                let addr = take_str(&mut r)?;
                let n = r.take_len(8)?;
                let members = (0..n)
                    .map(|_| take_u64(&mut r).map(|v| v as usize))
                    .collect::<Result<_, _>>()?;
                Frame::Grow {
                    epoch,
                    joiner,
                    addr,
                    members,
                }
            }
            _ => return Err(SerialError::Invalid("unknown frame kind")),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Writes one length-prefixed frame. Does not flush — batching is the
/// writer thread's call.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let body = frame.encode();
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)
}

/// Encodes one frame *with* its length prefix into a fresh buffer — the
/// unit the progress engine stages for `writev`.
pub(crate) fn encode_prefixed(frame: &Frame) -> Vec<u8> {
    let body = frame.encode();
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&body);
    buf
}

/// Length-prefix + body-header bytes of a `Data` frame, *excluding* the
/// payload — so the ring producer can write header and payload as two
/// parts of one frame without first copying the payload into an
/// intermediate buffer. Byte-identical to
/// `encode_prefixed(&Frame::Data { .. })`.
pub(crate) fn data_frame_header(
    src: usize,
    tag: Tag,
    ctx: u64,
    ack_id: u64,
    payload_len: usize,
) -> [u8; 45] {
    let mut h = [0u8; 45];
    let body_len = (41 + payload_len) as u32;
    h[0..4].copy_from_slice(&body_len.to_le_bytes());
    h[4] = KIND_DATA;
    h[5..13].copy_from_slice(&(src as u64).to_le_bytes());
    h[13..21].copy_from_slice(&(tag as u64).to_le_bytes());
    h[21..29].copy_from_slice(&ctx.to_le_bytes());
    h[29..37].copy_from_slice(&ack_id.to_le_bytes());
    h[37..45].copy_from_slice(&(payload_len as u64).to_le_bytes());
    h
}

/// Reads one length-prefixed frame. EOF at a frame boundary surfaces as
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Frame::decode(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &f).unwrap();
        let mut cursor = buf.as_slice();
        assert_eq!(read_frame(&mut cursor).unwrap(), f);
        assert!(cursor.is_empty(), "frame must consume exactly its bytes");
    }

    #[test]
    fn all_frame_kinds_roundtrip() {
        roundtrip(Frame::Hello { rank: 3 });
        roundtrip(Frame::Data {
            src: 1,
            tag: 42,
            ctx: 7,
            ack_id: 0,
            payload: vec![1, 2, 3],
        });
        roundtrip(Frame::Data {
            src: 0,
            tag: crate::tag::ANY_TAG,
            ctx: u64::MAX,
            ack_id: 99,
            payload: vec![0xab; 100_000],
        });
        roundtrip(Frame::Ack { ack_id: 17 });
        roundtrip(Frame::Control(ControlMsg::Failed { rank: 2 }));
        roundtrip(Frame::Control(ControlMsg::Finished { rank: 0 }));
        roundtrip(Frame::Control(ControlMsg::Revoked { ctx: 0xdead }));
        roundtrip(Frame::Join {
            rank: 2,
            data_addr: "unix:/tmp/data-2.sock".into(),
        });
        roundtrip(Frame::Table {
            addrs: vec!["unix:/a".into(), "tcp:127.0.0.1:1234".into()],
        });
        roundtrip(Frame::Bye { rank: 1 });
        roundtrip(Frame::Ping);
        roundtrip(Frame::Control(ControlMsg::Grow {
            epoch: 3,
            joiner: 4,
            members: 0b10111,
        }));
        roundtrip(Frame::JoinElastic {
            data_addr: "unix:/tmp/data-join.sock".into(),
        });
        roundtrip(Frame::Admit {
            rank: 4,
            epoch: 2,
            members: vec![0, 1, 3, 4],
            addrs: vec![
                "unix:/a".into(),
                "unix:/b".into(),
                "unix:/c".into(),
                "unix:/d".into(),
            ],
        });
        roundtrip(Frame::Grow {
            epoch: 2,
            joiner: 4,
            addr: "tcp:127.0.0.1:9999".into(),
            members: vec![0, 1, 3, 4],
        });
    }

    #[test]
    fn frames_are_self_delimiting_in_a_stream() {
        let frames = [
            Frame::Hello { rank: 0 },
            Frame::Data {
                src: 0,
                tag: 1,
                ctx: 0,
                ack_id: 0,
                payload: b"hello".to_vec(),
            },
            Frame::Bye { rank: 0 },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cursor = buf.as_slice();
        for f in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn data_frame_header_matches_the_encoder() {
        for (src, tag, ctx, ack, payload) in [
            (0usize, 0u32, 0u64, 0u64, &b""[..]),
            (3, crate::tag::ANY_TAG, u64::MAX, 99, &b"some payload"[..]),
        ] {
            let frame = Frame::Data {
                src,
                tag,
                ctx,
                ack_id: ack,
                payload: payload.to_vec(),
            };
            let mut hand = data_frame_header(src, tag, ctx, ack, payload.len()).to_vec();
            hand.extend_from_slice(payload);
            assert_eq!(hand, encode_prefixed(&frame));
        }
    }

    #[test]
    fn corrupt_length_prefix_rejected_without_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = bytes.as_slice();
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn truncated_body_rejected() {
        let body = Frame::Ack { ack_id: 1 }.encode();
        assert!(Frame::decode(&body[..body.len() - 1]).is_err());
        // Trailing garbage is also rejected.
        let mut long = body.clone();
        long.push(0);
        assert!(Frame::decode(&long).is_err());
    }
}
