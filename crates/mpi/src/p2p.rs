//! Point-to-point communication.
//!
//! All ranks are addressed with *communicator-local* ranks; payloads are
//! packed byte buffers (the typed layer above packs and unpacks). Sends are
//! eager and complete locally; synchronous-mode sends complete when matched.
//!
//! Buffers travel as [`Payload`]s: messages of at most
//! [`crate::transport::INLINE_CAP`] bytes are carried inline in the envelope
//! (no allocation), larger ones as a refcounted heap buffer that fan-out
//! senders (broadcast) share across all receivers.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{MpiError, MpiResult};
use crate::profile::Op;
use crate::request::{RawRequest, RequestKind};
use crate::tag::{Tag, ANY_SOURCE};
use crate::transport::{AckCell, Envelope, MatchKey, Payload};
use crate::universe::wait_interrupt;
use crate::RawComm;

/// Delivery metadata of a completed receive or probe (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Communicator-local source rank.
    pub source: usize,
    /// Message tag.
    pub tag: Tag,
    /// Payload length in bytes.
    pub bytes: usize,
}

impl RawComm {
    /// Checks this communicator is usable and translates `dest`.
    fn check_dest(&self, dest: usize) -> MpiResult<usize> {
        if self.state.is_revoked(self.ctx) {
            return Err(MpiError::Revoked);
        }
        self.global_rank(dest)
    }

    /// Deposits `payload` in `dest_global`'s mailbox, recording profile
    /// counters. Messages to failed ranks are silently dropped (a send to a
    /// dead process may complete in MPI; the failure surfaces at receives).
    pub(crate) fn post_to(
        &self,
        dest_global: usize,
        tag: Tag,
        payload: Payload,
        ack: Option<Arc<AckCell>>,
    ) {
        self.state.counters[self.my_global_rank()].record_message(payload.len());
        if self.state.trace.tracing() {
            self.state.trace.record(crate::trace::EventKind::Post {
                src: self.my_global_rank() as u32,
                dst: dest_global as u32,
                tag,
                ctx: self.ctx,
                bytes: payload.len() as u64,
            });
        }
        if self.state.is_failed(dest_global) {
            if let Some(ack) = ack {
                // Never going to be matched; complete it so senders don't hang.
                ack.set();
                self.state.hub.notify();
            }
            return;
        }
        self.state.transport.post(
            dest_global,
            Envelope {
                src: self.my_global_rank(),
                tag,
                ctx: self.ctx,
                payload,
                ack,
            },
        );
    }

    fn match_key(&self, source: usize, tag: Tag) -> MpiResult<MatchKey> {
        if self.state.is_revoked(self.ctx) {
            return Err(MpiError::Revoked);
        }
        let src_global = if source == ANY_SOURCE {
            ANY_SOURCE
        } else {
            self.global_rank(source)?
        };
        Ok(MatchKey {
            src: src_global,
            tag,
            ctx: self.ctx,
        })
    }

    fn status_of(&self, src_global: usize, tag: Tag, bytes: usize) -> Status {
        let source = self.local_rank_of(src_global).unwrap_or(usize::MAX);
        Status { source, tag, bytes }
    }

    /// Blocking standard-mode send of `payload` to local rank `dest`.
    ///
    /// Payloads up to [`crate::transport::INLINE_CAP`] bytes travel inline
    /// in the envelope and never touch the heap.
    pub fn send(&self, dest: usize, tag: Tag, payload: &[u8]) -> MpiResult<()> {
        let _op = self.record(Op::Send);
        let dest_global = self.check_dest(dest)?;
        self.post_to(dest_global, tag, Payload::from_slice(payload), None);
        Ok(())
    }

    /// Blocking send that *moves* the buffer (no copy) — the substrate
    /// counterpart of KaMPIng's ownership-transferring `send_buf(move)`.
    pub fn send_owned(&self, dest: usize, tag: Tag, payload: Vec<u8>) -> MpiResult<()> {
        let _op = self.record(Op::Send);
        let dest_global = self.check_dest(dest)?;
        self.post_to(dest_global, tag, Payload::from_vec(payload), None);
        Ok(())
    }

    /// Blocking send of an already-shared buffer: the receiver aliases the
    /// same allocation. Fan-out senders (broadcast) post one `Arc` per child
    /// instead of one copy per child.
    pub fn send_shared(&self, dest: usize, tag: Tag, payload: Arc<Vec<u8>>) -> MpiResult<()> {
        let _op = self.record(Op::Send);
        let dest_global = self.check_dest(dest)?;
        self.post_to(dest_global, tag, Payload::from_shared(payload), None);
        Ok(())
    }

    /// Blocking receive returning the transport payload (zero-copy when the
    /// payload is uniquely held).
    pub(crate) fn recv_payload(&self, source: usize, tag: Tag) -> MpiResult<(Payload, Status)> {
        let _op = self.record(Op::Recv);
        let key = self.match_key(source, tag)?;
        let me = self.my_global_rank();
        let interrupt = wait_interrupt(&self.state, key.src, self.ctx);
        let d = self.state.mailbox(me).take_blocking(key, &interrupt)?;
        let status = self.status_of(d.src, d.tag, d.payload.len());
        Ok((d.payload, status))
    }

    /// Blocking receive from local rank `source` (or [`ANY_SOURCE`]).
    pub fn recv(&self, source: usize, tag: Tag) -> MpiResult<(Vec<u8>, Status)> {
        let (payload, status) = self.recv_payload(source, tag)?;
        Ok((payload.into_vec(), status))
    }

    /// Like [`RawComm::recv`], but gives up after `timeout` with
    /// [`MpiError::Timeout`] — the bounded receive for failure paths where
    /// the sender may be hung rather than provably dead (severed link,
    /// undetected crash). No message is consumed on timeout.
    pub fn recv_timeout(
        &self,
        source: usize,
        tag: Tag,
        timeout: Duration,
    ) -> MpiResult<(Vec<u8>, Status)> {
        let _op = self.record(Op::Recv);
        let key = self.match_key(source, tag)?;
        let me = self.my_global_rank();
        let interrupt = wait_interrupt(&self.state, key.src, self.ctx);
        let deadline = Some(Instant::now() + timeout);
        let d = self
            .state
            .mailbox(me)
            .take_blocking_deadline(key, &interrupt, deadline)?;
        let status = self.status_of(d.src, d.tag, d.payload.len());
        Ok((d.payload.into_vec(), status))
    }

    /// Blocking receive with a size limit: errors with
    /// [`MpiError::Truncation`] if the matched message exceeds `max_bytes`.
    /// (The message is consumed either way, as in MPI.)
    pub fn recv_bounded(
        &self,
        source: usize,
        tag: Tag,
        max_bytes: usize,
    ) -> MpiResult<(Vec<u8>, Status)> {
        let (payload, status) = self.recv(source, tag)?;
        if payload.len() > max_bytes {
            return Err(MpiError::Truncation {
                expected: max_bytes,
                got: payload.len(),
            });
        }
        Ok((payload, status))
    }

    /// Non-blocking standard-mode send. Completes immediately (eager
    /// transport) but still returns a request for uniform completion code.
    pub fn isend(&self, dest: usize, tag: Tag, payload: Vec<u8>) -> MpiResult<RawRequest> {
        let _op = self.record(Op::Isend);
        let dest_global = self.check_dest(dest)?;
        self.post_to(dest_global, tag, Payload::from_vec(payload), None);
        Ok(RawRequest::new(self.state.clone(), RequestKind::SendDone))
    }

    /// Non-blocking synchronous-mode send: the request completes only once a
    /// matching receive has consumed the message (needed by NBX).
    pub fn issend(&self, dest: usize, tag: Tag, payload: Vec<u8>) -> MpiResult<RawRequest> {
        let _op = self.record(Op::Issend);
        let dest_global = self.check_dest(dest)?;
        let ack = Arc::new(AckCell::default());
        self.post_to(
            dest_global,
            tag,
            Payload::from_vec(payload),
            Some(ack.clone()),
        );
        Ok(RawRequest::new(
            self.state.clone(),
            RequestKind::Ssend { ack, dest_global },
        ))
    }

    /// Non-blocking receive.
    pub fn irecv(&self, source: usize, tag: Tag) -> MpiResult<RawRequest> {
        let _op = self.record(Op::Irecv);
        let key = self.match_key(source, tag)?;
        Ok(RawRequest::new(
            self.state.clone(),
            RequestKind::Recv {
                key,
                me: self.my_global_rank(),
                group: Arc::clone(&self.group),
            },
        ))
    }

    /// Blocking probe: waits (on the mailbox condvar, no polling) until a
    /// matching message is available and returns its status without
    /// consuming it.
    pub fn probe(&self, source: usize, tag: Tag) -> MpiResult<Status> {
        let _op = self.record(Op::Probe);
        let key = self.match_key(source, tag)?;
        let me = self.my_global_rank();
        let interrupt = wait_interrupt(&self.state, key.src, self.ctx);
        let (src, t, n) = self.state.mailbox(me).peek_blocking(key, &interrupt)?;
        Ok(self.status_of(src, t, n))
    }

    /// Like [`RawComm::probe`], but gives up after `timeout` with
    /// [`MpiError::Timeout`].
    pub fn probe_timeout(&self, source: usize, tag: Tag, timeout: Duration) -> MpiResult<Status> {
        let _op = self.record(Op::Probe);
        let key = self.match_key(source, tag)?;
        let me = self.my_global_rank();
        let interrupt = wait_interrupt(&self.state, key.src, self.ctx);
        let deadline = Some(Instant::now() + timeout);
        let (src, t, n) = self
            .state
            .mailbox(me)
            .peek_blocking_deadline(key, &interrupt, deadline)?;
        Ok(self.status_of(src, t, n))
    }

    /// Non-blocking probe (`MPI_Iprobe`).
    pub fn iprobe(&self, source: usize, tag: Tag) -> MpiResult<Option<Status>> {
        let _op = self.record(Op::Iprobe);
        let key = self.match_key(source, tag)?;
        let me = self.my_global_rank();
        Ok(self
            .state
            .mailbox(me)
            .try_peek(key)
            .map(|(s, t, n)| self.status_of(s, t, n)))
    }

    /// Combined send + receive (`MPI_Sendrecv`), deadlock-free.
    pub fn sendrecv(
        &self,
        dest: usize,
        send_tag: Tag,
        payload: &[u8],
        source: usize,
        recv_tag: Tag,
    ) -> MpiResult<(Vec<u8>, Status)> {
        // The eager transport makes the send non-blocking, so the naive
        // order is already deadlock-free.
        self.send(dest, send_tag, payload)?;
        self.recv(source, recv_tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::ANY_TAG;
    use crate::Universe;

    #[test]
    fn ping_pong() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, b"ping").unwrap();
                let (msg, st) = comm.recv(1, 8).unwrap();
                assert_eq!(msg, b"pong");
                assert_eq!(
                    st,
                    Status {
                        source: 1,
                        tag: 8,
                        bytes: 4
                    }
                );
            } else {
                let (msg, _) = comm.recv(0, 7).unwrap();
                assert_eq!(msg, b"ping");
                comm.send(0, 8, b"pong").unwrap();
            }
        });
    }

    #[test]
    fn any_source_any_tag() {
        Universe::run(3, |comm| {
            if comm.rank() == 0 {
                let mut seen = Vec::new();
                for _ in 0..2 {
                    let (msg, st) = comm.recv(ANY_SOURCE, ANY_TAG).unwrap();
                    assert_eq!(msg.len(), 1);
                    seen.push((st.source, st.tag, msg[0]));
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![(1, 10, 1), (2, 20, 2)]);
            } else {
                let me = comm.rank() as u8;
                comm.send(0, comm.rank() as Tag * 10, &[me]).unwrap();
            }
        });
    }

    #[test]
    fn non_overtaking_same_channel() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..50u8 {
                    comm.send(1, 3, &[i]).unwrap();
                }
            } else {
                for i in 0..50u8 {
                    let (msg, _) = comm.recv(0, 3).unwrap();
                    assert_eq!(msg, vec![i]);
                }
            }
        });
    }

    #[test]
    fn tags_demultiplex() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, b"one").unwrap();
                comm.send(1, 2, b"two").unwrap();
            } else {
                // Receive out of send order via tags.
                let (two, _) = comm.recv(0, 2).unwrap();
                let (one, _) = comm.recv(0, 1).unwrap();
                assert_eq!((one.as_slice(), two.as_slice()), (&b"one"[..], &b"two"[..]));
            }
        });
    }

    #[test]
    fn irecv_test_then_complete() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut req = comm.irecv(1, 0).unwrap();
                // Tell rank 1 we're ready, then spin on test().
                comm.send(1, 1, b"go").unwrap();
                loop {
                    if let Some((payload, st)) = req.test().unwrap() {
                        assert_eq!(payload, b"data");
                        assert_eq!(st.tag, 0);
                        break;
                    }
                    std::thread::yield_now();
                }
            } else {
                comm.recv(0, 1).unwrap();
                comm.send(0, 0, b"data").unwrap();
            }
        });
    }

    #[test]
    fn issend_completes_only_on_match() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut req = comm.issend(1, 0, b"sync".to_vec()).unwrap();
                assert!(
                    req.test().unwrap().is_none(),
                    "unmatched ssend must be incomplete"
                );
                comm.send(1, 1, b"now-recv").unwrap();
                req.wait().unwrap();
            } else {
                comm.recv(0, 1).unwrap();
                let (msg, _) = comm.recv(0, 0).unwrap();
                assert_eq!(msg, b"sync");
            }
        });
    }

    #[test]
    fn probe_then_recv() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 4, &[9; 17]).unwrap();
            } else {
                let st = comm.probe(0, 4).unwrap();
                assert_eq!(st.bytes, 17);
                let (msg, _) = comm.recv(st.source, st.tag).unwrap();
                assert_eq!(msg.len(), 17);
            }
        });
    }

    #[test]
    fn iprobe_none_when_empty() {
        Universe::run(1, |comm| {
            assert!(comm.iprobe(0, 0).unwrap().is_none());
        });
    }

    #[test]
    fn truncation_detected() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[0; 100]).unwrap();
            } else {
                let err = comm.recv_bounded(0, 0, 10).unwrap_err();
                assert_eq!(
                    err,
                    MpiError::Truncation {
                        expected: 10,
                        got: 100
                    }
                );
            }
        });
    }

    #[test]
    fn sendrecv_ring_rotation() {
        Universe::run(4, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let (got, _) = comm
                .sendrecv(right, 0, &[comm.rank() as u8], left, 0)
                .unwrap();
            assert_eq!(got, vec![left as u8]);
        });
    }

    #[test]
    fn invalid_rank_rejected() {
        Universe::run(2, |comm| {
            assert!(matches!(
                comm.send(5, 0, b"x"),
                Err(MpiError::InvalidRank { rank: 5, size: 2 })
            ));
        });
    }

    #[test]
    fn send_owned_moves_buffer() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let buf = vec![1u8, 2, 3];
                comm.send_owned(1, 0, buf).unwrap();
            } else {
                let (msg, _) = comm.recv(0, 0).unwrap();
                assert_eq!(msg, vec![1, 2, 3]);
            }
        });
    }

    #[test]
    fn send_shared_aliases_one_allocation() {
        Universe::run(3, |comm| {
            if comm.rank() == 0 {
                let buf = Arc::new(vec![5u8; 1000]);
                comm.send_shared(1, 0, buf.clone()).unwrap();
                comm.send_shared(2, 0, buf).unwrap();
            } else {
                let (msg, _) = comm.recv(0, 0).unwrap();
                assert_eq!(msg, vec![5u8; 1000]);
            }
        });
    }
}
