//! PMPI-analog profiling interface.
//!
//! The paper (§III-H) uses MPI's profiling interface to verify that the
//! binding layer "only issues the expected MPI calls" when it computes
//! default parameters. This module is our equivalent: every substrate
//! operation increments a per-rank call counter, and the transport
//! increments per-rank message/byte counters at every envelope post.
//!
//! Two consumers:
//! * the test suites assert exact call patterns (e.g. an `allgatherv` with
//!   omitted receive counts issues exactly one extra `allgather`);
//! * the benchmark harness reads message/byte counts as a machine-independent
//!   LogGP-style cost model (`alpha * messages + beta * bytes`), which is how
//!   EXPERIMENTS.md verifies the *asymptotic shape* of Fig. 10 (linear
//!   all-to-all vs. O(sqrt p) grid vs. degree-proportional sparse exchange)
//!   independent of wall-clock noise.

use std::sync::atomic::{AtomicU64, Ordering};

/// Substrate operations tracked by the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
#[allow(missing_docs)]
pub enum Op {
    Send,
    Isend,
    Issend,
    Recv,
    Irecv,
    Probe,
    Iprobe,
    Barrier,
    Ibarrier,
    Bcast,
    Gather,
    Gatherv,
    Scatter,
    Scatterv,
    Allgather,
    Allgatherv,
    Alltoall,
    Alltoallv,
    Alltoallw,
    Reduce,
    Allreduce,
    Scan,
    Exscan,
    NeighborAlltoallv,
    CommSplit,
    CommDup,
    Shrink,
    Agree,
    Ibcast,
    Ireduce,
    Iallreduce,
    Iallgather,
    Iallgatherv,
    Ialltoall,
    Ialltoallv,
    Grow,
}

/// Number of distinct [`Op`] variants.
pub const N_OPS: usize = Op::Grow as usize + 1;

/// All operations, in discriminant order (for reporting).
pub const ALL_OPS: [Op; N_OPS] = [
    Op::Send,
    Op::Isend,
    Op::Issend,
    Op::Recv,
    Op::Irecv,
    Op::Probe,
    Op::Iprobe,
    Op::Barrier,
    Op::Ibarrier,
    Op::Bcast,
    Op::Gather,
    Op::Gatherv,
    Op::Scatter,
    Op::Scatterv,
    Op::Allgather,
    Op::Allgatherv,
    Op::Alltoall,
    Op::Alltoallv,
    Op::Alltoallw,
    Op::Reduce,
    Op::Allreduce,
    Op::Scan,
    Op::Exscan,
    Op::NeighborAlltoallv,
    Op::CommSplit,
    Op::CommDup,
    Op::Shrink,
    Op::Agree,
    Op::Ibcast,
    Op::Ireduce,
    Op::Iallreduce,
    Op::Iallgather,
    Op::Iallgatherv,
    Op::Ialltoall,
    Op::Ialltoallv,
    Op::Grow,
];

impl Op {
    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Op::Send => "send",
            Op::Isend => "isend",
            Op::Issend => "issend",
            Op::Recv => "recv",
            Op::Irecv => "irecv",
            Op::Probe => "probe",
            Op::Iprobe => "iprobe",
            Op::Barrier => "barrier",
            Op::Ibarrier => "ibarrier",
            Op::Bcast => "bcast",
            Op::Gather => "gather",
            Op::Gatherv => "gatherv",
            Op::Scatter => "scatter",
            Op::Scatterv => "scatterv",
            Op::Allgather => "allgather",
            Op::Allgatherv => "allgatherv",
            Op::Alltoall => "alltoall",
            Op::Alltoallv => "alltoallv",
            Op::Alltoallw => "alltoallw",
            Op::Reduce => "reduce",
            Op::Allreduce => "allreduce",
            Op::Scan => "scan",
            Op::Exscan => "exscan",
            Op::NeighborAlltoallv => "neighbor_alltoallv",
            Op::CommSplit => "comm_split",
            Op::CommDup => "comm_dup",
            Op::Shrink => "shrink",
            Op::Agree => "agree",
            Op::Ibcast => "ibcast",
            Op::Ireduce => "ireduce",
            Op::Iallreduce => "iallreduce",
            Op::Iallgather => "iallgather",
            Op::Iallgatherv => "iallgatherv",
            Op::Ialltoall => "ialltoall",
            Op::Ialltoallv => "ialltoallv",
            Op::Grow => "grow",
        }
    }
}

/// Live per-rank counters (atomics, written by the rank's thread).
#[derive(Debug)]
pub struct RankCounters {
    op_calls: [AtomicU64; N_OPS],
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
}

impl Default for RankCounters {
    fn default() -> Self {
        Self {
            op_calls: std::array::from_fn(|_| AtomicU64::new(0)),
            messages_sent: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
        }
    }
}

impl RankCounters {
    /// Records one invocation of `op`.
    pub fn record_op(&self, op: Op) {
        self.op_calls[op as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one posted envelope of `bytes` payload bytes.
    pub fn record_message(&self, bytes: usize) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> RankProfile {
        RankProfile {
            op_calls: std::array::from_fn(|i| self.op_calls[i].load(Ordering::Relaxed)),
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
        }
    }
}

/// Frozen counters of one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankProfile {
    /// Call count per [`Op`] (indexed by discriminant).
    pub op_calls: [u64; N_OPS],
    /// Envelopes posted by this rank.
    pub messages_sent: u64,
    /// Payload bytes posted by this rank.
    pub bytes_sent: u64,
}

/// Wire size of one serialized [`RankProfile`]: all op counters plus the
/// message/byte counters, 8 bytes each (little-endian `u64`).
pub const PROFILE_WIRE_BYTES: usize = (N_OPS + 2) * 8;

impl RankProfile {
    /// Call count for one operation.
    pub fn calls(&self, op: Op) -> u64 {
        self.op_calls[op as usize]
    }

    /// Fixed-size wire form ([`PROFILE_WIRE_BYTES`] bytes): op counters in
    /// discriminant order, then messages, then bytes — exchanged by the
    /// socket backend so cross-process snapshots cover every rank.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PROFILE_WIRE_BYTES);
        for c in &self.op_calls {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&self.messages_sent.to_le_bytes());
        out.extend_from_slice(&self.bytes_sent.to_le_bytes());
        out
    }

    /// Parses the [`RankProfile::to_bytes`] form; `None` on a size
    /// mismatch (e.g. a peer built with a different op set).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != PROFILE_WIRE_BYTES {
            return None;
        }
        let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8"));
        Some(Self {
            op_calls: std::array::from_fn(word),
            messages_sent: word(N_OPS),
            bytes_sent: word(N_OPS + 1),
        })
    }

    fn saturating_sub(&self, earlier: &RankProfile) -> RankProfile {
        RankProfile {
            op_calls: std::array::from_fn(|i| self.op_calls[i].saturating_sub(earlier.op_calls[i])),
            messages_sent: self.messages_sent.saturating_sub(earlier.messages_sent),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
        }
    }
}

/// Frozen counters of the whole universe at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// One entry per global rank.
    pub ranks: Vec<RankProfile>,
}

impl ProfileSnapshot {
    pub(crate) fn capture(counters: &[RankCounters]) -> Self {
        Self {
            ranks: counters.iter().map(RankCounters::snapshot).collect(),
        }
    }

    /// Counter deltas since `earlier` (elementwise saturating).
    pub fn since(&self, earlier: &ProfileSnapshot) -> ProfileSnapshot {
        ProfileSnapshot {
            ranks: self
                .ranks
                .iter()
                .zip(&earlier.ranks)
                .map(|(now, then)| now.saturating_sub(then))
                .collect(),
        }
    }

    /// Total call count for one operation across all ranks.
    pub fn total_calls(&self, op: Op) -> u64 {
        self.ranks.iter().map(|r| r.calls(op)).sum()
    }

    /// Total envelopes posted across all ranks.
    pub fn total_messages(&self) -> u64 {
        self.ranks.iter().map(|r| r.messages_sent).sum()
    }

    /// Total payload bytes posted across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_sent).sum()
    }

    /// Maximum envelopes posted by any single rank (bottleneck startups).
    pub fn max_messages_per_rank(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.messages_sent)
            .max()
            .unwrap_or(0)
    }

    /// LogGP-style modeled time: the bottleneck rank's
    /// `alpha * messages + beta * bytes`.
    ///
    /// `alpha` is the per-message startup cost, `beta` the per-byte cost
    /// (both in arbitrary time units). This captures exactly the trade-off
    /// §V-A of the paper discusses: grid all-to-all pays more `beta`
    /// (volume) to save `alpha * p` startups.
    pub fn modeled_time(&self, alpha: f64, beta: f64) -> f64 {
        self.ranks
            .iter()
            .map(|r| alpha * r.messages_sent as f64 + beta * r.bytes_sent as f64)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let c = RankCounters::default();
        c.record_op(Op::Bcast);
        c.record_op(Op::Bcast);
        c.record_op(Op::Allgatherv);
        c.record_message(100);
        c.record_message(28);
        let snap = ProfileSnapshot::capture(std::slice::from_ref(&c));
        assert_eq!(snap.total_calls(Op::Bcast), 2);
        assert_eq!(snap.total_calls(Op::Allgatherv), 1);
        assert_eq!(snap.total_calls(Op::Reduce), 0);
        assert_eq!(snap.total_messages(), 2);
        assert_eq!(snap.total_bytes(), 128);
    }

    #[test]
    fn since_computes_deltas() {
        let c = RankCounters::default();
        c.record_op(Op::Send);
        let before = ProfileSnapshot::capture(std::slice::from_ref(&c));
        c.record_op(Op::Send);
        c.record_message(10);
        let after = ProfileSnapshot::capture(std::slice::from_ref(&c));
        let d = after.since(&before);
        assert_eq!(d.total_calls(Op::Send), 1);
        assert_eq!(d.total_bytes(), 10);
    }

    #[test]
    fn modeled_time_is_bottleneck_rank() {
        let a = RankCounters::default();
        let b = RankCounters::default();
        a.record_message(8); // 1 msg, 8 bytes
        for _ in 0..10 {
            b.record_message(0); // 10 msgs, 0 bytes
        }
        let snap = ProfileSnapshot::capture(&[a, b]);
        // alpha-dominated: rank b is the bottleneck
        assert_eq!(snap.modeled_time(1.0, 0.0), 10.0);
        // beta-dominated: rank a is the bottleneck
        assert_eq!(snap.modeled_time(0.0, 1.0), 8.0);
    }

    #[test]
    fn op_names_unique() {
        let mut names: Vec<_> = ALL_OPS.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_OPS);
    }
}
