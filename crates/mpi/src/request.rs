//! Non-blocking request handles.
//!
//! A [`RawRequest`] is the substrate analog of `MPI_Request`: it is produced
//! by `isend`/`issend`/`irecv`/`ibarrier` and completed with
//! [`RawRequest::test`] or [`RawRequest::wait`]. Receive requests yield the
//! message payload and a [`Status`]; send/barrier requests yield nothing.
//!
//! The ownership-based safety guarantees the paper builds (§III-E) live one
//! level up, in `kamping::nonblocking` — at this level requests are as
//! unsafe-to-misuse as MPI's, by design.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{MpiError, MpiResult};
use crate::icoll::RawCollRequest;
use crate::p2p::Status;
use crate::transport::{AckCell, MatchKey};
use crate::universe::{wait_interrupt, UniverseState};

/// What a request is waiting for.
pub(crate) enum RequestKind {
    /// Eager send: already complete.
    SendDone,
    /// Synchronous-mode send: complete when the ack cell is set, error if
    /// the destination dies before matching (avoids an unbounded wait).
    Ssend {
        ack: Arc<AckCell>,
        dest_global: usize,
    },
    /// Receive: complete when a matching envelope arrives.
    Recv {
        key: MatchKey,
        me: usize,
        group: Arc<Vec<usize>>,
    },
    /// Non-blocking collective (today only the barrier arrives here):
    /// complete when the icoll engine settles the schedule.
    Coll(RawCollRequest),
}

/// Payload of a completed request.
#[derive(Debug, PartialEq, Eq)]
pub enum Completion {
    /// A send or barrier completed.
    Done,
    /// A receive completed with this payload and status.
    Message(Vec<u8>, Status),
}

/// A non-blocking operation in flight.
pub struct RawRequest {
    state: Arc<UniverseState>,
    kind: Option<RequestKind>,
    /// Blocked time accumulated across *all* timed-out wait attempts, so a
    /// retried [`RawRequest::wait_timeout`] reports the total in
    /// [`MpiError::Timeout`] instead of restarting the clock each attempt.
    waited: Duration,
}

impl RawRequest {
    pub(crate) fn new(state: Arc<UniverseState>, kind: RequestKind) -> Self {
        Self {
            state,
            kind: Some(kind),
            waited: Duration::ZERO,
        }
    }

    /// True once [`test`](Self::test)/[`wait`](Self::wait) has completed the
    /// request (subsequent calls are no-ops, mirroring
    /// `MPI_REQUEST_NULL` semantics).
    pub fn is_complete(&self) -> bool {
        self.kind.is_none()
    }

    fn local_status(group: &[usize], src_global: usize, tag: crate::Tag, bytes: usize) -> Status {
        let source = group
            .iter()
            .position(|&g| g == src_global)
            .unwrap_or(usize::MAX);
        Status { source, tag, bytes }
    }

    /// Polls for completion. For receives, returns the payload/status pair
    /// when complete. A completed (null) request reports `Some(None)`-like
    /// behaviour: it is complete with no payload.
    pub fn test(&mut self) -> MpiResult<Option<(Vec<u8>, Status)>> {
        match self.test_any()? {
            None => Ok(None),
            Some(Completion::Done) => Ok(Some((
                Vec::new(),
                Status {
                    source: usize::MAX,
                    tag: 0,
                    bytes: 0,
                },
            ))),
            Some(Completion::Message(payload, status)) => Ok(Some((payload, status))),
        }
    }

    /// Polls for completion, distinguishing send/barrier completions from
    /// message deliveries.
    pub fn test_any(&mut self) -> MpiResult<Option<Completion>> {
        let Some(kind) = self.kind.take() else {
            return Ok(Some(Completion::Done));
        };
        match kind {
            RequestKind::SendDone => Ok(Some(Completion::Done)),
            RequestKind::Ssend { ack, dest_global } => {
                if ack.is_set() {
                    Ok(Some(Completion::Done))
                } else if self.state.is_gone(dest_global) {
                    // The destination will never match this message.
                    Err(crate::MpiError::ProcFailed { rank: dest_global })
                } else {
                    self.kind = Some(RequestKind::Ssend { ack, dest_global });
                    Ok(None)
                }
            }
            RequestKind::Recv { key, me, group } => {
                // Surface failures/revocation even while polling.
                let interrupt = wait_interrupt(&self.state, key.src, key.ctx);
                match self.state.mailbox(me).try_take(key) {
                    Some(d) => {
                        let status = Self::local_status(&group, d.src, d.tag, d.payload.len());
                        Ok(Some(Completion::Message(d.payload.into_vec(), status)))
                    }
                    None => {
                        if let Some(err) = interrupt() {
                            return Err(err);
                        }
                        self.kind = Some(RequestKind::Recv { key, me, group });
                        Ok(None)
                    }
                }
            }
            RequestKind::Coll(mut req) => match req.test() {
                Ok(Some(_)) => Ok(Some(Completion::Done)),
                Ok(None) => {
                    self.kind = Some(RequestKind::Coll(req));
                    Ok(None)
                }
                Err(e) => Err(e),
            },
        }
    }

    /// Blocks until the request completes. Never polls: receives and
    /// collectives block on the owning mailbox's condvar, synchronous-send
    /// acks block on the universe [`crate::transport::Hub`].
    pub fn wait(&mut self) -> MpiResult<(Vec<u8>, Status)> {
        self.wait_deadline(None)
    }

    /// Like [`RawRequest::wait`], but gives up after `timeout` with
    /// [`MpiError::Timeout`]. The request stays *pending* on timeout (it
    /// can be waited on again with a longer budget), so a hung peer —
    /// severed link, silent death the failure detector has not caught yet
    /// — surfaces as an error instead of blocking forever.
    pub fn wait_timeout(&mut self, timeout: Duration) -> MpiResult<(Vec<u8>, Status)> {
        self.wait_deadline(Some(Instant::now() + timeout))
    }

    /// [`RawRequest::wait`] with an optional absolute deadline — the form
    /// used when one budget spans several requests. `None` waits forever.
    pub fn wait_deadline(&mut self, deadline: Option<Instant>) -> MpiResult<(Vec<u8>, Status)> {
        let start = Instant::now();
        let done_status = Status {
            source: usize::MAX,
            tag: 0,
            bytes: 0,
        };
        match self.kind.take() {
            None | Some(RequestKind::SendDone) => Ok((Vec::new(), done_status)),
            Some(RequestKind::Recv { key, me, group }) => {
                let interrupt = wait_interrupt(&self.state, key.src, key.ctx);
                match self
                    .state
                    .mailbox(me)
                    .take_blocking_deadline(key, &interrupt, deadline)
                {
                    Ok(d) => {
                        let status = Self::local_status(&group, d.src, d.tag, d.payload.len());
                        Ok((d.payload.into_vec(), status))
                    }
                    Err(e) => {
                        if e.is_timeout() {
                            self.kind = Some(RequestKind::Recv { key, me, group });
                            self.waited += start.elapsed();
                            return Err(MpiError::Timeout {
                                waited: self.waited,
                            });
                        }
                        Err(e)
                    }
                }
            }
            Some(RequestKind::Ssend { ack, dest_global }) => {
                let state = Arc::clone(&self.state);
                let verdict = state.hub.wait_until_deadline(
                    || {
                        if ack.is_set() {
                            Some(Ok(()))
                        } else if state.is_gone(dest_global) {
                            Some(Err(crate::MpiError::ProcFailed { rank: dest_global }))
                        } else {
                            None
                        }
                    },
                    deadline,
                );
                match verdict {
                    Some(Ok(())) => Ok((Vec::new(), done_status)),
                    Some(Err(e)) => Err(e),
                    None => {
                        self.kind = Some(RequestKind::Ssend { ack, dest_global });
                        self.waited += start.elapsed();
                        Err(MpiError::Timeout {
                            waited: self.waited,
                        })
                    }
                }
            }
            Some(RequestKind::Coll(mut req)) => match req.wait_deadline(deadline) {
                Ok(_) => Ok((Vec::new(), done_status)),
                Err(e) => {
                    if e.is_timeout() {
                        // The inner request accumulates `waited` across
                        // attempts itself.
                        self.kind = Some(RequestKind::Coll(req));
                    }
                    Err(e)
                }
            },
        }
    }

    /// Completes all requests, returning receive payloads in request order
    /// (`MPI_Waitall`).
    pub fn wait_all(requests: &mut [RawRequest]) -> MpiResult<Vec<(Vec<u8>, Status)>> {
        requests.iter_mut().map(RawRequest::wait).collect()
    }

    /// Waits until at least one request completes and returns
    /// `(index, payload, status)` (`MPI_Waitany`). Returns `None` when every
    /// request was already complete.
    pub fn wait_any(requests: &mut [RawRequest]) -> MpiResult<Option<(usize, Vec<u8>, Status)>> {
        if requests.iter().all(RawRequest::is_complete) {
            return Ok(None);
        }
        loop {
            for (i, r) in requests.iter_mut().enumerate() {
                if r.is_complete() {
                    continue;
                }
                if let Some(done) = r.test()? {
                    return Ok(Some((i, done.0, done.1)));
                }
            }
            std::thread::yield_now();
        }
    }

    /// Tests all requests; returns completions (index, payload, status) of
    /// those that finished this poll (`MPI_Testsome`).
    pub fn test_some(requests: &mut [RawRequest]) -> MpiResult<Vec<(usize, Vec<u8>, Status)>> {
        let mut done = Vec::new();
        for (i, r) in requests.iter_mut().enumerate() {
            if r.is_complete() {
                continue;
            }
            if let Some((payload, status)) = r.test()? {
                done.push((i, payload, status));
            }
        }
        Ok(done)
    }
}

/// A simple pool collecting requests for bulk completion — the substrate
/// analog of KaMPIng's unbounded request pool (§III-E). The bounded variant
/// lives in the binding layer.
#[derive(Default)]
pub struct RequestPool {
    requests: Vec<RawRequest>,
    /// Completions gathered by partial polls, keyed by insertion index.
    completed: HashMap<usize, (Vec<u8>, Status)>,
}

impl RequestPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a request; returns its index within the pool.
    pub fn push(&mut self, request: RawRequest) -> usize {
        self.requests.push(request);
        self.requests.len() - 1
    }

    /// Number of pooled requests (complete or not).
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the pool holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Completes every pooled request; returns payload/status pairs in
    /// insertion order and empties the pool.
    pub fn wait_all(&mut self) -> MpiResult<Vec<(Vec<u8>, Status)>> {
        let mut out: Vec<(Vec<u8>, Status)> = Vec::with_capacity(self.requests.len());
        for (i, r) in self.requests.iter_mut().enumerate() {
            if let Some(done) = self.completed.remove(&i) {
                out.push(done);
            } else {
                out.push(r.wait()?);
            }
        }
        self.requests.clear();
        self.completed.clear();
        Ok(out)
    }

    /// Polls every incomplete request once; true when all are complete.
    pub fn test_all(&mut self) -> MpiResult<bool> {
        let mut all = true;
        for (i, r) in self.requests.iter_mut().enumerate() {
            if self.completed.contains_key(&i) {
                continue;
            }
            match r.test()? {
                Some(done) => {
                    self.completed.insert(i, done);
                }
                None => all = false,
            }
        }
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn isend_request_completes_immediately() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut req = comm.isend(1, 0, b"x".to_vec()).unwrap();
                assert!(req.test().unwrap().is_some());
                assert!(req.is_complete());
                // Completed requests stay complete.
                assert!(req.test().unwrap().is_some());
            } else {
                comm.recv(0, 0).unwrap();
            }
        });
    }

    #[test]
    fn wait_all_orders_by_request() {
        Universe::run(3, |comm| {
            if comm.rank() == 0 {
                let mut reqs = vec![comm.irecv(1, 0).unwrap(), comm.irecv(2, 0).unwrap()];
                let done = RawRequest::wait_all(&mut reqs).unwrap();
                assert_eq!(done[0].0, b"from-1");
                assert_eq!(done[1].0, b"from-2");
            } else {
                let msg = format!("from-{}", comm.rank());
                comm.send(0, 0, msg.as_bytes()).unwrap();
            }
        });
    }

    #[test]
    fn wait_any_returns_some_completion() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut reqs = vec![comm.irecv(1, 0).unwrap()];
                let (idx, payload, _) = RawRequest::wait_any(&mut reqs).unwrap().unwrap();
                assert_eq!(idx, 0);
                assert_eq!(payload, b"only");
                assert!(RawRequest::wait_any(&mut reqs).unwrap().is_none());
            } else {
                comm.send(0, 0, b"only").unwrap();
            }
        });
    }

    #[test]
    fn wait_timeout_accumulates_waited_across_attempts() {
        use std::time::Duration;
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut req = comm.irecv(1, 7).unwrap();
                let budget = Duration::from_millis(40);
                let crate::MpiError::Timeout { waited: w1 } = req.wait_timeout(budget).unwrap_err()
                else {
                    panic!("expected timeout");
                };
                let crate::MpiError::Timeout { waited: w2 } = req.wait_timeout(budget).unwrap_err()
                else {
                    panic!("expected timeout");
                };
                // The second report must include the first attempt's wait:
                // total-so-far, not per-attempt.
                assert!(
                    w2 >= w1 + budget,
                    "waited must accumulate: w1={w1:?} w2={w2:?}"
                );
                comm.send(1, 0, b"go").unwrap();
                let (payload, _) = req.wait().unwrap();
                assert_eq!(payload, b"late");
            } else {
                comm.recv(0, 0).unwrap();
                comm.send(0, 7, b"late").unwrap();
            }
        });
    }

    #[test]
    fn pool_wait_all() {
        Universe::run(4, |comm| {
            if comm.rank() == 0 {
                let mut pool = RequestPool::new();
                for src in 1..comm.size() {
                    pool.push(comm.irecv(src, 0).unwrap());
                }
                assert_eq!(pool.len(), 3);
                let done = pool.wait_all().unwrap();
                assert!(pool.is_empty());
                let bytes: Vec<u8> = done.iter().map(|(p, _)| p[0]).collect();
                assert_eq!(bytes, vec![1, 2, 3]);
            } else {
                comm.send(0, 0, &[comm.rank() as u8]).unwrap();
            }
        });
    }

    #[test]
    fn pool_test_all_makes_progress() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut pool = RequestPool::new();
                pool.push(comm.irecv(1, 0).unwrap());
                comm.send(1, 1, b"go").unwrap();
                while !pool.test_all().unwrap() {
                    std::thread::yield_now();
                }
                let done = pool.wait_all().unwrap();
                assert_eq!(done[0].0, b"late");
            } else {
                comm.recv(0, 1).unwrap();
                comm.send(0, 0, b"late").unwrap();
            }
        });
    }
}
