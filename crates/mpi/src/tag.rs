//! Message tags and matching wildcards.
//!
//! User code may use tags `0 ..= MAX_USER_TAG`. The substrate reserves the
//! upper tag space for internal collective traffic so that user
//! point-to-point messages can never be confused with, say, the tree
//! messages of a broadcast that is in flight on the same communicator.

/// A message tag.
pub type Tag = u32;

/// Largest tag available to user code.
pub const MAX_USER_TAG: Tag = (1 << 24) - 1;

/// Wildcard: match a message from any source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: usize = usize::MAX;

/// Wildcard: match a message with any *user* tag (`MPI_ANY_TAG`).
pub const ANY_TAG: Tag = u32::MAX;

/// Base of the internal tag space used by collectives.
pub(crate) const COLL_TAG_BASE: Tag = 1 << 24;

/// Builds the internal tag for the `seq`-th collective on a communicator.
///
/// Collectives must be called in the same order on every rank of a
/// communicator (an MPI requirement we inherit), so a per-communicator
/// sequence number disambiguates successive collectives even when a fast
/// rank races ahead into the next one.
pub(crate) fn coll_tag(seq: u32) -> Tag {
    COLL_TAG_BASE + (seq & 0x00ff_ffff)
}

/// Returns true if `msg_tag` (a concrete tag on a queued message) matches
/// the receiver's requested `want` tag, honouring [`ANY_TAG`].
///
/// `ANY_TAG` only matches user-space tags: internal collective messages are
/// never surfaced to wildcard receives, mirroring how MPI keeps collective
/// traffic on a separate communicator "context".
pub(crate) fn tag_matches(want: Tag, msg_tag: Tag) -> bool {
    if want == ANY_TAG {
        msg_tag <= MAX_USER_TAG
    } else {
        want == msg_tag
    }
}

/// Returns true if `msg_src` matches the requested `want` source.
pub(crate) fn source_matches(want: usize, msg_src: usize) -> bool {
    want == ANY_SOURCE || want == msg_src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_tag_matches_only_user_space() {
        assert!(tag_matches(ANY_TAG, 0));
        assert!(tag_matches(ANY_TAG, MAX_USER_TAG));
        assert!(!tag_matches(ANY_TAG, coll_tag(0)));
        assert!(!tag_matches(ANY_TAG, coll_tag(123)));
    }

    #[test]
    fn exact_tag_matching() {
        assert!(tag_matches(7, 7));
        assert!(!tag_matches(7, 8));
        // Internal tags can still be matched exactly (by the collectives).
        assert!(tag_matches(coll_tag(3), coll_tag(3)));
    }

    #[test]
    fn source_wildcard() {
        assert!(source_matches(ANY_SOURCE, 0));
        assert!(source_matches(ANY_SOURCE, 12345));
        assert!(source_matches(3, 3));
        assert!(!source_matches(3, 4));
    }

    #[test]
    fn coll_tags_distinct_for_distinct_seq() {
        assert_ne!(coll_tag(0), coll_tag(1));
        assert!(coll_tag(0) > MAX_USER_TAG);
    }
}
