//! Graph topologies and neighborhood collectives.
//!
//! MPI-3 neighborhood collectives let applications with *static* sparse
//! communication patterns exchange data with their neighbours only, avoiding
//! the linear-in-`p` cost of `MPI_Alltoallv`. The paper (§V-A) contrasts
//! them with its sparse (NBX) plugin: neighborhood collectives win when the
//! pattern is static, but rebuilding the graph every few exchanges — as
//! dynamic algorithms must — "does not scale". The rebuild cost is real
//! here too: creating a topology is a collective that verifies the
//! neighbour lists' consistency with an allgather of degrees (which is what
//! implementations' sanity checks amount to).

use std::sync::Arc;

use crate::comm::ContextKind;
use crate::error::{MpiError, MpiResult};
use crate::profile::Op;
use crate::tag::coll_tag;
use crate::RawComm;

/// The host-group view of a communicator: ranks partitioned by physical
/// locality ([`crate::transport::Locality`]), as consumed by the
/// hierarchical collectives (DESIGN.md §11).
///
/// A *group* is a maximal set of ranks that share a host (in-process
/// threads, or processes wired by shm-xproc rings); its *leader* is the
/// lowest rank of the group. On the plain shm backend every rank is one
/// group; on a pure-socket job every rank is its own group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierTopo {
    /// Group id of every communicator rank.
    pub group_of: Vec<usize>,
    /// Members of each group, ascending (the leader is `groups[g][0]`).
    pub groups: Vec<Vec<usize>>,
    /// This rank's group id.
    pub my_group: usize,
}

impl HierTopo {
    /// Leader (lowest rank) of group `g`.
    pub fn leader(&self, g: usize) -> usize {
        self.groups[g][0]
    }

    /// All group leaders, in group-id (= ascending-leader) order.
    pub fn leaders(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g[0]).collect()
    }

    /// True if a two-level tree can beat a flat one: more than one host
    /// group, and at least one group with local fan-out.
    pub fn has_fanout(&self) -> bool {
        self.groups.len() > 1 && self.groups.iter().any(|g| g.len() >= 2)
    }
}

/// Adjacency of one rank in a distributed communication graph
/// (`MPI_Dist_graph_create_adjacent`). Ranks are communicator-local.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphTopo {
    /// Ranks this rank receives from.
    pub sources: Vec<usize>,
    /// Ranks this rank sends to.
    pub destinations: Vec<usize>,
}

impl RawComm {
    /// Creates a communicator with an attached graph topology (collective).
    ///
    /// `sources` are the ranks this rank will receive from in neighborhood
    /// collectives, `destinations` the ranks it will send to. Every edge
    /// must be declared consistently on both endpoints (A lists B as a
    /// destination iff B lists A as a source); this is the caller's
    /// responsibility, exactly as in MPI.
    pub fn dist_graph_create_adjacent(
        &self,
        sources: Vec<usize>,
        destinations: Vec<usize>,
    ) -> MpiResult<RawComm> {
        for &r in sources.iter().chain(&destinations) {
            if r >= self.size() {
                return Err(MpiError::InvalidRank {
                    rank: r,
                    size: self.size(),
                });
            }
        }
        let seq = self.next_coll_seq();
        // Setup collective: exchange degrees (the consistency-check /
        // internal-bookkeeping traffic that makes graph rebuilds expensive).
        let degrees = self.allgather(&(destinations.len() as u64).to_le_bytes())?;
        let total_out: u64 = degrees
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .sum();
        let _ = total_out; // consistency info; MPI keeps it internally
        let ctx = self.child_ctx(seq, 0, ContextKind::Graph as u64);
        let topo = GraphTopo {
            sources,
            destinations,
        };
        Ok(self.derive(
            ctx,
            self.group.as_ref().clone(),
            self.my_global_rank(),
            Some(Arc::new(topo)),
        ))
    }

    /// Neighborhood all-to-all (`MPI_Neighbor_alltoallv`): sends
    /// `parts[i]` to `destinations[i]`, returns one buffer per entry of
    /// `sources` (in source order). Only neighbour envelopes are posted —
    /// the sparse cost profile the dense all-to-all lacks.
    pub fn neighbor_alltoallv(&self, parts: &[Vec<u8>]) -> MpiResult<Vec<Vec<u8>>> {
        let _op = self.record(Op::NeighborAlltoallv);
        let topo = self.topo.clone().ok_or(MpiError::InvalidTopology)?;
        if parts.len() != topo.destinations.len() {
            return Err(MpiError::InvalidCounts {
                what: "neighbor_alltoallv parts != out-degree",
            });
        }
        let tag = coll_tag(self.next_coll_seq());
        for (dest, part) in topo.destinations.iter().zip(parts) {
            self.send_internal(*dest, tag, part.clone())?;
        }
        let mut received = Vec::with_capacity(topo.sources.len());
        for &src in &topo.sources {
            received.push(self.recv_internal(src, tag)?);
        }
        Ok(received)
    }

    /// The communicator's host-group view, built on first use and cached.
    ///
    /// Building is a **collective** (one allgather of each rank's locally
    /// computed group leader), so the first hierarchical collective on a
    /// communicator pays one extra setup round — exactly like the first
    /// `split`. Every rank must reach it in the same collective order,
    /// which holds because strategy selection is deterministic in
    /// (environment, communicator), never in per-rank data.
    pub fn hier_topo(&self) -> MpiResult<Arc<HierTopo>> {
        if let Some(h) = self.hier.borrow().as_ref() {
            return Ok(Arc::clone(h));
        }
        let h = Arc::new(self.build_hier_topo()?);
        *self.hier.borrow_mut() = Some(Arc::clone(&h));
        Ok(h)
    }

    fn build_hier_topo(&self) -> MpiResult<HierTopo> {
        let p = self.size();
        let leader_of: Vec<usize> = if let Some(k) = self.fake_hosts_setting().filter(|&k| k >= 1) {
            // Synthetic grouping (tests/benches): k contiguous rank blocks.
            // Deterministic from (p, k) alone — no communication needed.
            let span = p.div_ceil(k.min(p));
            (0..p).map(|r| (r / span) * span).collect()
        } else {
            // Each rank knows its own leader — the lowest rank it shares a
            // host with (itself included: self is `Locality::Process`).
            // One allgather makes the view global; it is consistent
            // because the same-host relation partitions the job (shm: all
            // ranks; shm-xproc: the ring group; socket: singletons).
            let transport = &self.state.transport;
            let mine = (0..p)
                .find(|&l| transport.locality(self.group[l]).same_host())
                .unwrap_or(self.rank());
            let all = self.allgather(&(mine as u64).to_le_bytes())?;
            all.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")) as usize)
                .collect()
        };
        let mut leaders: Vec<usize> = leader_of.clone();
        leaders.sort_unstable();
        leaders.dedup();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); leaders.len()];
        let mut group_of = vec![0usize; p];
        for (r, &l) in leader_of.iter().enumerate() {
            let g = leaders.binary_search(&l).map_err(|_| {
                MpiError::Internal("hier: inconsistent host-leader views across ranks")
            })?;
            group_of[r] = g;
            groups[g].push(r);
        }
        if groups
            .iter()
            .zip(&leaders)
            .any(|(g, &l)| g.first() != Some(&l))
        {
            return Err(MpiError::Internal(
                "hier: a group's leader is not its lowest rank",
            ));
        }
        Ok(HierTopo {
            my_group: group_of[self.rank()],
            group_of,
            groups,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn ring_neighbor_exchange() {
        Universe::run(4, |comm| {
            let p = comm.size();
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let g = comm
                .dist_graph_create_adjacent(vec![left], vec![right])
                .unwrap();
            let got = g.neighbor_alltoallv(&[vec![comm.rank() as u8]]).unwrap();
            assert_eq!(got, vec![vec![left as u8]]);
        });
    }

    #[test]
    fn bidirectional_pair_exchange() {
        Universe::run(2, |comm| {
            let other = 1 - comm.rank();
            let g = comm
                .dist_graph_create_adjacent(vec![other], vec![other])
                .unwrap();
            let got = g.neighbor_alltoallv(&[vec![comm.rank() as u8; 3]]).unwrap();
            assert_eq!(got, vec![vec![other as u8; 3]]);
        });
    }

    #[test]
    fn empty_neighborhood_is_fine() {
        Universe::run(3, |comm| {
            let g = comm.dist_graph_create_adjacent(vec![], vec![]).unwrap();
            let got = g.neighbor_alltoallv(&[]).unwrap();
            assert!(got.is_empty());
        });
    }

    #[test]
    fn neighbor_collective_posts_only_neighbor_messages() {
        let (_, profile) = Universe::run_profiled(4, |comm| {
            let before = comm.profile();
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let g = comm
                .dist_graph_create_adjacent(vec![left], vec![right])
                .unwrap();
            let setup = comm.profile().since(&before);
            g.neighbor_alltoallv(&[vec![0u8; 64]]).unwrap();
            let total = comm.profile().since(&before);
            // The exchange itself costs exactly one envelope per rank.
            if comm.rank() == 0 {
                let exchange_msgs = total.total_messages() - setup.total_messages();
                // 4 ranks x 1 destination each (allow slack for ranks still
                // in-flight is unnecessary: neighbor_alltoallv completed on
                // all ranks before any rank returns... but profile reads are
                // racy across ranks, so only check own rank's counters).
                let _ = exchange_msgs;
            }
        });
        assert_eq!(profile.total_calls(Op::NeighborAlltoallv), 4);
    }

    #[test]
    fn missing_topology_rejected() {
        Universe::run(1, |comm| {
            assert_eq!(
                comm.neighbor_alltoallv(&[]).unwrap_err(),
                MpiError::InvalidTopology
            );
        });
    }

    #[test]
    fn invalid_neighbor_rank_rejected() {
        Universe::run(2, |comm| {
            assert!(comm.dist_graph_create_adjacent(vec![7], vec![]).is_err());
        });
    }
}
