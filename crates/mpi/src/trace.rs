//! Low-overhead transport tracing and wait-time attribution.
//!
//! The paper verifies its zero-overhead claim through the MPI profiling
//! interface (§III-H); this module extends that story to *timing*: where
//! [`crate::profile`] counts calls, messages and bytes, the tracer records
//! **when** things happened — per-envelope lifecycle events (post →
//! deliver → take), blocking-wait spans in the mailbox/hub, chaos fault
//! injections, socket control-plane frames — and splits every substrate
//! operation's latency into *local compute* vs *blocked waiting*, so a
//! straggler rank is identifiable per op.
//!
//! # Zero overhead when off
//!
//! All instrumentation hangs off a per-universe [`TraceCtx`]. When neither
//! tracing nor measuring is enabled (the default), every hook compiles to
//! a relaxed atomic load and a branch; no clock is read, no allocation
//! happens, no lock is taken. Enabled, events go into a sharded bounded
//! ring (oldest events overwritten, never blocking the hot path), and op
//! timings into per-rank atomic cells.
//!
//! # Activation
//!
//! * `KAMPING_TRACE=<path|dir|1>` — full event tracing + measuring; the
//!   trace is written at teardown (see [`TraceConfig`]).
//! * `KAMPING_MEASURE=1` — wait-time measuring only (no event ring).
//! * [`crate::Universe::run_traced`] — programmatic, env-independent.
//!
//! # Export
//!
//! Events export as Chrome trace-event JSON (the `traceEvents` array
//! format), which loads directly in Perfetto / `chrome://tracing`:
//! lifecycle events are instants on a per-peer track (`pid` = rank,
//! `tid` = peer), waits and op spans are complete (`"ph":"X"`) slices.
//! Multi-process runs write one JSONL file per rank (absolute-µs
//! timestamps) that [`merge_trace_dir`] — used by `kampirun --trace` —
//! sorts into a single Perfetto-loadable file. Timestamps within one
//! process come from a single monotonic clock, so per-channel event order
//! is exact; across processes they are anchored to the wall clock at
//! process start, so cross-process skew is bounded by wall-clock agreement
//! (sub-millisecond on one host).

use std::cell::Cell;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::profile::{Op, ALL_OPS, N_OPS};
use crate::tag::Tag;

/// Ring shards; events from different threads usually hit different
/// shards, so recording never contends in the common case.
const SHARDS: usize = 8;

/// Events retained per shard before the oldest are overwritten. Bounded so
/// a long traced run cannot exhaust memory; `dropped_events` reports how
/// many were lost.
const SHARD_CAP: usize = 1 << 14;

thread_local! {
    /// Global rank hosted by this thread (rank threads on shm, the main
    /// thread on socket); `u32::MAX` for helper threads.
    static THREAD_RANK: Cell<u32> = const { Cell::new(u32::MAX) };
    /// Nanoseconds this thread has spent blocked (mailbox/hub waits),
    /// accumulated monotonically. Op scopes snapshot it on entry and
    /// attribute the delta to the op on exit.
    static THREAD_WAIT_NS: Cell<u64> = const { Cell::new(0) };
    /// This thread's ring shard, assigned round-robin on first use.
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Marks the current thread as hosting global rank `rank` (used to label
/// wait events that occur outside any one mailbox, e.g. hub waits).
pub fn set_thread_rank(rank: usize) {
    THREAD_RANK.with(|r| r.set(rank as u32));
}

/// The global rank hosted by the current thread, or `u32::MAX`.
pub fn thread_rank() -> u32 {
    THREAD_RANK.with(Cell::get)
}

/// Total nanoseconds the current thread has spent blocked so far.
pub fn thread_wait_ns() -> u64 {
    THREAD_WAIT_NS.with(Cell::get)
}

fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    THREAD_SHARD.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
        }
        v
    })
}

/// One recorded event. `ts_ns` is nanoseconds since the owning
/// [`TraceCtx`]'s monotonic epoch; for span-like kinds it is the span
/// *start*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the trace epoch (span start for span kinds).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Event taxonomy. Ranks are global; `tag`/`ctx` identify the channel the
/// envelope travelled on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An envelope entered the transport at the sender.
    Post {
        /// Sending global rank.
        src: u32,
        /// Destination global rank.
        dst: u32,
        /// Message tag.
        tag: Tag,
        /// Communicator context id.
        ctx: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// An envelope landed in the destination rank's mailbox.
    Deliver {
        /// Sending global rank.
        src: u32,
        /// Destination (mailbox owner) global rank.
        dst: u32,
        /// Message tag.
        tag: Tag,
        /// Communicator context id.
        ctx: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// A receive/probe matched and consumed an envelope.
    Take {
        /// Sending global rank.
        src: u32,
        /// Destination (mailbox owner) global rank.
        dst: u32,
        /// Message tag.
        tag: Tag,
        /// Communicator context id.
        ctx: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// A thread was blocked (mailbox or hub wait). `ts_ns` is the moment
    /// the wait began.
    Wait {
        /// Global rank of the blocked thread (`u32::MAX` if unknown).
        rank: u32,
        /// How long the thread was parked.
        dur_ns: u64,
    },
    /// One substrate operation completed. `ts_ns` is the op start.
    OpSpan {
        /// Global rank that ran the op.
        rank: u32,
        /// Which operation.
        op: Op,
        /// Wall-clock duration of the op.
        dur_ns: u64,
        /// Portion of `dur_ns` spent blocked waiting.
        wait_ns: u64,
    },
    /// The chaos layer injected a fault on a channel.
    Chaos {
        /// Sending global rank of the affected envelope.
        src: u32,
        /// Destination global rank.
        dst: u32,
        /// Fault kind (`"drop"`, `"dup"`, `"delay"`, `"reorder"`,
        /// `"sever"`, `"kill"`).
        fault: &'static str,
    },
    /// A socket control-plane frame left this process (excluded from the
    /// data-plane message counters; visible here so keepalive traffic can
    /// be audited).
    Control {
        /// Global rank that sent the frame.
        rank: u32,
        /// Peer the frame went to.
        peer: u32,
        /// Frame kind (`"ping"`, `"hello"`, `"control"`, `"ack"`).
        frame: &'static str,
    },
    /// One wakeup of the socket progress-engine thread: how much readiness
    /// it saw and how long servicing it took. `ts_ns` is the wakeup.
    Progress {
        /// Global rank whose engine woke.
        rank: u32,
        /// Ready epoll events handled in this wakeup.
        events: u32,
        /// Data-plane frames moved (sent + received) in this wakeup.
        frames: u32,
        /// Busy time from wakeup to going back to sleep.
        dur_ns: u64,
    },
    /// A shm-xproc ring blocked: a producer on a full ring, or the
    /// consumer parked on its inbox doorbell. `ts_ns` is when the wait
    /// began.
    RingWait {
        /// Global rank that waited.
        rank: u32,
        /// Ring peer (`u32::MAX` for the consumer, which parks on the
        /// whole inbox rather than one peer's ring).
        peer: u32,
        /// `"send"` (ring full) or `"recv"` (inbox idle).
        role: &'static str,
        /// How long the thread was parked.
        dur_ns: u64,
    },
}

/// Env-derived activation switches (see module docs).
#[derive(Debug, Clone, Default)]
pub struct TraceConfig {
    /// Record lifecycle events into the ring.
    pub tracing: bool,
    /// Measure per-op latency and wait attribution.
    pub measuring: bool,
    /// Where to write the trace at teardown (`KAMPING_TRACE` value when it
    /// names a path; `None` for flag-only activation).
    pub out: Option<PathBuf>,
}

impl TraceConfig {
    /// Reads `KAMPING_TRACE` / `KAMPING_MEASURE`. A `KAMPING_TRACE` value
    /// other than `0`/empty enables tracing *and* measuring; values other
    /// than `1`/`true` are treated as the output path (a directory gets
    /// one JSONL file per rank, anything else a Chrome JSON file).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("KAMPING_TRACE") {
            if !v.is_empty() && v != "0" {
                cfg.tracing = true;
                cfg.measuring = true;
                if v != "1" && v != "true" {
                    cfg.out = Some(PathBuf::from(v));
                }
            }
        }
        if let Ok(v) = std::env::var("KAMPING_MEASURE") {
            if !v.is_empty() && v != "0" {
                cfg.measuring = true;
            }
        }
        cfg
    }
}

/// Per-op timing cells of one rank (written by that rank's thread).
#[derive(Debug)]
pub struct RankOpTimings {
    calls: [AtomicU64; N_OPS],
    total_ns: [AtomicU64; N_OPS],
    wait_ns: [AtomicU64; N_OPS],
}

impl Default for RankOpTimings {
    fn default() -> Self {
        Self {
            calls: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            wait_ns: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl RankOpTimings {
    fn record(&self, op: Op, dur_ns: u64, wait_ns: u64) {
        let i = op as usize;
        self.calls[i].fetch_add(1, Ordering::Relaxed);
        self.total_ns[i].fetch_add(dur_ns, Ordering::Relaxed);
        self.wait_ns[i].fetch_add(wait_ns, Ordering::Relaxed);
    }

    /// Frozen `(op, calls, total_ns, wait_ns)` rows, all ops in
    /// discriminant order (zero rows included, so every rank agrees on the
    /// layout).
    pub fn snapshot(&self) -> Vec<(Op, u64, u64, u64)> {
        ALL_OPS
            .iter()
            .map(|&op| {
                let i = op as usize;
                (
                    op,
                    self.calls[i].load(Ordering::Relaxed),
                    self.total_ns[i].load(Ordering::Relaxed),
                    self.wait_ns[i].load(Ordering::Relaxed),
                )
            })
            .collect()
    }
}

/// Per-universe trace state: enable flags, the monotonic epoch, the event
/// ring and the per-rank op timing cells. Cheap when disabled; every hook
/// checks one relaxed atomic first.
#[derive(Debug)]
pub struct TraceCtx {
    tracing: AtomicBool,
    measuring: AtomicBool,
    epoch: Instant,
    /// Wall-clock nanoseconds (unix) at `epoch`; anchors cross-process
    /// trace merging.
    epoch_unix_ns: u64,
    shards: Vec<Mutex<VecDeque<TraceEvent>>>,
    dropped: AtomicU64,
    /// Op timing cells, one per global rank.
    timings: Vec<RankOpTimings>,
}

impl TraceCtx {
    /// A context for `size` ranks with the given activation switches.
    pub fn new(size: usize, cfg: &TraceConfig) -> Self {
        let epoch = Instant::now();
        let epoch_unix_ns = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self {
            tracing: AtomicBool::new(cfg.tracing),
            measuring: AtomicBool::new(cfg.measuring || cfg.tracing),
            epoch,
            epoch_unix_ns,
            shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
            dropped: AtomicU64::new(0),
            timings: (0..size).map(|_| RankOpTimings::default()).collect(),
        }
    }

    /// A fully-disabled context (standalone mailboxes, tests, benches).
    pub fn disabled(size: usize) -> Arc<Self> {
        Arc::new(Self::new(size, &TraceConfig::default()))
    }

    /// True when lifecycle events are being recorded.
    ///
    /// Under the `no-trace` feature this is a compile-time `false`, so the
    /// optimizer removes every instrumentation site — the seed-equivalent
    /// build the overhead guard compares the runtime-disabled path against.
    #[inline]
    pub fn tracing(&self) -> bool {
        if cfg!(feature = "no-trace") {
            return false;
        }
        self.tracing.load(Ordering::Relaxed)
    }

    /// True when op latency / wait attribution is being measured.
    #[inline]
    pub fn measuring(&self) -> bool {
        if cfg!(feature = "no-trace") {
            return false;
        }
        self.measuring.load(Ordering::Relaxed)
    }

    /// Flips event tracing (measuring is implied on).
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
        if on {
            self.measuring.store(true, Ordering::Relaxed);
        }
    }

    /// Flips latency measuring.
    pub fn set_measuring(&self, on: bool) {
        self.measuring.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since this context's monotonic epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Wall-clock (unix) nanoseconds at the epoch.
    pub fn epoch_unix_ns(&self) -> u64 {
        self.epoch_unix_ns
    }

    /// Records `kind` at the current time. Callers on hot paths must gate
    /// on [`TraceCtx::tracing`] first.
    pub fn record(&self, kind: EventKind) {
        self.record_at(self.now_ns(), kind);
    }

    /// Records `kind` with an explicit timestamp (span starts).
    pub fn record_at(&self, ts_ns: u64, kind: EventKind) {
        let shard = &self.shards[thread_shard()];
        let mut q = shard.lock().expect("trace shard poisoned");
        if q.len() >= SHARD_CAP {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(TraceEvent { ts_ns, kind });
    }

    /// Events lost to ring overflow so far.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drains all shards and returns the events sorted by timestamp.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().expect("trace shard poisoned").drain(..));
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// The op timing cells of global rank `rank`.
    pub fn timings(&self, rank: usize) -> &RankOpTimings {
        &self.timings[rank]
    }

    /// Starts an op scope for `rank`. Inert (no clock read) unless
    /// measuring is on.
    pub(crate) fn op_scope(&self, op: Op, rank: usize) -> OpScope<'_> {
        if !self.measuring() {
            return OpScope { inner: None };
        }
        OpScope {
            inner: Some(OpScopeInner {
                ctx: self,
                op,
                rank,
                start: Instant::now(),
                start_ns: self.now_ns(),
                wait_at_start: thread_wait_ns(),
            }),
        }
    }

    /// Starts a wait span attributed to `rank`. Inert unless measuring.
    pub(crate) fn wait_span(&self, rank: u32) -> WaitSpan<'_> {
        if !self.measuring() {
            return WaitSpan { inner: None };
        }
        WaitSpan {
            inner: Some(WaitSpanInner {
                ctx: self,
                rank,
                start: Instant::now(),
                start_ns: self.now_ns(),
            }),
        }
    }
}

struct OpScopeInner<'a> {
    ctx: &'a TraceCtx,
    op: Op,
    rank: usize,
    start: Instant,
    start_ns: u64,
    wait_at_start: u64,
}

/// RAII guard timing one substrate operation; on drop it attributes the
/// elapsed time (split into wait vs compute) to the op and, when tracing,
/// emits an [`EventKind::OpSpan`].
pub struct OpScope<'a> {
    inner: Option<OpScopeInner<'a>>,
}

impl Drop for OpScope<'_> {
    fn drop(&mut self) {
        let Some(i) = self.inner.take() else { return };
        let dur_ns = i.start.elapsed().as_nanos() as u64;
        let wait_ns = thread_wait_ns().saturating_sub(i.wait_at_start);
        i.ctx.timings[i.rank].record(i.op, dur_ns, wait_ns.min(dur_ns));
        if i.ctx.tracing() {
            i.ctx.record_at(
                i.start_ns,
                EventKind::OpSpan {
                    rank: i.rank as u32,
                    op: i.op,
                    dur_ns,
                    wait_ns: wait_ns.min(dur_ns),
                },
            );
        }
    }
}

struct WaitSpanInner<'a> {
    ctx: &'a TraceCtx,
    rank: u32,
    start: Instant,
    start_ns: u64,
}

/// RAII guard around a blocking wait (mailbox/hub slow path); on drop it
/// adds the parked time to the thread's wait accumulator and, when
/// tracing, emits an [`EventKind::Wait`].
pub struct WaitSpan<'a> {
    inner: Option<WaitSpanInner<'a>>,
}

impl Drop for WaitSpan<'_> {
    fn drop(&mut self) {
        let Some(i) = self.inner.take() else { return };
        let dur_ns = i.start.elapsed().as_nanos() as u64;
        THREAD_WAIT_NS.with(|w| w.set(w.get().saturating_add(dur_ns)));
        if i.ctx.tracing() {
            i.ctx.record_at(
                i.start_ns,
                EventKind::Wait {
                    rank: i.rank,
                    dur_ns,
                },
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// Microseconds with nanosecond resolution, as Chrome's `ts` field wants.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// One event as a Chrome trace-event JSON object. `base_unix_ns` shifts
/// timestamps to absolute wall-clock µs (for cross-process merging); pass
/// 0 for run-relative timestamps.
fn chrome_event(ev: &TraceEvent, base_unix_ns: u64) -> String {
    let ts = us(base_unix_ns.saturating_add(ev.ts_ns));
    match &ev.kind {
        EventKind::Post {
            src,
            dst,
            tag,
            ctx,
            bytes,
        } => format!(
            r#"{{"name":"post {src}->{dst}","cat":"envelope","ph":"i","s":"t","ts":{ts},"pid":{src},"tid":{dst},"args":{{"kind":"post","src":{src},"dst":{dst},"tag":{tag},"ctx":{ctx},"bytes":{bytes}}}}}"#
        ),
        EventKind::Deliver {
            src,
            dst,
            tag,
            ctx,
            bytes,
        } => format!(
            r#"{{"name":"deliver {src}->{dst}","cat":"envelope","ph":"i","s":"t","ts":{ts},"pid":{dst},"tid":{src},"args":{{"kind":"deliver","src":{src},"dst":{dst},"tag":{tag},"ctx":{ctx},"bytes":{bytes}}}}}"#
        ),
        EventKind::Take {
            src,
            dst,
            tag,
            ctx,
            bytes,
        } => format!(
            r#"{{"name":"take {src}->{dst}","cat":"envelope","ph":"i","s":"t","ts":{ts},"pid":{dst},"tid":{src},"args":{{"kind":"take","src":{src},"dst":{dst},"tag":{tag},"ctx":{ctx},"bytes":{bytes}}}}}"#
        ),
        EventKind::Wait { rank, dur_ns } => format!(
            r#"{{"name":"blocked","cat":"wait","ph":"X","ts":{ts},"dur":{},"pid":{rank},"tid":{rank},"args":{{"kind":"wait"}}}}"#,
            us(*dur_ns)
        ),
        EventKind::OpSpan {
            rank,
            op,
            dur_ns,
            wait_ns,
        } => format!(
            r#"{{"name":"{}","cat":"op","ph":"X","ts":{ts},"dur":{},"pid":{rank},"tid":{rank},"args":{{"kind":"op","wait_ns":{wait_ns},"compute_ns":{}}}}}"#,
            op.name(),
            us(*dur_ns),
            dur_ns.saturating_sub(*wait_ns)
        ),
        EventKind::Chaos { src, dst, fault } => format!(
            r#"{{"name":"chaos {fault}","cat":"chaos","ph":"i","s":"g","ts":{ts},"pid":{src},"tid":{dst},"args":{{"kind":"chaos","fault":"{fault}","src":{src},"dst":{dst}}}}}"#
        ),
        EventKind::Control { rank, peer, frame } => format!(
            r#"{{"name":"ctl {frame}","cat":"control","ph":"i","s":"t","ts":{ts},"pid":{rank},"tid":{peer},"args":{{"kind":"control","frame":"{frame}"}}}}"#
        ),
        EventKind::Progress {
            rank,
            events,
            frames,
            dur_ns,
        } => format!(
            r#"{{"name":"progress","cat":"progress","ph":"X","ts":{ts},"dur":{},"pid":{rank},"tid":{rank},"args":{{"kind":"progress","events":{events},"frames":{frames}}}}}"#,
            us(*dur_ns)
        ),
        EventKind::RingWait {
            rank,
            peer,
            role,
            dur_ns,
        } => format!(
            r#"{{"name":"ring {role}","cat":"wait","ph":"X","ts":{ts},"dur":{},"pid":{rank},"tid":{rank},"args":{{"kind":"ring_wait","role":"{role}","peer":{peer}}}}}"#,
            us(*dur_ns)
        ),
    }
}

/// Renders `events` as one Chrome trace JSON document (run-relative
/// timestamps — the single-process export).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(&chrome_event(ev, 0));
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Writes `events` as JSONL (one Chrome event object per line, timestamps
/// shifted to absolute wall-clock µs) — the per-rank format merged by
/// [`merge_trace_dir`].
pub fn write_trace_jsonl(path: &Path, events: &[TraceEvent], epoch_unix_ns: u64) -> io::Result<()> {
    let mut out = String::new();
    for ev in events {
        out.push_str(&chrome_event(ev, epoch_unix_ns));
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Extracts the numeric `"ts"` value from one serialized event line.
fn line_ts(line: &str) -> Option<f64> {
    let at = line.find("\"ts\":")? + 5;
    let rest = &line[at..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Merges every `*.jsonl` per-rank trace in `dir` into one Chrome trace
/// JSON file at `out`, sorted by timestamp. Returns the merged event
/// count. Used by `kampirun --trace` and the multi-process tests.
pub fn merge_trace_dir(dir: &Path, out: &Path) -> io::Result<usize> {
    let mut lines: Vec<(f64, String)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_none_or(|e| e != "jsonl") {
            continue;
        }
        for line in std::fs::read_to_string(&path)?.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let ts = line_ts(line).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("trace line without ts in {}", path.display()),
                )
            })?;
            lines.push((ts, line.to_string()));
        }
    }
    lines.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut doc = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, (_, line)) in lines.iter().enumerate() {
        doc.push_str(line);
        if i + 1 < lines.len() {
            doc.push(',');
        }
        doc.push('\n');
    }
    doc.push_str("]}\n");
    std::fs::write(out, doc)?;
    Ok(lines.len())
}

/// Writes this process's trace to the `KAMPING_TRACE` destination:
/// a directory gets `trace-rank<R>.jsonl` (absolute timestamps, merge
/// input), any other path gets a self-contained Chrome JSON file (with
/// `-rank<R>` inserted before the extension on multi-process backends so
/// ranks don't clobber each other).
pub(crate) fn write_process_trace(
    ctx: &TraceCtx,
    out: &Path,
    rank: Option<usize>,
) -> io::Result<()> {
    let events = ctx.take_events();
    if out.is_dir() {
        let name = match rank {
            Some(r) => format!("trace-rank{r}.jsonl"),
            None => "trace.jsonl".to_string(),
        };
        return write_trace_jsonl(&out.join(name), &events, ctx.epoch_unix_ns());
    }
    let path = match rank {
        Some(r) => {
            let stem = out.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
            let ext = out.extension().and_then(|s| s.to_str()).unwrap_or("json");
            out.with_file_name(format!("{stem}-rank{r}.{ext}"))
        }
        None => out.to_path_buf(),
    };
    std::fs::write(path, chrome_trace_json(&events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: u64) -> TraceEvent {
        TraceEvent {
            ts_ns,
            kind: EventKind::Post {
                src: 0,
                dst: 1,
                tag: 7,
                ctx: 0,
                bytes: 8,
            },
        }
    }

    #[test]
    fn disabled_ctx_records_nothing() {
        let ctx = TraceCtx::disabled(2);
        assert!(!ctx.tracing());
        assert!(!ctx.measuring());
        // Guards are inert: no wait accumulates, no event appears.
        let before = thread_wait_ns();
        drop(ctx.wait_span(0));
        drop(ctx.op_scope(Op::Send, 0));
        assert_eq!(thread_wait_ns(), before);
        assert!(ctx.take_events().is_empty());
    }

    #[test]
    fn enabled_ctx_round_trips_events() {
        let ctx = TraceCtx::new(
            2,
            &TraceConfig {
                tracing: true,
                measuring: true,
                out: None,
            },
        );
        ctx.record(EventKind::Post {
            src: 0,
            dst: 1,
            tag: 3,
            ctx: 0,
            bytes: 5,
        });
        drop(ctx.op_scope(Op::Recv, 1));
        let events = ctx.take_events();
        assert_eq!(events.len(), 2);
        // Timestamps come back sorted.
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert!(ctx.take_events().is_empty(), "take drains");
    }

    #[test]
    fn wait_span_accumulates_thread_wait() {
        let ctx = TraceCtx::new(
            1,
            &TraceConfig {
                tracing: false,
                measuring: true,
                out: None,
            },
        );
        let before = thread_wait_ns();
        drop(ctx.wait_span(0));
        assert!(thread_wait_ns() >= before);
    }

    #[test]
    fn op_timings_record_calls_and_split() {
        let t = RankOpTimings::default();
        t.record(Op::Bcast, 1000, 400);
        t.record(Op::Bcast, 500, 100);
        let snap = t.snapshot();
        let row = snap.iter().find(|r| r.0 == Op::Bcast).unwrap();
        assert_eq!((row.1, row.2, row.3), (2, 1500, 500));
    }

    #[test]
    fn ring_drops_oldest_beyond_cap() {
        let ctx = TraceCtx::new(
            1,
            &TraceConfig {
                tracing: true,
                measuring: true,
                out: None,
            },
        );
        // All from one thread = one shard; overflow it.
        for i in 0..(SHARD_CAP + 10) as u64 {
            ctx.record_at(i, ev(i).kind);
        }
        assert_eq!(ctx.dropped_events(), 10);
        let events = ctx.take_events();
        assert_eq!(events.len(), SHARD_CAP);
        assert_eq!(events.first().unwrap().ts_ns, 10, "oldest were dropped");
    }

    #[test]
    fn chrome_json_shape_and_ts() {
        let events = vec![ev(1500), ev(2500)];
        let doc = chrome_trace_json(&events);
        assert!(doc.starts_with("{\"displayTimeUnit\""));
        assert!(doc.contains("\"ts\":1.500"));
        assert!(doc.contains("\"ts\":2.500"));
        assert!(doc.trim_end().ends_with("]}"));
        assert_eq!(line_ts("{\"ts\":12.034,\"x\":1}"), Some(12.034));
    }

    #[test]
    fn merge_sorts_across_rank_files() {
        let dir = std::env::temp_dir().join(format!("kamping-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write_trace_jsonl(&dir.join("trace-rank0.jsonl"), &[ev(3000), ev(5000)], 0).unwrap();
        write_trace_jsonl(&dir.join("trace-rank1.jsonl"), &[ev(4000)], 0).unwrap();
        let out = dir.join("merged.json");
        let n = merge_trace_dir(&dir, &out).unwrap();
        assert_eq!(n, 3);
        let doc = std::fs::read_to_string(&out).unwrap();
        let pos3 = doc.find("\"ts\":3.000").unwrap();
        let pos4 = doc.find("\"ts\":4.000").unwrap();
        let pos5 = doc.find("\"ts\":5.000").unwrap();
        assert!(pos3 < pos4 && pos4 < pos5, "merged events sorted by ts");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
