//! Low-overhead transport tracing and wait-time attribution.
//!
//! The paper verifies its zero-overhead claim through the MPI profiling
//! interface (§III-H); this module extends that story to *timing*: where
//! [`crate::profile`] counts calls, messages and bytes, the tracer records
//! **when** things happened — per-envelope lifecycle events (post →
//! deliver → take), blocking-wait spans in the mailbox/hub, chaos fault
//! injections, socket control-plane frames — and splits every substrate
//! operation's latency into *local compute* vs *blocked waiting*, so a
//! straggler rank is identifiable per op.
//!
//! # Zero overhead when off
//!
//! All instrumentation hangs off a per-universe [`TraceCtx`]. When neither
//! tracing nor measuring is enabled (the default), every hook compiles to
//! a relaxed atomic load and a branch; no clock is read, no allocation
//! happens, no lock is taken. Enabled, events go into a sharded bounded
//! ring (oldest events overwritten, never blocking the hot path), and op
//! timings into per-rank atomic cells.
//!
//! # Activation
//!
//! * `KAMPING_TRACE=<path|dir|1>` — full event tracing + measuring; the
//!   trace is written at teardown (see [`TraceConfig`]).
//! * `KAMPING_MEASURE=1` — wait-time measuring only (no event ring).
//! * [`crate::Universe::run_traced`] — programmatic, env-independent.
//!
//! # Export
//!
//! Events export as Chrome trace-event JSON (the `traceEvents` array
//! format), which loads directly in Perfetto / `chrome://tracing`:
//! lifecycle events are instants on a per-peer track (`pid` = rank,
//! `tid` = peer), waits and op spans are complete (`"ph":"X"`) slices.
//! Multi-process runs write one JSONL file per rank (absolute-µs
//! timestamps) that [`merge_trace_dir`] — used by `kampirun --trace` —
//! sorts into a single Perfetto-loadable file. Timestamps within one
//! process come from a single monotonic clock, so per-channel event order
//! is exact; across processes they are anchored to the wall clock at
//! process start, so cross-process skew is bounded by wall-clock agreement
//! (sub-millisecond on one host).

use std::cell::Cell;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::error::{MpiError, MpiResult};
use crate::metrics::{Counter, Hist, MetricsCtx};
use crate::profile::{Op, ALL_OPS, N_OPS};
use crate::tag::Tag;

/// Ring shards; events from different threads usually hit different
/// shards, so recording never contends in the common case.
const SHARDS: usize = 8;

/// Events retained per shard before the oldest are overwritten. Bounded so
/// a long traced run cannot exhaust memory; `dropped_events` reports how
/// many were lost.
const SHARD_CAP: usize = 1 << 14;

thread_local! {
    /// Global rank hosted by this thread (rank threads on shm, the main
    /// thread on socket); `u32::MAX` for helper threads.
    static THREAD_RANK: Cell<u32> = const { Cell::new(u32::MAX) };
    /// Nanoseconds this thread has spent blocked (mailbox/hub waits),
    /// accumulated monotonically. Op scopes snapshot it on entry and
    /// attribute the delta to the op on exit.
    static THREAD_WAIT_NS: Cell<u64> = const { Cell::new(0) };
    /// This thread's ring shard, assigned round-robin on first use.
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Marks the current thread as hosting global rank `rank` (used to label
/// wait events that occur outside any one mailbox, e.g. hub waits).
pub fn set_thread_rank(rank: usize) {
    THREAD_RANK.with(|r| r.set(rank as u32));
}

/// The global rank hosted by the current thread, or `u32::MAX`.
pub fn thread_rank() -> u32 {
    THREAD_RANK.with(Cell::get)
}

/// Total nanoseconds the current thread has spent blocked so far.
pub fn thread_wait_ns() -> u64 {
    THREAD_WAIT_NS.with(Cell::get)
}

fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    THREAD_SHARD.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
        }
        v
    })
}

/// One recorded event. `ts_ns` is nanoseconds since the owning
/// [`TraceCtx`]'s monotonic epoch; for span-like kinds it is the span
/// *start*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the trace epoch (span start for span kinds).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Event taxonomy. Ranks are global; `tag`/`ctx` identify the channel the
/// envelope travelled on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An envelope entered the transport at the sender.
    Post {
        /// Sending global rank.
        src: u32,
        /// Destination global rank.
        dst: u32,
        /// Message tag.
        tag: Tag,
        /// Communicator context id.
        ctx: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// An envelope landed in the destination rank's mailbox.
    Deliver {
        /// Sending global rank.
        src: u32,
        /// Destination (mailbox owner) global rank.
        dst: u32,
        /// Message tag.
        tag: Tag,
        /// Communicator context id.
        ctx: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// A receive/probe matched and consumed an envelope.
    Take {
        /// Sending global rank.
        src: u32,
        /// Destination (mailbox owner) global rank.
        dst: u32,
        /// Message tag.
        tag: Tag,
        /// Communicator context id.
        ctx: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// A thread was blocked (mailbox or hub wait). `ts_ns` is the moment
    /// the wait began.
    Wait {
        /// Global rank of the blocked thread (`u32::MAX` if unknown).
        rank: u32,
        /// How long the thread was parked.
        dur_ns: u64,
    },
    /// One substrate operation completed. `ts_ns` is the op start.
    OpSpan {
        /// Global rank that ran the op.
        rank: u32,
        /// Which operation.
        op: Op,
        /// Wall-clock duration of the op.
        dur_ns: u64,
        /// Portion of `dur_ns` spent blocked waiting.
        wait_ns: u64,
    },
    /// The chaos layer injected a fault on a channel.
    Chaos {
        /// Sending global rank of the affected envelope.
        src: u32,
        /// Destination global rank.
        dst: u32,
        /// Fault kind (`"drop"`, `"dup"`, `"delay"`, `"reorder"`,
        /// `"sever"`, `"kill"`).
        fault: &'static str,
    },
    /// A socket control-plane frame left this process (excluded from the
    /// data-plane message counters; visible here so keepalive traffic can
    /// be audited).
    Control {
        /// Global rank that sent the frame.
        rank: u32,
        /// Peer the frame went to.
        peer: u32,
        /// Frame kind (`"ping"`, `"hello"`, `"control"`, `"ack"`).
        frame: &'static str,
    },
    /// One wakeup of the socket progress-engine thread: how much readiness
    /// it saw and how long servicing it took. `ts_ns` is the wakeup.
    Progress {
        /// Global rank whose engine woke.
        rank: u32,
        /// Ready epoll events handled in this wakeup.
        events: u32,
        /// Data-plane frames moved (sent + received) in this wakeup.
        frames: u32,
        /// Busy time from wakeup to going back to sleep.
        dur_ns: u64,
    },
    /// A shm-xproc ring blocked: a producer on a full ring, or the
    /// consumer parked on its inbox doorbell. `ts_ns` is when the wait
    /// began.
    RingWait {
        /// Global rank that waited.
        rank: u32,
        /// Ring peer (`u32::MAX` for the consumer, which parks on the
        /// whole inbox rather than one peer's ring).
        peer: u32,
        /// `"send"` (ring full) or `"recv"` (inbox idle).
        role: &'static str,
        /// How long the thread was parked.
        dur_ns: u64,
    },
}

/// Env-derived activation switches (see module docs).
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Record lifecycle events into the ring.
    pub tracing: bool,
    /// Measure per-op latency and wait attribution.
    pub measuring: bool,
    /// Where to write the trace at teardown (`KAMPING_TRACE` value when it
    /// names a path; `None` for flag-only activation).
    pub out: Option<PathBuf>,
    /// Collect live metrics (counters/gauges/histograms).
    pub metrics: bool,
    /// Where rank 0 appends the merged JSONL interval records
    /// (`KAMPING_METRICS` value when it names a path).
    pub metrics_out: Option<PathBuf>,
    /// Snapshot poll interval (`KAMPING_METRICS_INTERVAL_MS`, default 1 s).
    pub metrics_interval_ms: u64,
    /// Straggler threshold multiplier over the interval's median
    /// blocked-wait ratio (`KAMPING_STRAGGLER_FACTOR`, default 2.0).
    pub straggler_factor: f64,
    /// Flight-recorder output directory (`KAMPING_CRASH_DIR`). Setting it
    /// forces tracing, measuring, and metrics on: crash evidence needs the
    /// rings populated.
    pub crash_dir: Option<PathBuf>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            tracing: false,
            measuring: false,
            out: None,
            metrics: false,
            metrics_out: None,
            metrics_interval_ms: 1000,
            straggler_factor: 2.0,
            crash_dir: None,
        }
    }
}

/// `""`/`0`/`false` → off, `1`/`true` → on, anything else is not a switch
/// (either a path or a config error, depending on the variable).
fn parse_switch(v: &str) -> Option<bool> {
    match v {
        "" | "0" | "false" => Some(false),
        "1" | "true" => Some(true),
        _ => None,
    }
}

impl TraceConfig {
    /// Reads the `KAMPING_TRACE` / `KAMPING_MEASURE` / `KAMPING_METRICS` /
    /// `KAMPING_CRASH_DIR` family from the environment. Malformed values
    /// surface as [`MpiError::Config`] (naming the variable), matching the
    /// rest of the env parsing — they are never silently treated as off.
    pub fn from_env() -> MpiResult<Self> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// [`TraceConfig::from_env`] over an arbitrary lookup (testable without
    /// process-global env mutation).
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> MpiResult<Self> {
        let mut cfg = Self::default();
        if let Some(v) = get("KAMPING_TRACE") {
            match parse_switch(&v) {
                Some(on) => {
                    cfg.tracing = on;
                    cfg.measuring = on;
                }
                None if v.trim().is_empty() => {
                    return Err(MpiError::Config(format!(
                        "KAMPING_TRACE must be 0/false, 1/true, or an output path (got {v:?})"
                    )));
                }
                None => {
                    cfg.tracing = true;
                    cfg.measuring = true;
                    cfg.out = Some(PathBuf::from(v));
                }
            }
        }
        if let Some(v) = get("KAMPING_MEASURE") {
            match parse_switch(&v) {
                Some(on) => cfg.measuring |= on,
                None => {
                    return Err(MpiError::Config(format!(
                        "KAMPING_MEASURE must be 0, 1, true, or false (got {v:?})"
                    )));
                }
            }
        }
        if let Some(v) = get("KAMPING_METRICS") {
            match parse_switch(&v) {
                Some(on) => cfg.metrics = on,
                None if v.trim().is_empty() => {
                    return Err(MpiError::Config(format!(
                        "KAMPING_METRICS must be 0/false, 1/true, or an output path (got {v:?})"
                    )));
                }
                None => {
                    cfg.metrics = true;
                    cfg.metrics_out = Some(PathBuf::from(v));
                }
            }
        }
        if let Some(v) = get("KAMPING_METRICS_INTERVAL_MS") {
            cfg.metrics_interval_ms = v
                .trim()
                .parse()
                .ok()
                .filter(|&ms: &u64| ms >= 10)
                .ok_or_else(|| {
                    MpiError::Config(format!(
                        "KAMPING_METRICS_INTERVAL_MS must be an integer >= 10 (got {v:?})"
                    ))
                })?;
        }
        if let Some(v) = get("KAMPING_STRAGGLER_FACTOR") {
            cfg.straggler_factor = v
                .trim()
                .parse()
                .ok()
                .filter(|&f: &f64| f.is_finite() && f > 0.0)
                .ok_or_else(|| {
                    MpiError::Config(format!(
                        "KAMPING_STRAGGLER_FACTOR must be a positive number (got {v:?})"
                    ))
                })?;
        }
        if let Some(v) = get("KAMPING_CRASH_DIR") {
            if !v.trim().is_empty() {
                cfg.crash_dir = Some(PathBuf::from(v));
                cfg.tracing = true;
                cfg.measuring = true;
                cfg.metrics = true;
            }
        }
        Ok(cfg)
    }
}

/// Per-op timing cells of one rank (written by that rank's thread).
#[derive(Debug)]
pub struct RankOpTimings {
    calls: [AtomicU64; N_OPS],
    total_ns: [AtomicU64; N_OPS],
    wait_ns: [AtomicU64; N_OPS],
}

impl Default for RankOpTimings {
    fn default() -> Self {
        Self {
            calls: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            wait_ns: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl RankOpTimings {
    fn record(&self, op: Op, dur_ns: u64, wait_ns: u64) {
        let i = op as usize;
        self.calls[i].fetch_add(1, Ordering::Relaxed);
        self.total_ns[i].fetch_add(dur_ns, Ordering::Relaxed);
        self.wait_ns[i].fetch_add(wait_ns, Ordering::Relaxed);
    }

    /// Frozen `(op, calls, total_ns, wait_ns)` rows, all ops in
    /// discriminant order (zero rows included, so every rank agrees on the
    /// layout).
    pub fn snapshot(&self) -> Vec<(Op, u64, u64, u64)> {
        ALL_OPS
            .iter()
            .map(|&op| {
                let i = op as usize;
                (
                    op,
                    self.calls[i].load(Ordering::Relaxed),
                    self.total_ns[i].load(Ordering::Relaxed),
                    self.wait_ns[i].load(Ordering::Relaxed),
                )
            })
            .collect()
    }
}

/// Per-universe trace state: enable flags, the monotonic epoch, the event
/// Timestamp source for the instrumentation clock: the raw TSC, converted
/// to nanoseconds with a fixed-point multiplier calibrated once per
/// process against the OS monotonic clock. `Instant::now` costs ~30 ns on
/// a VM where the vDSO path is degraded; `rdtsc` is ~2× cheaper, and the
/// measuring path reads the clock up to six times per blocking op — this
/// is most of the gap between the +36% measure overhead the observability
/// bench used to report and the current number. Requires an invariant TSC
/// (`constant_tsc`/`nonstop_tsc`, universal on the hardware this targets);
/// when calibration fails, [`TraceCtx::now_ns`] falls back to `Instant`.
#[cfg(target_arch = "x86_64")]
mod tscclock {
    use std::sync::OnceLock;
    use std::time::{Duration, Instant};

    /// `ns = (Δtsc × mult) >> SHIFT`.
    pub(super) const SHIFT: u32 = 24;

    static CAL: OnceLock<Option<u64>> = OnceLock::new();

    #[inline]
    pub(super) fn read() -> u64 {
        // SAFETY: `rdtsc` is part of the x86_64 baseline ISA.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    /// The process-wide multiplier, if calibration has run and succeeded.
    #[inline]
    pub(super) fn mult() -> Option<u64> {
        CAL.get().copied().flatten()
    }

    /// Calibrates once per process: a ~2 ms spin bounded by the OS clock
    /// on both ends, giving a relative error well under 0.1% — drift of
    /// microseconds over a minutes-long run, far below the wall-clock
    /// skew that already bounds cross-process trace alignment. Called
    /// from [`super::TraceCtx::new`] only when instrumentation is on, so
    /// fully-disabled universes never pay the spin.
    pub(super) fn calibrate() {
        CAL.get_or_init(|| {
            let t0 = Instant::now();
            let c0 = read();
            while t0.elapsed() < Duration::from_millis(2) {
                std::hint::spin_loop();
            }
            let c1 = read();
            let dt = t0.elapsed().as_nanos();
            let dc = c1.wrapping_sub(c0) as u128;
            if dc == 0 {
                return None;
            }
            u64::try_from((dt << SHIFT) / dc).ok().filter(|&m| m > 0)
        });
    }
}

/// ring and the per-rank op timing cells. Cheap when disabled; every hook
/// checks one relaxed atomic first.
#[derive(Debug)]
pub struct TraceCtx {
    tracing: AtomicBool,
    measuring: AtomicBool,
    epoch: Instant,
    /// Raw TSC at `epoch` (x86_64 fast clock base).
    #[cfg(target_arch = "x86_64")]
    tsc_epoch: u64,
    /// Wall-clock nanoseconds (unix) at `epoch`; anchors cross-process
    /// trace merging.
    epoch_unix_ns: u64,
    shards: Vec<Mutex<VecDeque<TraceEvent>>>,
    dropped: AtomicU64,
    /// Op timing cells, one per global rank.
    timings: Vec<RankOpTimings>,
    /// Live metrics registry (same enable-gate discipline; see
    /// [`crate::metrics`]). Embedded here so every seam that already holds
    /// the trace context reaches the metrics plane without new wiring.
    metrics: MetricsCtx,
}

impl TraceCtx {
    /// A context for `size` ranks with the given activation switches.
    pub fn new(size: usize, cfg: &TraceConfig) -> Self {
        // Calibrate the fast clock before capturing the epoch pair, so the
        // one-time spin never lands between the two base readings.
        #[cfg(target_arch = "x86_64")]
        if cfg.tracing || cfg.measuring || cfg.metrics {
            tscclock::calibrate();
        }
        let epoch = Instant::now();
        #[cfg(target_arch = "x86_64")]
        let tsc_epoch = tscclock::read();
        let epoch_unix_ns = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self {
            tracing: AtomicBool::new(cfg.tracing),
            measuring: AtomicBool::new(cfg.measuring || cfg.tracing),
            epoch,
            #[cfg(target_arch = "x86_64")]
            tsc_epoch,
            epoch_unix_ns,
            shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
            dropped: AtomicU64::new(0),
            timings: (0..size).map(|_| RankOpTimings::default()).collect(),
            metrics: MetricsCtx::new(size, cfg.metrics),
        }
    }

    /// A fully-disabled context (standalone mailboxes, tests, benches).
    pub fn disabled(size: usize) -> Arc<Self> {
        Arc::new(Self::new(size, &TraceConfig::default()))
    }

    /// True when lifecycle events are being recorded.
    ///
    /// Under the `no-trace` feature this is a compile-time `false`, so the
    /// optimizer removes every instrumentation site — the seed-equivalent
    /// build the overhead guard compares the runtime-disabled path against.
    #[inline]
    pub fn tracing(&self) -> bool {
        if cfg!(feature = "no-trace") {
            return false;
        }
        self.tracing.load(Ordering::Relaxed)
    }

    /// True when op latency / wait attribution is being measured.
    #[inline]
    pub fn measuring(&self) -> bool {
        if cfg!(feature = "no-trace") {
            return false;
        }
        self.measuring.load(Ordering::Relaxed)
    }

    /// Flips event tracing (measuring is implied on).
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
        if on {
            self.measuring.store(true, Ordering::Relaxed);
        }
    }

    /// Flips latency measuring.
    pub fn set_measuring(&self, on: bool) {
        self.measuring.store(on, Ordering::Relaxed);
    }

    /// The live metrics registry (gate included; see
    /// [`MetricsCtx::enabled`]).
    #[inline]
    pub fn metrics(&self) -> &MetricsCtx {
        &self.metrics
    }

    /// Nanoseconds since this context's monotonic epoch. Served from the
    /// calibrated TSC when available (see [`tscclock`]), from the OS
    /// monotonic clock otherwise — including on contexts whose switches
    /// were flipped on only after construction.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        #[cfg(target_arch = "x86_64")]
        if let Some(mult) = tscclock::mult() {
            let dc = tscclock::read().wrapping_sub(self.tsc_epoch);
            return ((dc as u128 * mult as u128) >> tscclock::SHIFT) as u64;
        }
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Wall-clock (unix) nanoseconds at the epoch.
    pub fn epoch_unix_ns(&self) -> u64 {
        self.epoch_unix_ns
    }

    /// Records `kind` at the current time. Callers on hot paths must gate
    /// on [`TraceCtx::tracing`] first.
    pub fn record(&self, kind: EventKind) {
        self.record_at(self.now_ns(), kind);
    }

    /// Records `kind` with an explicit timestamp (span starts).
    pub fn record_at(&self, ts_ns: u64, kind: EventKind) {
        let shard = &self.shards[thread_shard()];
        let mut q = shard.lock().expect("trace shard poisoned");
        if q.len() >= SHARD_CAP {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(TraceEvent { ts_ns, kind });
    }

    /// Events lost to ring overflow so far.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drains all shards and returns the events sorted by timestamp.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().expect("trace shard poisoned").drain(..));
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// The op timing cells of global rank `rank`.
    pub fn timings(&self, rank: usize) -> &RankOpTimings {
        &self.timings[rank]
    }

    /// Starts an op scope for `rank`. Inert (no clock read) unless
    /// measuring or metrics are on.
    ///
    /// A measured scope reads the clock exactly once on entry and once on
    /// drop (the single `now_ns` is reused by the timings, the trace span,
    /// and the metrics histogram). A metrics-only scope pays only the
    /// counter bumps: op latency is sampled 1-in-64, so the clock reads
    /// amortize to a fraction of a nanosecond per op.
    pub(crate) fn op_scope(&self, op: Op, rank: usize) -> OpScope<'_> {
        let measuring = self.measuring();
        let metrics_on = self.metrics.enabled();
        if !measuring && !metrics_on {
            return OpScope { inner: None };
        }
        let mut timed = measuring;
        if metrics_on {
            let prev = self.metrics.rank(rank).add_ret(Counter::OpsStarted, 1);
            if !measuring && prev & 63 == 0 {
                timed = true;
            }
        }
        let start_ns = if timed { self.now_ns() } else { 0 };
        if metrics_on {
            self.metrics.rank(rank).set_in_flight(op, start_ns);
        }
        OpScope {
            inner: Some(OpScopeInner {
                ctx: self,
                op,
                rank,
                start_ns,
                wait_at_start: if measuring { thread_wait_ns() } else { 0 },
                timed,
                measuring,
                metrics_on,
            }),
        }
    }

    /// Starts a wait span attributed to `rank`. Inert unless measuring.
    pub(crate) fn wait_span(&self, rank: u32) -> WaitSpan<'_> {
        if !self.measuring() {
            return WaitSpan { inner: None };
        }
        WaitSpan {
            inner: Some(WaitSpanInner {
                ctx: self,
                rank,
                start_ns: self.now_ns(),
            }),
        }
    }

    /// Accumulates parked time into `rank`'s blocked-wait metrics counter.
    /// A no-op unless metrics are on *and* the calling thread hosts
    /// `rank` — helper threads (snapshot responders, progress engines)
    /// parking on a mailbox must not count as that rank being blocked.
    ///
    /// Only 1 park in [`PARK_SAMPLE`] pays the two clock reads; the
    /// measured duration is scaled back up on drop. `BlockedNs` is a
    /// statistical estimate feeding an interval *ratio* — with thousands
    /// of parks per interval the sampling error vanishes, while the
    /// common park costs one relaxed `fetch_add`. That is what keeps the
    /// metrics-on ping-pong inside its overhead gate on a machine where
    /// every blocking receive parks.
    pub(crate) fn metrics_block_guard(&self, rank: usize) -> MetricsBlockGuard<'_> {
        if !self.metrics.enabled() || thread_rank() != rank as u32 {
            return MetricsBlockGuard { inner: None };
        }
        if !self
            .metrics
            .rank(rank)
            .park_tick()
            .is_multiple_of(PARK_SAMPLE)
        {
            return MetricsBlockGuard { inner: None };
        }
        MetricsBlockGuard {
            inner: Some((self, rank, self.now_ns())),
        }
    }

    /// Counts one timed-out bounded wait for `rank` (same thread-identity
    /// rule as [`TraceCtx::metrics_block_guard`]).
    pub(crate) fn metrics_timeout(&self, rank: usize) {
        if self.metrics.enabled() && thread_rank() == rank as u32 {
            self.metrics.rank(rank).add(Counter::Timeouts, 1);
        }
    }
}

struct OpScopeInner<'a> {
    ctx: &'a TraceCtx,
    op: Op,
    rank: usize,
    start_ns: u64,
    wait_at_start: u64,
    /// Clock was read at start; read it again at drop.
    timed: bool,
    measuring: bool,
    metrics_on: bool,
}

/// RAII guard timing one substrate operation; on drop it attributes the
/// elapsed time (split into wait vs compute) to the op and, when tracing,
/// emits an [`EventKind::OpSpan`].
pub struct OpScope<'a> {
    inner: Option<OpScopeInner<'a>>,
}

impl Drop for OpScope<'_> {
    fn drop(&mut self) {
        let Some(i) = self.inner.take() else { return };
        let dur_ns = if i.timed {
            i.ctx.now_ns().saturating_sub(i.start_ns)
        } else {
            0
        };
        if i.metrics_on {
            let rm = i.ctx.metrics.rank(i.rank);
            rm.clear_in_flight();
            if i.timed {
                rm.observe(Hist::OpLatency, dur_ns);
            }
        }
        if i.measuring {
            let wait_ns = thread_wait_ns().saturating_sub(i.wait_at_start);
            i.ctx.timings[i.rank].record(i.op, dur_ns, wait_ns.min(dur_ns));
            if i.ctx.tracing() {
                i.ctx.record_at(
                    i.start_ns,
                    EventKind::OpSpan {
                        rank: i.rank as u32,
                        op: i.op,
                        dur_ns,
                        wait_ns: wait_ns.min(dur_ns),
                    },
                );
            }
        }
    }
}

struct WaitSpanInner<'a> {
    ctx: &'a TraceCtx,
    rank: u32,
    start_ns: u64,
}

/// RAII guard around a blocking wait (mailbox/hub slow path); on drop it
/// adds the parked time to the thread's wait accumulator and, when
/// tracing, emits an [`EventKind::Wait`]. One clock read per side.
pub struct WaitSpan<'a> {
    inner: Option<WaitSpanInner<'a>>,
}

impl Drop for WaitSpan<'_> {
    fn drop(&mut self) {
        let Some(i) = self.inner.take() else { return };
        let dur_ns = i.ctx.now_ns().saturating_sub(i.start_ns);
        THREAD_WAIT_NS.with(|w| w.set(w.get().saturating_add(dur_ns)));
        if i.ctx.tracing() {
            i.ctx.record_at(
                i.start_ns,
                EventKind::Wait {
                    rank: i.rank,
                    dur_ns,
                },
            );
        }
    }
}

/// 1-in-N park sampling rate for blocked-wait timing (power of two).
const PARK_SAMPLE: u64 = 8;

/// RAII guard for the metrics blocked-wait counter (see
/// [`TraceCtx::metrics_block_guard`]).
pub(crate) struct MetricsBlockGuard<'a> {
    inner: Option<(&'a TraceCtx, usize, u64)>,
}

impl Drop for MetricsBlockGuard<'_> {
    fn drop(&mut self) {
        let Some((ctx, rank, start_ns)) = self.inner.take() else {
            return;
        };
        let dur = ctx.now_ns().saturating_sub(start_ns);
        // Scale the sampled park back to an estimate of total parked time.
        ctx.metrics
            .rank(rank)
            .add(Counter::BlockedNs, dur.saturating_mul(PARK_SAMPLE));
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// Microseconds with nanosecond resolution, as Chrome's `ts` field wants.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// One event as a Chrome trace-event JSON object. `base_unix_ns` shifts
/// timestamps to absolute wall-clock µs (for cross-process merging); pass
/// 0 for run-relative timestamps.
fn chrome_event(ev: &TraceEvent, base_unix_ns: u64) -> String {
    let ts = us(base_unix_ns.saturating_add(ev.ts_ns));
    match &ev.kind {
        EventKind::Post {
            src,
            dst,
            tag,
            ctx,
            bytes,
        } => format!(
            r#"{{"name":"post {src}->{dst}","cat":"envelope","ph":"i","s":"t","ts":{ts},"pid":{src},"tid":{dst},"args":{{"kind":"post","src":{src},"dst":{dst},"tag":{tag},"ctx":{ctx},"bytes":{bytes}}}}}"#
        ),
        EventKind::Deliver {
            src,
            dst,
            tag,
            ctx,
            bytes,
        } => format!(
            r#"{{"name":"deliver {src}->{dst}","cat":"envelope","ph":"i","s":"t","ts":{ts},"pid":{dst},"tid":{src},"args":{{"kind":"deliver","src":{src},"dst":{dst},"tag":{tag},"ctx":{ctx},"bytes":{bytes}}}}}"#
        ),
        EventKind::Take {
            src,
            dst,
            tag,
            ctx,
            bytes,
        } => format!(
            r#"{{"name":"take {src}->{dst}","cat":"envelope","ph":"i","s":"t","ts":{ts},"pid":{dst},"tid":{src},"args":{{"kind":"take","src":{src},"dst":{dst},"tag":{tag},"ctx":{ctx},"bytes":{bytes}}}}}"#
        ),
        EventKind::Wait { rank, dur_ns } => format!(
            r#"{{"name":"blocked","cat":"wait","ph":"X","ts":{ts},"dur":{},"pid":{rank},"tid":{rank},"args":{{"kind":"wait"}}}}"#,
            us(*dur_ns)
        ),
        EventKind::OpSpan {
            rank,
            op,
            dur_ns,
            wait_ns,
        } => format!(
            r#"{{"name":"{}","cat":"op","ph":"X","ts":{ts},"dur":{},"pid":{rank},"tid":{rank},"args":{{"kind":"op","wait_ns":{wait_ns},"compute_ns":{}}}}}"#,
            op.name(),
            us(*dur_ns),
            dur_ns.saturating_sub(*wait_ns)
        ),
        EventKind::Chaos { src, dst, fault } => format!(
            r#"{{"name":"chaos {fault}","cat":"chaos","ph":"i","s":"g","ts":{ts},"pid":{src},"tid":{dst},"args":{{"kind":"chaos","fault":"{fault}","src":{src},"dst":{dst}}}}}"#
        ),
        EventKind::Control { rank, peer, frame } => format!(
            r#"{{"name":"ctl {frame}","cat":"control","ph":"i","s":"t","ts":{ts},"pid":{rank},"tid":{peer},"args":{{"kind":"control","frame":"{frame}"}}}}"#
        ),
        EventKind::Progress {
            rank,
            events,
            frames,
            dur_ns,
        } => format!(
            r#"{{"name":"progress","cat":"progress","ph":"X","ts":{ts},"dur":{},"pid":{rank},"tid":{rank},"args":{{"kind":"progress","events":{events},"frames":{frames}}}}}"#,
            us(*dur_ns)
        ),
        EventKind::RingWait {
            rank,
            peer,
            role,
            dur_ns,
        } => format!(
            r#"{{"name":"ring {role}","cat":"wait","ph":"X","ts":{ts},"dur":{},"pid":{rank},"tid":{rank},"args":{{"kind":"ring_wait","role":"{role}","peer":{peer}}}}}"#,
            us(*dur_ns)
        ),
    }
}

/// Renders the last `tail` events as individual Chrome JSON object
/// strings — the flight-recorder format embedded in crash reports.
pub(crate) fn render_event_tail(
    events: &[TraceEvent],
    tail: usize,
    base_unix_ns: u64,
) -> Vec<String> {
    let start = events.len().saturating_sub(tail);
    events[start..]
        .iter()
        .map(|ev| chrome_event(ev, base_unix_ns))
        .collect()
}

/// Renders `events` as one Chrome trace JSON document (run-relative
/// timestamps — the single-process export).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(&chrome_event(ev, 0));
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Per-rank bookkeeping carried in the trace metadata line (a Chrome
/// `"ph":"M"` event, so Perfetto tolerates it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankTraceMeta {
    /// Global rank the file belongs to.
    pub rank: usize,
    /// Events lost to ring overflow in that process.
    pub dropped_events: u64,
}

fn rank_meta_line(meta: &RankTraceMeta) -> String {
    format!(
        r#"{{"ph":"M","name":"kamping_rank_meta","ts":0,"pid":{},"args":{{"rank":{},"dropped_events":{}}}}}"#,
        meta.rank, meta.rank, meta.dropped_events
    )
}

/// Writes `events` as JSONL (one Chrome event object per line, timestamps
/// shifted to absolute wall-clock µs) — the per-rank format merged by
/// [`merge_trace_dir`]. `meta` (when present) becomes the file's first
/// line, carrying the rank's dropped-event count into the merge.
pub fn write_trace_jsonl(
    path: &Path,
    events: &[TraceEvent],
    epoch_unix_ns: u64,
    meta: Option<RankTraceMeta>,
) -> io::Result<()> {
    let mut out = String::new();
    if let Some(meta) = meta {
        out.push_str(&rank_meta_line(&meta));
        out.push('\n');
    }
    for ev in events {
        out.push_str(&chrome_event(ev, epoch_unix_ns));
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Extracts the numeric `"ts"` value from one serialized event line.
fn line_ts(line: &str) -> Option<f64> {
    let at = line.find("\"ts\":")? + 5;
    let rest = &line[at..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// What [`merge_trace_dir`] produced: the merged event count plus the
/// per-rank dropped-event counts scraped from the rank metadata lines —
/// previously those counts were silently discarded, so a clipped trace
/// looked complete.
#[derive(Debug, Clone, Default)]
pub struct MergeReport {
    /// Events written to the merged document.
    pub events: usize,
    /// `(rank, dropped_events)` rows, sorted by rank, for every rank file
    /// that carried a metadata line.
    pub dropped: Vec<(usize, u64)>,
}

impl MergeReport {
    /// Total events lost across all ranks.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.iter().map(|(_, d)| d).sum()
    }
}

/// Merges every `*.jsonl` per-rank trace in `dir` into one Chrome trace
/// JSON file at `out`, sorted by timestamp. Rank metadata lines are
/// folded into one leading merged-metadata event (and the returned
/// [`MergeReport`]) instead of being interleaved with the sort. Used by
/// `kampirun --trace` and the multi-process tests.
pub fn merge_trace_dir(dir: &Path, out: &Path) -> io::Result<MergeReport> {
    let mut lines: Vec<(f64, String)> = Vec::new();
    let mut dropped: Vec<(usize, u64)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_none_or(|e| e != "jsonl") {
            continue;
        }
        for line in std::fs::read_to_string(&path)?.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if line.contains("\"kamping_rank_meta\"") {
                if let (Some(rank), Some(d)) = (
                    crate::metrics::scrape_u64(line, "rank"),
                    crate::metrics::scrape_u64(line, "dropped_events"),
                ) {
                    dropped.push((rank as usize, d));
                }
                continue;
            }
            let ts = line_ts(line).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("trace line without ts in {}", path.display()),
                )
            })?;
            lines.push((ts, line.to_string()));
        }
    }
    lines.sort_by(|a, b| a.0.total_cmp(&b.0));
    dropped.sort_unstable();
    let mut doc = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    if !dropped.is_empty() {
        let per_rank: Vec<String> = dropped.iter().map(|(r, d)| format!("[{r},{d}]")).collect();
        let total: u64 = dropped.iter().map(|(_, d)| d).sum();
        doc.push_str(&format!(
            r#"{{"ph":"M","name":"kamping_dropped_events","ts":0,"args":{{"total":{},"per_rank":[{}]}}}}"#,
            total,
            per_rank.join(",")
        ));
        if !lines.is_empty() {
            doc.push(',');
        }
        doc.push('\n');
    }
    for (i, (_, line)) in lines.iter().enumerate() {
        doc.push_str(line);
        if i + 1 < lines.len() {
            doc.push(',');
        }
        doc.push('\n');
    }
    doc.push_str("]}\n");
    std::fs::write(out, doc)?;
    Ok(MergeReport {
        events: lines.len(),
        dropped,
    })
}

/// Writes this process's trace to the `KAMPING_TRACE` destination:
/// a directory gets `trace-rank<R>.jsonl` (absolute timestamps, merge
/// input), any other path gets a self-contained Chrome JSON file (with
/// `-rank<R>` inserted before the extension on multi-process backends so
/// ranks don't clobber each other).
/// The caller drains the ring with `take_events` first — the flight
/// recorder and this export share one drain.
pub(crate) fn write_process_trace_events(
    ctx: &TraceCtx,
    events: &[TraceEvent],
    out: &Path,
    rank: Option<usize>,
) -> io::Result<()> {
    if out.is_dir() {
        let name = match rank {
            Some(r) => format!("trace-rank{r}.jsonl"),
            None => "trace.jsonl".to_string(),
        };
        let meta = RankTraceMeta {
            rank: rank.unwrap_or(0),
            dropped_events: ctx.dropped_events(),
        };
        return write_trace_jsonl(&out.join(name), events, ctx.epoch_unix_ns(), Some(meta));
    }
    let path = match rank {
        Some(r) => {
            let stem = out.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
            let ext = out.extension().and_then(|s| s.to_str()).unwrap_or("json");
            out.with_file_name(format!("{stem}-rank{r}.{ext}"))
        }
        None => out.to_path_buf(),
    };
    std::fs::write(path, chrome_trace_json(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: u64) -> TraceEvent {
        TraceEvent {
            ts_ns,
            kind: EventKind::Post {
                src: 0,
                dst: 1,
                tag: 7,
                ctx: 0,
                bytes: 8,
            },
        }
    }

    #[test]
    fn disabled_ctx_records_nothing() {
        let ctx = TraceCtx::disabled(2);
        assert!(!ctx.tracing());
        assert!(!ctx.measuring());
        // Guards are inert: no wait accumulates, no event appears.
        let before = thread_wait_ns();
        drop(ctx.wait_span(0));
        drop(ctx.op_scope(Op::Send, 0));
        assert_eq!(thread_wait_ns(), before);
        assert!(ctx.take_events().is_empty());
    }

    #[test]
    fn enabled_ctx_round_trips_events() {
        let ctx = TraceCtx::new(
            2,
            &TraceConfig {
                tracing: true,
                measuring: true,
                ..TraceConfig::default()
            },
        );
        ctx.record(EventKind::Post {
            src: 0,
            dst: 1,
            tag: 3,
            ctx: 0,
            bytes: 5,
        });
        drop(ctx.op_scope(Op::Recv, 1));
        let events = ctx.take_events();
        assert_eq!(events.len(), 2);
        // Timestamps come back sorted.
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert!(ctx.take_events().is_empty(), "take drains");
    }

    #[test]
    fn wait_span_accumulates_thread_wait() {
        let ctx = TraceCtx::new(
            1,
            &TraceConfig {
                tracing: false,
                measuring: true,
                ..TraceConfig::default()
            },
        );
        let before = thread_wait_ns();
        drop(ctx.wait_span(0));
        assert!(thread_wait_ns() >= before);
    }

    #[test]
    fn op_timings_record_calls_and_split() {
        let t = RankOpTimings::default();
        t.record(Op::Bcast, 1000, 400);
        t.record(Op::Bcast, 500, 100);
        let snap = t.snapshot();
        let row = snap.iter().find(|r| r.0 == Op::Bcast).unwrap();
        assert_eq!((row.1, row.2, row.3), (2, 1500, 500));
    }

    #[test]
    fn ring_drops_oldest_beyond_cap() {
        let ctx = TraceCtx::new(
            1,
            &TraceConfig {
                tracing: true,
                measuring: true,
                ..TraceConfig::default()
            },
        );
        // All from one thread = one shard; overflow it.
        for i in 0..(SHARD_CAP + 10) as u64 {
            ctx.record_at(i, ev(i).kind);
        }
        assert_eq!(ctx.dropped_events(), 10);
        let events = ctx.take_events();
        assert_eq!(events.len(), SHARD_CAP);
        assert_eq!(events.first().unwrap().ts_ns, 10, "oldest were dropped");
    }

    #[test]
    fn chrome_json_shape_and_ts() {
        let events = vec![ev(1500), ev(2500)];
        let doc = chrome_trace_json(&events);
        assert!(doc.starts_with("{\"displayTimeUnit\""));
        assert!(doc.contains("\"ts\":1.500"));
        assert!(doc.contains("\"ts\":2.500"));
        assert!(doc.trim_end().ends_with("]}"));
        assert_eq!(line_ts("{\"ts\":12.034,\"x\":1}"), Some(12.034));
    }

    #[test]
    fn merge_sorts_across_rank_files() {
        let dir = std::env::temp_dir().join(format!("kamping-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write_trace_jsonl(
            &dir.join("trace-rank0.jsonl"),
            &[ev(3000), ev(5000)],
            0,
            Some(RankTraceMeta {
                rank: 0,
                dropped_events: 0,
            }),
        )
        .unwrap();
        write_trace_jsonl(
            &dir.join("trace-rank1.jsonl"),
            &[ev(4000)],
            0,
            Some(RankTraceMeta {
                rank: 1,
                dropped_events: 7,
            }),
        )
        .unwrap();
        let out = dir.join("merged.json");
        let report = merge_trace_dir(&dir, &out).unwrap();
        assert_eq!(report.events, 3, "meta lines are not events");
        assert_eq!(report.dropped, vec![(0, 0), (1, 7)]);
        assert_eq!(report.total_dropped(), 7);
        let doc = std::fs::read_to_string(&out).unwrap();
        let pos3 = doc.find("\"ts\":3.000").unwrap();
        let pos4 = doc.find("\"ts\":4.000").unwrap();
        let pos5 = doc.find("\"ts\":5.000").unwrap();
        assert!(pos3 < pos4 && pos4 < pos5, "merged events sorted by ts");
        let meta = doc.find("kamping_dropped_events").unwrap();
        assert!(meta < pos3, "merged metadata leads the document");
        assert!(doc.contains("\"total\":7"), "{doc}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn lookup<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| {
            pairs
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn config_env_switches() {
        let cfg = TraceConfig::from_lookup(lookup(&[("KAMPING_TRACE", "1")])).unwrap();
        assert!(cfg.tracing && cfg.measuring && cfg.out.is_none());
        let cfg = TraceConfig::from_lookup(lookup(&[("KAMPING_TRACE", "/tmp/t.json")])).unwrap();
        assert_eq!(cfg.out.as_deref(), Some(Path::new("/tmp/t.json")));
        let cfg = TraceConfig::from_lookup(lookup(&[("KAMPING_MEASURE", "false")])).unwrap();
        assert!(!cfg.measuring, "false now means off, not a silent enable");
        let cfg = TraceConfig::from_lookup(lookup(&[("KAMPING_METRICS", "/tmp/m.jsonl")])).unwrap();
        assert!(cfg.metrics);
        assert_eq!(cfg.metrics_out.as_deref(), Some(Path::new("/tmp/m.jsonl")));
        let cfg = TraceConfig::from_lookup(lookup(&[("KAMPING_CRASH_DIR", "/tmp/crash")])).unwrap();
        assert!(
            cfg.tracing && cfg.measuring && cfg.metrics,
            "crash dir forces evidence collection on"
        );
    }

    #[test]
    fn config_bad_values_are_typed_errors() {
        for (var, val) in [
            ("KAMPING_MEASURE", "yes"),
            ("KAMPING_TRACE", "   "),
            ("KAMPING_METRICS", " "),
            ("KAMPING_METRICS_INTERVAL_MS", "fast"),
            ("KAMPING_METRICS_INTERVAL_MS", "5"),
            ("KAMPING_STRAGGLER_FACTOR", "-1"),
            ("KAMPING_STRAGGLER_FACTOR", "NaNx"),
        ] {
            let err = TraceConfig::from_lookup(lookup(&[(var, val)]))
                .expect_err(&format!("{var}={val:?} must be rejected"));
            match err {
                MpiError::Config(msg) => {
                    assert!(msg.contains(var), "error names the variable: {msg}")
                }
                other => panic!("expected Config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn metrics_only_scope_counts_without_measuring() {
        let ctx = TraceCtx::new(
            2,
            &TraceConfig {
                metrics: true,
                ..TraceConfig::default()
            },
        );
        assert!(!ctx.measuring());
        assert!(ctx.metrics().enabled());
        for _ in 0..65 {
            drop(ctx.op_scope(Op::Send, 1));
        }
        let snap = crate::metrics::MetricsSnapshot::capture(ctx.metrics().rank(1), (0, 0));
        assert_eq!(snap.counter(Counter::OpsStarted), 65);
        // 1-in-64 sampling: ops 0 and 64 were timed.
        let hist_total: u64 = snap.hists[Hist::OpLatency as usize].iter().sum();
        assert_eq!(hist_total, 2);
        // Timings stay untouched (measuring off).
        assert_eq!(ctx.timings(1).snapshot()[Op::Send as usize].1, 0);
    }
}
