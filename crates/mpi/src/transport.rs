//! Shared-memory transport: one mailbox per rank.
//!
//! A mailbox is a mutex-protected queue of [`Envelope`]s plus a condition
//! variable. Sends are *eager*: the sender packs its bytes into an envelope
//! and deposits it in the receiver's mailbox, so a standard-mode send always
//! completes locally (as buffered sends do in practice for small messages in
//! real MPI). Synchronous-mode sends (`issend`) additionally carry an
//! acknowledgement cell that the receiver flips when the message is
//! *matched* — the completion semantics the NBX sparse all-to-all algorithm
//! (Hoefler et al., reproduced in `kamping-plugins`) relies on.
//!
//! Matching is FIFO per (source, tag, context): the receiver scans the queue
//! front-to-back and takes the first envelope that matches, which preserves
//! MPI's non-overtaking guarantee.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{MpiError, MpiResult};
use crate::tag::{source_matches, tag_matches, Tag};

/// How long a blocked receiver sleeps between checks of the failure /
/// revocation state. Purely a liveness knob; correctness never depends on it.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Acknowledgement cell for synchronous-mode sends.
#[derive(Debug, Default)]
pub struct AckCell(AtomicBool);

impl AckCell {
    /// Marks the message as matched by a receiver.
    pub fn set(&self) {
        self.0.store(true, Ordering::Release);
    }
    /// True once a receiver has matched the message.
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A message in flight.
#[derive(Debug)]
pub struct Envelope {
    /// Global rank of the sender.
    pub src: usize,
    /// Message tag (user or internal collective space).
    pub tag: Tag,
    /// Context id of the communicator the message travels on.
    pub ctx: u64,
    /// Packed message bytes.
    pub payload: Vec<u8>,
    /// Present for synchronous-mode sends; flipped on match.
    pub ack: Option<Arc<AckCell>>,
}

/// Matching key for receives and probes. Sources are *global* ranks; the
/// communicator layer translates before calling into the transport.
#[derive(Debug, Clone, Copy)]
pub struct MatchKey {
    /// Wanted global source rank, or [`crate::ANY_SOURCE`].
    pub src: usize,
    /// Wanted tag, or [`crate::ANY_TAG`] (user space only).
    pub tag: Tag,
    /// Context id of the communicator.
    pub ctx: u64,
}

impl MatchKey {
    fn matches(&self, e: &Envelope) -> bool {
        e.ctx == self.ctx && source_matches(self.src, e.src) && tag_matches(self.tag, e.tag)
    }
}

/// Outcome of a successful match.
#[derive(Debug)]
pub struct Delivered {
    /// Actual global source rank.
    pub src: usize,
    /// Actual tag.
    pub tag: Tag,
    /// The message bytes.
    pub payload: Vec<u8>,
}

/// Per-rank incoming message queue.
#[derive(Default)]
pub struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    cond: Condvar,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposits an envelope and wakes any waiting receiver.
    pub fn post(&self, envelope: Envelope) {
        let mut q = self.queue.lock();
        q.push_back(envelope);
        drop(q);
        self.cond.notify_all();
    }

    /// Wakes all waiters so they can re-check failure/revocation state.
    pub fn kick(&self) {
        self.cond.notify_all();
    }

    /// Removes and returns the first matching envelope, if any.
    ///
    /// Flips the `ack` cell of synchronous-mode messages.
    pub fn try_take(&self, key: MatchKey) -> Option<Delivered> {
        let mut q = self.queue.lock();
        let idx = q.iter().position(|e| key.matches(e))?;
        let e = q.remove(idx).expect("index valid under lock");
        if let Some(ack) = &e.ack {
            ack.set();
        }
        Some(Delivered { src: e.src, tag: e.tag, payload: e.payload })
    }

    /// Returns (source, tag, byte length) of the first matching envelope
    /// without removing it (`MPI_Iprobe`).
    pub fn try_peek(&self, key: MatchKey) -> Option<(usize, Tag, usize)> {
        let q = self.queue.lock();
        q.iter().find(|e| key.matches(e)).map(|e| (e.src, e.tag, e.payload.len()))
    }

    /// Blocks until a matching envelope arrives, periodically invoking
    /// `interrupt` to learn about failures or revocation.
    ///
    /// `interrupt` returns `Some(err)` when the wait must be abandoned (the
    /// awaited peer died, or the communicator was revoked).
    pub fn take_blocking(
        &self,
        key: MatchKey,
        interrupt: &dyn Fn() -> Option<MpiError>,
    ) -> MpiResult<Delivered> {
        let mut q = self.queue.lock();
        loop {
            if let Some(idx) = q.iter().position(|e| key.matches(e)) {
                let e = q.remove(idx).expect("index valid under lock");
                if let Some(ack) = &e.ack {
                    ack.set();
                }
                return Ok(Delivered { src: e.src, tag: e.tag, payload: e.payload });
            }
            if let Some(err) = interrupt() {
                return Err(err);
            }
            self.cond.wait_for(&mut q, POLL_INTERVAL);
        }
    }

    /// Number of queued envelopes (diagnostics / tests only).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// True when no envelope is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::{ANY_SOURCE, ANY_TAG};

    fn env(src: usize, tag: Tag, ctx: u64, payload: &[u8]) -> Envelope {
        Envelope { src, tag, ctx, payload: payload.to_vec(), ack: None }
    }

    #[test]
    fn fifo_per_channel() {
        let mb = Mailbox::new();
        mb.post(env(0, 1, 0, b"first"));
        mb.post(env(0, 1, 0, b"second"));
        let key = MatchKey { src: 0, tag: 1, ctx: 0 };
        assert_eq!(mb.try_take(key).unwrap().payload, b"first");
        assert_eq!(mb.try_take(key).unwrap().payload, b"second");
        assert!(mb.try_take(key).is_none());
    }

    #[test]
    fn matching_respects_ctx_tag_src() {
        let mb = Mailbox::new();
        mb.post(env(0, 1, 7, b"a"));
        assert!(mb.try_take(MatchKey { src: 0, tag: 1, ctx: 8 }).is_none());
        assert!(mb.try_take(MatchKey { src: 1, tag: 1, ctx: 7 }).is_none());
        assert!(mb.try_take(MatchKey { src: 0, tag: 2, ctx: 7 }).is_none());
        assert!(mb.try_take(MatchKey { src: 0, tag: 1, ctx: 7 }).is_some());
    }

    #[test]
    fn wildcards_match_and_report_actual_origin() {
        let mb = Mailbox::new();
        mb.post(env(3, 9, 0, b"x"));
        let d = mb.try_take(MatchKey { src: ANY_SOURCE, tag: ANY_TAG, ctx: 0 }).unwrap();
        assert_eq!((d.src, d.tag), (3, 9));
    }

    #[test]
    fn peek_does_not_consume_or_ack() {
        let mb = Mailbox::new();
        let ack = Arc::new(AckCell::default());
        mb.post(Envelope { src: 0, tag: 5, ctx: 0, payload: vec![1, 2, 3], ack: Some(ack.clone()) });
        let key = MatchKey { src: 0, tag: 5, ctx: 0 };
        assert_eq!(mb.try_peek(key), Some((0, 5, 3)));
        assert!(!ack.is_set());
        assert_eq!(mb.len(), 1);
        mb.try_take(key).unwrap();
        assert!(ack.is_set());
    }

    #[test]
    fn blocking_take_interrupts() {
        let mb = Mailbox::new();
        let key = MatchKey { src: 2, tag: 0, ctx: 0 };
        let err = mb
            .take_blocking(key, &|| Some(MpiError::ProcFailed { rank: 2 }))
            .unwrap_err();
        assert_eq!(err, MpiError::ProcFailed { rank: 2 });
    }

    #[test]
    fn blocking_take_wakes_on_post() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let handle = std::thread::spawn(move || {
            let key = MatchKey { src: 0, tag: 0, ctx: 0 };
            mb2.take_blocking(key, &|| None).unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.post(env(0, 0, 0, b"wake"));
        assert_eq!(handle.join().unwrap().payload, b"wake");
    }
}
