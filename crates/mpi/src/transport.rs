//! The transport seam and the shared-memory backend.
//!
//! The substrate talks to the outside world through the [`Transport`]
//! trait: depositing envelopes at a destination rank, propagating control
//! events (failure, finish, revocation) to every peer,
//! and flushing traffic at teardown. Two backends implement it:
//!
//! * [`ShmTransport`] (this module) — all ranks are threads of one process
//!   and every mailbox is directly reachable; control propagation is a
//!   no-op because the fault/barrier state is genuinely shared.
//! * [`crate::net::SocketTransport`] — each rank is its own OS process;
//!   envelopes travel as length-prefixed frames over per-peer sockets and
//!   control events are broadcast as control frames (see `crate::net`).
//!
//! Either way the *receive side* is identical: envelopes land in the
//! destination rank's [`Mailbox`], so matching semantics (FIFO per source,
//! `ANY_SOURCE` arrival stamps, ack flipping) are defined once, here.
//!
//! # The shared-memory mailbox
//!
//! Each rank owns a [`Mailbox`] holding one FIFO *lane per sender*, so
//! concurrent senders never contend on a shared queue lock. Sends are
//! *eager*: the sender wraps its bytes in a [`Payload`] and deposits an
//! [`Envelope`] in the receiver's lane, so a standard-mode send always
//! completes locally (as buffered sends do in practice for small messages in
//! real MPI). Synchronous-mode sends (`issend`) additionally carry an
//! acknowledgement cell that the receiver flips when the message is
//! *matched* — the completion semantics the NBX sparse all-to-all algorithm
//! (Hoefler et al., reproduced in `kamping-plugins`) relies on.
//!
//! Payloads are zero-copy on the fan-out path: a broadcast posts one shared
//! allocation (`Arc<Vec<u8>>`) to every child instead of copying per
//! receiver, and messages of at most [`INLINE_CAP`] bytes ride inline in the
//! envelope without touching the heap at all.
//!
//! Blocked receivers never poll: a deposit bumps the mailbox *gate* epoch
//! under its mutex and signals the condvar, and failure/revocation events
//! [`Mailbox::kick`] every mailbox, so waits carry no timeout. The
//! [`Hub`] plays the same role for events that are not tied to one mailbox
//! (ssend acknowledgements, failure marks).
//!
//! Matching is FIFO per (source, tag, context): the receiver scans the
//! sender's lane front-to-back and takes the first envelope that matches,
//! which preserves MPI's non-overtaking guarantee. `ANY_SOURCE` receives
//! pick the matching envelope with the lowest arrival stamp across lanes,
//! so cross-sender matching follows arrival order deterministically.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use crate::error::{MpiError, MpiResult};
use crate::tag::{source_matches, tag_matches, Tag, ANY_SOURCE, COLL_TAG_BASE};
use crate::trace::{EventKind, TraceCtx};

/// Largest payload (bytes) carried inline in the envelope instead of on the
/// heap. Sub-cacheline messages — barrier tokens, counts exchanges, single
/// elements — never allocate.
pub const INLINE_CAP: usize = 32;

/// Message bytes in flight: inline for small messages, shared (refcounted)
/// otherwise so fan-out posts alias one allocation.
#[derive(Debug, Clone)]
pub enum Payload {
    /// At most [`INLINE_CAP`] bytes stored in the envelope itself.
    Inline {
        /// Number of valid bytes in `data`.
        len: u8,
        /// Inline storage; only `data[..len]` is meaningful.
        data: [u8; INLINE_CAP],
    },
    /// Heap bytes, shared across any number of envelopes.
    Shared(Arc<Vec<u8>>),
}

impl Payload {
    /// Packs `bytes`: inline if they fit, one shared allocation otherwise.
    pub fn from_slice(bytes: &[u8]) -> Self {
        if bytes.len() <= INLINE_CAP {
            let mut data = [0u8; INLINE_CAP];
            data[..bytes.len()].copy_from_slice(bytes);
            Payload::Inline {
                len: bytes.len() as u8,
                data,
            }
        } else {
            Payload::Shared(Arc::new(bytes.to_vec()))
        }
    }

    /// Packs an owned buffer without copying (unless it fits inline, in
    /// which case the allocation is dropped).
    pub fn from_vec(v: Vec<u8>) -> Self {
        if v.len() <= INLINE_CAP {
            Payload::from_slice(&v)
        } else {
            Payload::Shared(Arc::new(v))
        }
    }

    /// Wraps an already-shared buffer (fan-out senders clone the `Arc`).
    pub fn from_shared(v: Arc<Vec<u8>>) -> Self {
        Payload::Shared(v)
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Inline { len, data } => &data[..*len as usize],
            Payload::Shared(v) => v,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Payload::Inline { len, .. } => *len as usize,
            Payload::Shared(v) => v.len(),
        }
    }

    /// True for zero-length payloads.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the bytes ride inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self, Payload::Inline { .. })
    }

    /// Extracts owned bytes. A uniquely-held shared payload (the common
    /// point-to-point case, and the *last* receiver of a fan-out) is
    /// unwrapped without copying.
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            Payload::Inline { len, data } => data[..len as usize].to_vec(),
            Payload::Shared(arc) => Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone()),
        }
    }
}

/// Acknowledgement cell for synchronous-mode sends.
///
/// In-process the sender holds the same cell the receiver flips. For
/// remote senders the receiving transport attaches a *hook* that runs on
/// the first [`AckCell::set`] — the socket backend uses it to send the
/// acknowledgement frame back to the origin rank.
#[derive(Default)]
pub struct AckCell {
    matched: AtomicBool,
    on_set: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl std::fmt::Debug for AckCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AckCell")
            .field("matched", &self.is_set())
            .finish_non_exhaustive()
    }
}

impl AckCell {
    /// Creates an unmatched cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an unmatched cell whose first [`AckCell::set`] additionally
    /// runs `hook` (used by transports to propagate the ack to a remote
    /// sender).
    pub fn with_hook(hook: impl FnOnce() + Send + 'static) -> Self {
        Self {
            matched: AtomicBool::new(false),
            on_set: Mutex::new(Some(Box::new(hook))),
        }
    }

    /// Marks the message as matched by a receiver.
    pub fn set(&self) {
        self.matched.store(true, Ordering::Release);
        let hook = self.on_set.lock().expect("ack hook poisoned").take();
        if let Some(hook) = hook {
            hook();
        }
    }

    /// True once a receiver has matched the message.
    pub fn is_set(&self) -> bool {
        self.matched.load(Ordering::Acquire)
    }
}

/// A message in flight.
#[derive(Debug)]
pub struct Envelope {
    /// Global rank of the sender.
    pub src: usize,
    /// Message tag (user or internal collective space).
    pub tag: Tag,
    /// Context id of the communicator the message travels on.
    pub ctx: u64,
    /// Packed message bytes.
    pub payload: Payload,
    /// Present for synchronous-mode sends; flipped on match.
    pub ack: Option<Arc<AckCell>>,
}

/// Matching key for receives and probes. Sources are *global* ranks; the
/// communicator layer translates before calling into the transport.
#[derive(Debug, Clone, Copy)]
pub struct MatchKey {
    /// Wanted global source rank, or [`crate::ANY_SOURCE`].
    pub src: usize,
    /// Wanted tag, or [`crate::ANY_TAG`] (user space only).
    pub tag: Tag,
    /// Context id of the communicator.
    pub ctx: u64,
}

impl MatchKey {
    fn matches(&self, e: &Envelope) -> bool {
        e.ctx == self.ctx && source_matches(self.src, e.src) && tag_matches(self.tag, e.tag)
    }
}

/// Outcome of a successful match.
#[derive(Debug)]
pub struct Delivered {
    /// Actual global source rank.
    pub src: usize,
    /// Actual tag.
    pub tag: Tag,
    /// The message bytes.
    pub payload: Payload,
}

/// Process-wide wakeup channel for events that are not bound to a single
/// mailbox: ssend acknowledgements and failure/revocation marks. Waiters
/// re-evaluate a readiness predicate on
/// every signal; there is no timeout and no polling.
#[derive(Debug, Default)]
pub struct Hub {
    gate: Mutex<u64>,
    cond: Condvar,
    /// Trace context for wait attribution, bound once at universe start
    /// (hubs outlive/precede the universe, so this cannot be a ctor arg).
    trace: OnceLock<Arc<TraceCtx>>,
}

impl Hub {
    /// Creates an idle hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds the universe's trace context so hub waits are attributed as
    /// blocked time. Idempotent; the first binding wins.
    pub fn bind_trace(&self, trace: Arc<TraceCtx>) {
        let _ = self.trace.set(trace);
    }

    /// Signals every current waiter to re-check its predicate.
    pub fn notify(&self) {
        let mut epoch = self.gate.lock().expect("hub gate poisoned");
        *epoch = epoch.wrapping_add(1);
        self.cond.notify_all();
    }

    /// Blocks until `ready` returns `Some`, re-evaluating whenever the hub
    /// is notified. The predicate runs outside the gate lock.
    pub fn wait_until<T>(&self, ready: impl FnMut() -> Option<T>) -> T {
        self.wait_until_deadline(ready, None)
            .expect("deadline-free wait cannot time out")
    }

    /// Like [`Hub::wait_until`], but gives up at `deadline`: returns `None`
    /// if the predicate still yields nothing once the deadline has passed
    /// (the predicate is always re-checked one final time first, so a wake
    /// racing the deadline is not lost). `deadline: None` waits forever.
    pub fn wait_until_deadline<T>(
        &self,
        mut ready: impl FnMut() -> Option<T>,
        deadline: Option<Instant>,
    ) -> Option<T> {
        {
            // Fast path outside any wait span: a predicate that is already
            // satisfied costs one epoch read and no clock access.
            let epoch = *self.gate.lock().expect("hub gate poisoned");
            let _ = epoch;
            if let Some(v) = ready() {
                return Some(v);
            }
        }
        let _wait = self
            .trace
            .get()
            .map(|t| t.wait_span(crate::trace::thread_rank()));
        loop {
            // Read the epoch before evaluating the predicate: a state change
            // strictly after this read also bumps the epoch, so the wait
            // below cannot sleep through it.
            let epoch = *self.gate.lock().expect("hub gate poisoned");
            if let Some(v) = ready() {
                return Some(v);
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return None;
            }
            let mut gate = self.gate.lock().expect("hub gate poisoned");
            while *gate == epoch {
                match deadline {
                    None => gate = self.cond.wait(gate).expect("hub gate poisoned"),
                    Some(d) => {
                        let Some(left) = d.checked_duration_since(Instant::now()) else {
                            // Deadline hit while parked: fall out to the
                            // final predicate re-check above.
                            break;
                        };
                        gate = self
                            .cond
                            .wait_timeout(gate, left)
                            .expect("hub gate poisoned")
                            .0;
                    }
                }
            }
        }
    }
}

/// One sender's FIFO of envelopes, stamped with mailbox arrival order.
#[derive(Debug, Default)]
struct Lane {
    queue: Mutex<VecDeque<(u64, Envelope)>>,
}

/// Empty polls a blocked receiver makes through the transport's
/// [progress hook](Mailbox::set_progress_poll) before falling back to the
/// condvar. Bounds the busy phase to tens of microseconds; anything longer
/// is wake-driven as before.
const PROGRESS_POLL_PASSES: u32 = 256;

/// A transport-registered opportunistic progress poll (boxed closure with
/// an inert `Debug`, so the mailbox stays derivable).
struct ProgressPoll(Box<dyn Fn() -> bool + Send + Sync>);

impl std::fmt::Debug for ProgressPoll {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressPoll")
    }
}

/// Hook invoked after a collective-tagged envelope lands (and on kicks), so
/// the nonblocking-collective engine can advance this rank's outstanding
/// schedules from whichever thread performed the delivery — shm sender
/// threads, the socket epoll engine's routing, the shm-xproc ring consumer,
/// or a waiting receiver's own progress-poll drain.
struct CollNotify(Box<dyn Fn() + Send + Sync>);

impl std::fmt::Debug for CollNotify {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CollNotify")
    }
}

/// Per-rank incoming message store: one lane per (source → this rank) pair.
#[derive(Debug)]
pub struct Mailbox {
    /// Global rank owning this mailbox (labels its trace events).
    owner: usize,
    lanes: Box<[Lane]>,
    /// Arrival stamps; orders `ANY_SOURCE` matching across lanes.
    next_stamp: AtomicU64,
    /// Deposit/kick epoch, bumped under the mutex to make waits lossless.
    gate: Mutex<u64>,
    cond: Condvar,
    /// Signalled when a take flips an ssend acknowledgement.
    hub: Arc<Hub>,
    /// Lifecycle-event recorder (one relaxed load when disabled).
    trace: Arc<TraceCtx>,
    /// Optional transport progress poll, driven by *waiting* receivers so
    /// a message's delivery need not ride through a helper thread (the
    /// shm-xproc backend drains its inbound rings here). Returns whether
    /// it moved any bytes.
    progress: OnceLock<ProgressPoll>,
    /// Optional nonblocking-collective progress hook; see [`CollNotify`].
    coll_notifier: OnceLock<CollNotify>,
}

impl Mailbox {
    /// Creates the mailbox of global rank `owner` accepting envelopes from
    /// `n_sources` global ranks, sharing `hub` for acknowledgement wakeups
    /// and recording lifecycle events into `trace`.
    pub fn new(owner: usize, n_sources: usize, hub: Arc<Hub>, trace: Arc<TraceCtx>) -> Self {
        Self {
            owner,
            lanes: (0..n_sources).map(|_| Lane::default()).collect(),
            next_stamp: AtomicU64::new(0),
            gate: Mutex::new(0),
            cond: Condvar::new(),
            hub,
            trace,
            progress: OnceLock::new(),
            coll_notifier: OnceLock::new(),
        }
    }

    /// Registers the transport's progress poll (at most once; later calls
    /// are ignored). `poll` must be cheap when there is nothing to do, may
    /// be invoked from any thread that blocks on this mailbox, and may
    /// re-enter [`Mailbox::post`].
    pub fn set_progress_poll(&self, poll: impl Fn() -> bool + Send + Sync + 'static) {
        let _ = self.progress.set(ProgressPoll(Box::new(poll)));
    }

    /// Registers the nonblocking-collective progress hook (at most once;
    /// later calls are ignored). `notify` is invoked *after* the gate bump
    /// of every collective-tagged deposit and after every [`Mailbox::kick`],
    /// from the delivering thread, with no mailbox lock held. It may take
    /// envelopes from this mailbox and re-enter [`Mailbox::post`] on peers.
    pub(crate) fn set_coll_notifier(&self, notify: impl Fn() + Send + Sync + 'static) {
        let _ = self.coll_notifier.set(CollNotify(Box::new(notify)));
    }

    /// Deposits an envelope and wakes any waiting receiver.
    ///
    /// # Panics
    /// Panics if `envelope.src` is not a valid source for this mailbox.
    pub fn post(&self, envelope: Envelope) {
        if self.trace.tracing() {
            self.trace.record(EventKind::Deliver {
                src: envelope.src as u32,
                dst: self.owner as u32,
                tag: envelope.tag,
                ctx: envelope.ctx,
                bytes: envelope.payload.len() as u64,
            });
        }
        if self.trace.metrics().enabled() {
            let rm = self.trace.metrics().rank(self.owner);
            rm.add(crate::metrics::Counter::MsgsDelivered, 1);
            rm.add(
                crate::metrics::Counter::BytesDelivered,
                envelope.payload.len() as u64,
            );
        }
        let stamp = self.next_stamp.fetch_add(1, Ordering::Relaxed);
        let tag = envelope.tag;
        {
            let mut q = self.lanes[envelope.src]
                .queue
                .lock()
                .expect("lane poisoned");
            q.push_back((stamp, envelope));
        }
        // Lane lock is released before the gate is taken: senders never hold
        // both, so a receiver may scan lanes while holding the gate.
        {
            let mut epoch = self.gate.lock().expect("mailbox gate poisoned");
            *epoch = epoch.wrapping_add(1);
            self.cond.notify_all();
        }
        // Collective-tagged traffic additionally drives the i-collective
        // engine from the delivering thread (gate released first: the hook
        // may re-enter this mailbox or post to peers).
        if tag >= COLL_TAG_BASE {
            if let Some(n) = self.coll_notifier.get() {
                (n.0)();
            }
        }
    }

    /// Wakes all waiters so they can re-check failure/revocation state.
    pub fn kick(&self) {
        {
            let mut epoch = self.gate.lock().expect("mailbox gate poisoned");
            *epoch = epoch.wrapping_add(1);
            self.cond.notify_all();
        }
        // Failure/revocation marks must also reach schedules nobody is
        // waiting on (dropped requests adopted by the engine).
        if let Some(n) = self.coll_notifier.get() {
            (n.0)();
        }
    }

    /// Takes the first matching envelope from one specific lane.
    fn try_take_lane(&self, lane: usize, key: MatchKey) -> Option<Delivered> {
        let mut q = self.lanes[lane].queue.lock().expect("lane poisoned");
        let idx = q.iter().position(|(_, e)| key.matches(e))?;
        let (_, e) = q.remove(idx).expect("index valid under lock");
        drop(q);
        if let Some(ack) = &e.ack {
            ack.set();
            self.hub.notify();
        }
        if self.trace.tracing() {
            self.trace.record(EventKind::Take {
                src: e.src as u32,
                dst: self.owner as u32,
                tag: e.tag,
                ctx: e.ctx,
                bytes: e.payload.len() as u64,
            });
        }
        Some(Delivered {
            src: e.src,
            tag: e.tag,
            payload: e.payload,
        })
    }

    /// Lane holding the oldest matching envelope, by arrival stamp.
    ///
    /// Only the owning rank removes envelopes, so the chosen lane's first
    /// match cannot be stolen between the scan and the take.
    fn best_lane(&self, key: MatchKey) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (lane, l) in self.lanes.iter().enumerate() {
            let q = l.queue.lock().expect("lane poisoned");
            if let Some((stamp, _)) = q.iter().find(|(_, e)| key.matches(e)) {
                if best.is_none_or(|(s, _)| *stamp < s) {
                    best = Some((*stamp, lane));
                }
            }
        }
        best.map(|(_, lane)| lane)
    }

    /// Removes and returns the first matching envelope, if any.
    ///
    /// Flips the `ack` cell of synchronous-mode messages.
    pub fn try_take(&self, key: MatchKey) -> Option<Delivered> {
        if key.src != ANY_SOURCE {
            return self.try_take_lane(key.src, key);
        }
        let lane = self.best_lane(key)?;
        self.try_take_lane(lane, key)
    }

    /// Returns (source, tag, byte length) of the first matching envelope
    /// without removing it (`MPI_Iprobe`).
    pub fn try_peek(&self, key: MatchKey) -> Option<(usize, Tag, usize)> {
        let peek_lane = |lane: &Lane| {
            let q = lane.queue.lock().expect("lane poisoned");
            q.iter()
                .find(|(_, e)| key.matches(e))
                .map(|(_, e)| (e.src, e.tag, e.payload.len()))
        };
        if key.src != ANY_SOURCE {
            return peek_lane(&self.lanes[key.src]);
        }
        let lane = self.best_lane(key)?;
        peek_lane(&self.lanes[lane])
    }

    /// Blocks until a matching envelope arrives, re-invoking `interrupt` on
    /// every wakeup to learn about failures or revocation.
    ///
    /// `interrupt` returns `Some(err)` when the wait must be abandoned (the
    /// awaited peer died, or the communicator was revoked). There is no
    /// polling: deposits and [`Mailbox::kick`] are the only wake sources.
    pub fn take_blocking(
        &self,
        key: MatchKey,
        interrupt: &dyn Fn() -> Option<MpiError>,
    ) -> MpiResult<Delivered> {
        self.wait_matching(interrupt, None, |mb| mb.try_take(key))
    }

    /// Like [`Mailbox::take_blocking`], but gives up at `deadline` with
    /// [`MpiError::Timeout`] — the bounded receive that chaos testing and
    /// hung-peer detection rely on. `deadline: None` waits forever.
    pub fn take_blocking_deadline(
        &self,
        key: MatchKey,
        interrupt: &dyn Fn() -> Option<MpiError>,
        deadline: Option<Instant>,
    ) -> MpiResult<Delivered> {
        self.wait_matching(interrupt, deadline, |mb| mb.try_take(key))
    }

    /// Blocks until a matching envelope is available and returns its
    /// (source, tag, length) without consuming it (`MPI_Probe`).
    pub fn peek_blocking(
        &self,
        key: MatchKey,
        interrupt: &dyn Fn() -> Option<MpiError>,
    ) -> MpiResult<(usize, Tag, usize)> {
        self.wait_matching(interrupt, None, |mb| mb.try_peek(key))
    }

    /// Like [`Mailbox::peek_blocking`], but gives up at `deadline` with
    /// [`MpiError::Timeout`].
    pub fn peek_blocking_deadline(
        &self,
        key: MatchKey,
        interrupt: &dyn Fn() -> Option<MpiError>,
        deadline: Option<Instant>,
    ) -> MpiResult<(usize, Tag, usize)> {
        self.wait_matching(interrupt, deadline, |mb| mb.try_peek(key))
    }

    /// Parks on this mailbox until `attempt` yields a value, `interrupt`
    /// reports an error, or `deadline` passes — the generic wait loop behind
    /// the take/peek entry points, exposed to the i-collective engine so an
    /// owner's `wait` can drive its schedules from the same progress-poll +
    /// condvar machinery (`attempt` steps the state machines; every arrival
    /// bumps this mailbox's gate, so no wake-up is lost even when a
    /// delivering thread consumed the envelope itself). `attempt` always
    /// runs with no mailbox lock held: schedule steps post to peers, and on
    /// the shm backend the resulting notifier chain can re-enter
    /// [`Mailbox::post`] on this very mailbox from this very thread.
    pub(crate) fn wait_until<T>(
        &self,
        interrupt: &dyn Fn() -> Option<MpiError>,
        deadline: Option<Instant>,
        attempt: impl FnMut(&Self) -> Option<T>,
    ) -> MpiResult<T> {
        self.wait_matching(interrupt, deadline, attempt)
    }

    fn wait_matching<T>(
        &self,
        interrupt: &dyn Fn() -> Option<MpiError>,
        deadline: Option<Instant>,
        mut attempt: impl FnMut(&Self) -> Option<T>,
    ) -> MpiResult<T> {
        let start = Instant::now();
        if let Some(hit) = attempt(self) {
            return Ok(hit);
        }
        // Everything past the fast path is blocked-waiting; the RAII span
        // attributes it to the owning rank (inert when measuring is off)
        // and covers every exit — match, interrupt, or timeout.
        let _wait = self.trace.wait_span(self.owner as u32);
        // A short burst of cooperative hand-offs before committing to the
        // condvar: when rank-threads outnumber cores the matching send is
        // usually posted by a peer that just needs the CPU, and taking the
        // envelope after a scheduler yield saves the whole futex sleep/wake
        // round-trip. The burst is a small constant (not interval polling —
        // there is no sleep and no timeout); all actual waiting below is
        // condvar-based and wake-driven.
        //
        // With a transport progress poll registered the burst additionally
        // *drains the wire from this thread*: the waiting receiver pulls
        // its own rings instead of paying a helper-thread handoff, which
        // is what keeps the shm-xproc round trip in single-digit
        // microseconds. The poll is bounded; long waits still park below
        // and rely on the transport's own threads for delivery.
        let passes = if self.progress.get().is_some() {
            PROGRESS_POLL_PASSES
        } else {
            4
        };
        for _ in 0..passes {
            let pulled = match self.progress.get() {
                Some(poll) => (poll.0)(),
                None => false,
            };
            if !pulled {
                std::thread::yield_now();
            }
            if let Some(hit) = attempt(self) {
                return Ok(hit);
            }
        }
        // From here on the thread actually parks. The metrics guard charges
        // the parked time to the owner's blocked-wait counter — only the
        // condvar section, and only when this thread hosts the owner, so
        // the live blocked-ratio stays meaningful without a clock read on
        // the burst path (measuring-mode wait spans still cover the burst).
        let _blocked = self.trace.metrics_block_guard(self.owner);
        loop {
            // Snapshot the epoch, then run `attempt` with *no* mailbox lock
            // held. The i-collective attempt steps schedules that post to
            // peers, and on the shm backend a peer's coll notifier runs
            // inline in this very thread and can post straight back to this
            // mailbox — `Mailbox::post` takes the gate, so holding it across
            // `attempt` self-deadlocks (e.g. a 6-rank dissemination cycle).
            // No wake-up is lost: a deposit fills its lane *before* bumping
            // the epoch under the gate, so if `attempt` missed an envelope
            // its bump is still to come and the wait below sees it. The same
            // ordering covers `interrupt`: fault marks are applied before
            // the kick that bumps the epoch.
            let epoch = *self.gate.lock().expect("mailbox gate poisoned");
            if let Some(hit) = attempt(self) {
                return Ok(hit);
            }
            if let Some(err) = interrupt() {
                return Err(err);
            }
            // The deadline is checked after one final match/interrupt pass,
            // so an envelope racing the deadline is still delivered.
            if deadline.is_some_and(|d| Instant::now() >= d) {
                self.trace.metrics_timeout(self.owner);
                return Err(MpiError::Timeout {
                    waited: start.elapsed(),
                });
            }
            let mut gate = self.gate.lock().expect("mailbox gate poisoned");
            while *gate == epoch {
                match deadline {
                    None => gate = self.cond.wait(gate).expect("mailbox gate poisoned"),
                    Some(d) => {
                        let Some(left) = d.checked_duration_since(Instant::now()) else {
                            break;
                        };
                        gate = self
                            .cond
                            .wait_timeout(gate, left)
                            .expect("mailbox gate poisoned")
                            .0;
                    }
                }
            }
        }
    }

    /// Number of queued envelopes (diagnostics / tests only).
    pub fn len(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.queue.lock().expect("lane poisoned").len())
            .sum()
    }

    /// True when no envelope is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A control event that every rank of the job must learn about. These are
/// exactly the events the shared-memory backend communicates through
/// genuinely shared state (the failure/finish/revocation sets) and that a
/// cross-process backend must therefore put on the wire. Non-blocking
/// barriers need no control event: they ride the data plane as
/// collective-tagged envelopes like every other i-collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMsg {
    /// `rank` has failed (crashed, panicked, or injected via ULFM).
    Failed {
        /// Global rank of the failed process.
        rank: usize,
    },
    /// `rank`'s SPMD closure returned; it will never communicate again.
    Finished {
        /// Global rank of the finished process.
        rank: usize,
    },
    /// The communicator context `ctx` has been revoked (ULFM).
    Revoked {
        /// Context id of the revoked communicator.
        ctx: u64,
    },
    /// A late joiner was admitted: membership epoch `epoch` now holds the
    /// ranks in the `members` bitmask (bit `r` set ⇔ global rank `r` is a
    /// member), with `joiner` the freshly assigned rank. The bitmask keeps
    /// this enum `Copy`; it caps elastic universes at 64 global ranks,
    /// which the config layer enforces.
    Grow {
        /// The membership epoch this admission creates (monotonic, from 1).
        epoch: u64,
        /// The admitted rank (fresh — never a reused slot).
        joiner: usize,
        /// Member bitmask at this epoch, joiner's bit included.
        members: u64,
    },
}

/// Expands a member bitmask (bit `r` ⇔ global rank `r`) into the sorted
/// rank list communicators are derived from.
pub fn members_from_mask(mask: u64) -> Vec<usize> {
    (0..64).filter(|r| mask & (1 << r) != 0).collect()
}

/// Packs a member list into the bitmask [`ControlMsg::Grow`] carries.
///
/// # Panics
/// Panics if any rank is ≥ 64 (the config layer rejects such universes).
pub fn members_to_mask(members: &[usize]) -> u64 {
    members.iter().fold(0u64, |m, &r| {
        assert!(r < 64, "elastic universes are capped at 64 global ranks");
        m | (1 << r)
    })
}

/// Where incoming *remote* control events are applied. Implemented by the
/// universe state: transports deliver control frames here without ever
/// re-broadcasting them (only the originating rank broadcasts).
pub trait ControlSink: Send + Sync {
    /// Applies one control event to the local fault/barrier view.
    fn apply(&self, msg: ControlMsg);
}

/// How close another rank is, as a hint for algorithm selection (e.g. a
/// topology-aware collective wants intra-host trees below an inter-host
/// tree). Ordered: `Process < Host < Remote` in increasing distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Locality {
    /// Same address space (a thread of this process, or this rank itself).
    Process,
    /// Same host, different process — reachable through shared memory.
    Host,
    /// Different host (or no cheaper path than the network plane).
    Remote,
}

impl Locality {
    /// True if the rank shares this host (in-process or shared memory) —
    /// the grouping predicate of the hierarchical collectives.
    pub fn same_host(self) -> bool {
        self <= Locality::Host
    }
}

/// A message-passing backend: the seam between the rank-facing substrate
/// (communicators, p2p, collectives, requests) and the machinery that
/// moves bytes between ranks.
///
/// The receive path is shared by all backends — incoming envelopes land in
/// a per-rank [`Mailbox`] — so the trait only abstracts the *send* path,
/// control-event propagation, and teardown.
pub trait Transport: Send + Sync {
    /// Human-readable backend name (`"shm"`, `"socket"`), as selected by
    /// `KAMPING_TRANSPORT`.
    fn name(&self) -> &'static str;

    /// Deposits `envelope` in global rank `dest`'s mailbox, wherever that
    /// rank lives. Must preserve per-(source → dest) FIFO order.
    fn post(&self, dest: usize, envelope: Envelope);

    /// The mailbox of a rank hosted by *this* process.
    ///
    /// # Panics
    /// May panic if `rank` is not local (see [`Transport::is_local`]).
    fn mailbox(&self, rank: usize) -> &Mailbox;

    /// True if `rank` runs inside this process (always, for shm; only for
    /// the one own rank, for socket).
    fn is_local(&self, rank: usize) -> bool;

    /// Distance class of `rank` from the calling process. The default
    /// derives it from [`Transport::is_local`]: in-process or remote, with
    /// no host tier — backends with a same-host fast path (shm-xproc
    /// rings) override this.
    fn locality(&self, rank: usize) -> Locality {
        if self.is_local(rank) {
            Locality::Process
        } else {
            Locality::Remote
        }
    }

    /// Propagates a locally-originated control event to every *remote*
    /// rank. The caller has already applied it to the local state, so the
    /// shared-memory backend does nothing here.
    fn control(&self, msg: ControlMsg);

    /// Wakes every blocked receiver of every local mailbox so it can
    /// re-check failure/revocation state.
    fn kick_local(&self);

    /// Blocks until any envelope this transport is still *holding* (rather
    /// than having handed to the delivery substrate) is on its way. Called
    /// before a rank announces `Finished`, so that the announcement cannot
    /// overtake data the rank still owes its peers. A no-op for backends
    /// that never hold traffic back; the fault-injecting chaos wrapper
    /// drains its delay queue and holdback slots here.
    fn quiesce(&self) {}

    /// Flushes all outgoing traffic and tears the backend down. Called
    /// once per local rank after its SPMD closure returned and its
    /// `Finished` mark has been issued.
    fn shutdown(&self);
}

/// The shared-memory backend: every rank is a thread of this process and
/// every mailbox is directly addressable. This is the transport the seed
/// system hard-wired; it remains the default (`KAMPING_TRANSPORT=shm`).
#[derive(Debug)]
pub struct ShmTransport {
    mailboxes: Vec<Mailbox>,
}

impl ShmTransport {
    /// Creates mailboxes for `size` in-process ranks sharing `hub`,
    /// recording lifecycle events into `trace`.
    pub fn new(size: usize, hub: &Arc<Hub>, trace: &Arc<TraceCtx>) -> Self {
        Self {
            mailboxes: (0..size)
                .map(|owner| Mailbox::new(owner, size, Arc::clone(hub), Arc::clone(trace)))
                .collect(),
        }
    }
}

impl Transport for ShmTransport {
    fn name(&self) -> &'static str {
        "shm"
    }

    fn post(&self, dest: usize, envelope: Envelope) {
        self.mailboxes[dest].post(envelope);
    }

    fn mailbox(&self, rank: usize) -> &Mailbox {
        &self.mailboxes[rank]
    }

    fn is_local(&self, _rank: usize) -> bool {
        true
    }

    fn control(&self, _msg: ControlMsg) {
        // All ranks share one UniverseState: the caller's local application
        // of the event *is* the global application.
    }

    fn kick_local(&self) {
        for mb in &self.mailboxes {
            mb.kick();
        }
    }

    fn shutdown(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::{ANY_SOURCE, ANY_TAG};

    fn mailbox(n: usize) -> Mailbox {
        Mailbox::new(0, n, Arc::new(Hub::new()), TraceCtx::disabled(n))
    }

    fn env(src: usize, tag: Tag, ctx: u64, payload: &[u8]) -> Envelope {
        Envelope {
            src,
            tag,
            ctx,
            payload: Payload::from_slice(payload),
            ack: None,
        }
    }

    #[test]
    fn locality_orders_by_distance_and_defaults_from_is_local() {
        assert!(Locality::Process < Locality::Host);
        assert!(Locality::Host < Locality::Remote);
        let trace = TraceCtx::disabled(2);
        let shm = ShmTransport::new(2, &Arc::new(Hub::new()), &trace);
        // Every shm rank is a thread of this process.
        assert_eq!(shm.locality(0), Locality::Process);
        assert_eq!(shm.locality(1), Locality::Process);
    }

    #[test]
    fn fifo_per_channel() {
        let mb = mailbox(1);
        mb.post(env(0, 1, 0, b"first"));
        mb.post(env(0, 1, 0, b"second"));
        let key = MatchKey {
            src: 0,
            tag: 1,
            ctx: 0,
        };
        assert_eq!(mb.try_take(key).unwrap().payload.as_slice(), b"first");
        assert_eq!(mb.try_take(key).unwrap().payload.as_slice(), b"second");
        assert!(mb.try_take(key).is_none());
    }

    #[test]
    fn matching_respects_ctx_tag_src() {
        let mb = mailbox(2);
        mb.post(env(0, 1, 7, b"a"));
        assert!(mb
            .try_take(MatchKey {
                src: 0,
                tag: 1,
                ctx: 8
            })
            .is_none());
        assert!(mb
            .try_take(MatchKey {
                src: 1,
                tag: 1,
                ctx: 7
            })
            .is_none());
        assert!(mb
            .try_take(MatchKey {
                src: 0,
                tag: 2,
                ctx: 7
            })
            .is_none());
        assert!(mb
            .try_take(MatchKey {
                src: 0,
                tag: 1,
                ctx: 7
            })
            .is_some());
    }

    #[test]
    fn wildcards_match_and_report_actual_origin() {
        let mb = mailbox(4);
        mb.post(env(3, 9, 0, b"x"));
        let d = mb
            .try_take(MatchKey {
                src: ANY_SOURCE,
                tag: ANY_TAG,
                ctx: 0,
            })
            .unwrap();
        assert_eq!((d.src, d.tag), (3, 9));
    }

    #[test]
    fn any_source_takes_in_arrival_order_across_lanes() {
        let mb = mailbox(3);
        mb.post(env(2, 5, 0, b"second"));
        mb.post(env(1, 5, 0, b"third"));
        // Lane order (0, 1, 2) must not override arrival order (2 first).
        let key = MatchKey {
            src: ANY_SOURCE,
            tag: 5,
            ctx: 0,
        };
        assert_eq!(mb.try_take(key).unwrap().src, 2);
        assert_eq!(mb.try_take(key).unwrap().src, 1);
    }

    #[test]
    fn peek_does_not_consume_or_ack() {
        let mb = mailbox(1);
        let ack = Arc::new(AckCell::default());
        mb.post(Envelope {
            src: 0,
            tag: 5,
            ctx: 0,
            payload: Payload::from_slice(&[1, 2, 3]),
            ack: Some(ack.clone()),
        });
        let key = MatchKey {
            src: 0,
            tag: 5,
            ctx: 0,
        };
        assert_eq!(mb.try_peek(key), Some((0, 5, 3)));
        assert!(!ack.is_set());
        assert_eq!(mb.len(), 1);
        mb.try_take(key).unwrap();
        assert!(ack.is_set());
    }

    #[test]
    fn blocking_take_interrupts() {
        let mb = mailbox(4);
        let key = MatchKey {
            src: 2,
            tag: 0,
            ctx: 0,
        };
        let err = mb
            .take_blocking(key, &|| Some(MpiError::ProcFailed { rank: 2 }))
            .unwrap_err();
        assert_eq!(err, MpiError::ProcFailed { rank: 2 });
    }

    #[test]
    fn wait_attempt_may_post_back_into_the_mailbox() {
        // Regression: the wait loop used to run `attempt` while holding
        // the gate mutex. The i-collective attempt steps schedules whose
        // posts can circle back into the waiter's own mailbox on the shm
        // backend (p = 6 dissemination: the waiter's relay reaches rank
        // +2, whose inline notifier relays to +6 ≡ the waiter) — and
        // `Mailbox::post` takes the gate, so the thread deadlocked on
        // itself. `attempt` must run with no mailbox lock held; the epoch
        // snapshot keeps the wait lossless regardless.
        let mb = mailbox(1);
        let calls = std::cell::Cell::new(0u32);
        let deadline = Instant::now() + std::time::Duration::from_millis(50);
        let out: MpiResult<()> = mb.wait_until(&|| None, Some(deadline), |mb| {
            // More posts than the fast-path + burst attempts, so at least
            // one runs where the old loop held the gate.
            if calls.get() < 64 {
                calls.set(calls.get() + 1);
                mb.post(env(0, 9, 0, b"relay"));
            }
            None
        });
        assert!(matches!(out, Err(MpiError::Timeout { .. })));
        assert!(calls.get() >= 6, "attempt ran past the unlocked burst");
    }

    /// Deterministic rendezvous used instead of `thread::sleep`: the
    /// blocked side raises `flag` from inside its interrupt/predicate
    /// closure (which the wait loop runs before every condvar sleep) and
    /// signals `gate`; the driving side blocks on `gate` until then.
    /// Either the waiter then sleeps and is woken, or the wake event was
    /// already applied and the waiter's next re-check sees it — both
    /// orders pass without any timing assumption.
    fn await_flag(gate: &Hub, flag: &AtomicBool) {
        gate.wait_until(|| flag.load(Ordering::Acquire).then_some(()));
    }

    #[test]
    fn blocking_take_wakes_on_post() {
        let mb = Arc::new(mailbox(1));
        let gate = Arc::new(Hub::new());
        let entered = Arc::new(AtomicBool::new(false));
        let (mb2, gate2, entered2) = (mb.clone(), gate.clone(), entered.clone());
        let handle = std::thread::spawn(move || {
            let key = MatchKey {
                src: 0,
                tag: 0,
                ctx: 0,
            };
            mb2.take_blocking(key, &|| {
                entered2.store(true, Ordering::Release);
                gate2.notify();
                None
            })
            .unwrap()
        });
        // Nothing is posted yet, so the take cannot have matched: it is
        // inside the wait loop once the interrupt closure has run.
        await_flag(&gate, &entered);
        mb.post(env(0, 0, 0, b"wake"));
        assert_eq!(handle.join().unwrap().payload.as_slice(), b"wake");
    }

    #[test]
    fn blocking_peek_wakes_on_post_and_preserves() {
        let mb = Arc::new(mailbox(1));
        let gate = Arc::new(Hub::new());
        let entered = Arc::new(AtomicBool::new(false));
        let (mb2, gate2, entered2) = (mb.clone(), gate.clone(), entered.clone());
        let handle = std::thread::spawn(move || {
            let key = MatchKey {
                src: 0,
                tag: 3,
                ctx: 0,
            };
            mb2.peek_blocking(key, &|| {
                entered2.store(true, Ordering::Release);
                gate2.notify();
                None
            })
            .unwrap()
        });
        await_flag(&gate, &entered);
        mb.post(env(0, 3, 0, b"stay"));
        assert_eq!(handle.join().unwrap(), (0, 3, 4));
        assert_eq!(mb.len(), 1, "probe must not consume");
    }

    #[test]
    fn kick_wakes_blocked_receiver_for_interrupt() {
        let mb = Arc::new(mailbox(1));
        let gate = Arc::new(Hub::new());
        let entered = Arc::new(AtomicBool::new(false));
        let interrupted = Arc::new(AtomicBool::new(false));
        let (mb2, gate2, entered2, flag) = (
            mb.clone(),
            gate.clone(),
            entered.clone(),
            interrupted.clone(),
        );
        let handle = std::thread::spawn(move || {
            let key = MatchKey {
                src: 0,
                tag: 0,
                ctx: 0,
            };
            mb2.take_blocking(key, &|| {
                entered2.store(true, Ordering::Release);
                gate2.notify();
                flag.load(Ordering::Acquire).then_some(MpiError::Revoked)
            })
        });
        await_flag(&gate, &entered);
        interrupted.store(true, Ordering::Release);
        // The kick's epoch bump is ordered with the receiver's gate lock,
        // so the receiver either re-runs the interrupt or wakes to run it.
        mb.kick();
        assert_eq!(handle.join().unwrap().unwrap_err(), MpiError::Revoked);
    }

    #[test]
    fn inline_payloads_stay_off_the_heap() {
        let small = Payload::from_slice(&[7u8; INLINE_CAP]);
        assert!(small.is_inline());
        assert_eq!(small.len(), INLINE_CAP);
        let big = Payload::from_slice(&[7u8; INLINE_CAP + 1]);
        assert!(!big.is_inline());
        assert_eq!(big.as_slice(), &[7u8; INLINE_CAP + 1]);
    }

    #[test]
    fn from_vec_inlines_small_buffers() {
        let p = Payload::from_vec(vec![1, 2, 3]);
        assert!(p.is_inline());
        assert_eq!(p.into_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_payload_aliases_one_allocation() {
        let arc = Arc::new(vec![9u8; 100]);
        let a = Payload::from_shared(arc.clone());
        let b = a.clone();
        assert_eq!(Arc::strong_count(&arc), 3);
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
        drop(a);
        drop(b);
        // Unique holder unwraps without copying.
        let p = Payload::from_shared(arc);
        let back = p.into_vec();
        assert_eq!(back.len(), 100);
    }

    #[test]
    fn hub_wait_sees_signal_raced_with_predicate() {
        let hub = Arc::new(Hub::new());
        // A *second* hub carries the handshake so the signal under test is
        // the only notification `hub` ever sees.
        let gate = Arc::new(Hub::new());
        let entered = Arc::new(AtomicBool::new(false));
        let flag = Arc::new(AtomicBool::new(false));
        let (h2, gate2, entered2, f2) = (hub.clone(), gate.clone(), entered.clone(), flag.clone());
        let waiter = std::thread::spawn(move || {
            h2.wait_until(|| {
                entered2.store(true, Ordering::Release);
                gate2.notify();
                f2.load(Ordering::Acquire).then_some(42)
            })
        });
        await_flag(&gate, &entered);
        flag.store(true, Ordering::Release);
        hub.notify();
        assert_eq!(waiter.join().unwrap(), 42);
    }

    #[test]
    fn ack_hook_runs_once_on_set() {
        let fired = Arc::new(AtomicBool::new(false));
        let f = fired.clone();
        let ack = AckCell::with_hook(move || f.store(true, Ordering::Release));
        assert!(!ack.is_set());
        ack.set();
        assert!(ack.is_set());
        assert!(fired.load(Ordering::Acquire));
        // A second set keeps the cell matched and must not re-run the hook.
        ack.set();
        assert!(ack.is_set());
    }

    #[test]
    fn shm_transport_posts_and_kicks() {
        let hub = Arc::new(Hub::new());
        let t = ShmTransport::new(2, &hub, &TraceCtx::disabled(2));
        t.post(1, env(0, 4, 0, b"via-trait"));
        assert!(t.is_local(1));
        assert_eq!(t.name(), "shm");
        let got = t
            .mailbox(1)
            .try_take(MatchKey {
                src: 0,
                tag: 4,
                ctx: 0,
            })
            .unwrap();
        assert_eq!(got.payload.as_slice(), b"via-trait");
        t.control(ControlMsg::Failed { rank: 0 });
        t.kick_local();
        t.shutdown();
    }
}
