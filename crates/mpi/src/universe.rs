//! The universe: process-global state and the SPMD entry point.
//!
//! [`Universe::run`] plays the role of `mpirun -n p`. On the default
//! shared-memory backend it spawns `p` rank threads, hands each a world
//! communicator, joins them, and returns their results ordered by rank.
//! Under a [`kampirun`](crate::net) launch (`KAMPING_TRANSPORT=socket`
//! plus the rendezvous environment), the same call instead *joins* a
//! multi-process job as one rank: the closure runs once for the rank this
//! process hosts and the returned vector holds that single result.
//!
//! A rank that panics is treated like a crashed process: it is marked
//! failed so that peers blocked on it observe [`MpiError::ProcFailed`]
//! instead of deadlocking, and (on the thread backend) the panic is
//! re-raised on the spawning thread after all ranks have finished.
//!
//! All fault and barrier bookkeeping lives here as a *per-process view*:
//! on the shm backend the view is genuinely shared by all ranks, on the
//! socket backend each process keeps its own copy synchronized through
//! [`ControlMsg`] frames applied via the [`ControlSink`] impl below.

use std::collections::HashSet;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::chaos::{ChaosSpec, ChaosTransport};
use crate::comm::RawComm;
use crate::error::{MpiError, MpiResult};
use crate::icoll::Registry;
use crate::measurements::TreeAggregate;
use crate::profile::{ProfileSnapshot, RankCounters};
use crate::trace::{TraceConfig, TraceCtx, TraceEvent};
use crate::transport::{
    members_from_mask, ControlMsg, ControlSink, Hub, Mailbox, ShmTransport, Transport,
};

/// One membership-growth admission: at `epoch`, `joiners` were added and
/// the full membership became `members` (global ranks, ascending — local
/// ranks of the grown communicator renumber densely by position).
#[derive(Debug, Clone)]
pub(crate) struct GrowEvent {
    /// Membership epoch this event established (strictly increasing).
    pub epoch: u64,
    /// Global ranks admitted by this event.
    pub joiners: Vec<usize>,
    /// Complete membership after the event.
    pub members: Vec<usize>,
}

/// Shared state of one MPI job, as seen by one process.
pub(crate) struct UniverseState {
    /// Number of rank slots in the universe. On a fixed-size job this is
    /// the world size; on an elastic job it is the *capacity* — mailboxes,
    /// counters and transport lanes are sized for it up front, and ranks
    /// beyond the launch membership stay dormant until admitted.
    pub size: usize,
    /// Global ranks alive at launch, ascending — the group of the world
    /// communicator this process hands to its SPMD closure(s). Normally
    /// `0..size`; smaller on elastic jobs; the admission-time membership
    /// on a late-joining socket process.
    pub launch_members: Vec<usize>,
    /// Current membership (latest epoch's view).
    pub members: RwLock<Vec<usize>>,
    /// Latest membership epoch (0 = launch; each admission bumps it).
    pub membership_epoch: AtomicU64,
    /// Every grow event seen, ascending by epoch — kept whole so that a
    /// survivor lagging several admissions behind can replay them one
    /// typed epoch transition at a time.
    pub grow_log: RwLock<Vec<GrowEvent>>,
    /// Ranks parked awaiting admission ([`Universe::run_elastic`], shm).
    pub parked: Mutex<Vec<usize>>,
    /// Admitted-but-unfinished rank count (shm elastic termination): when
    /// it reaches zero, `closing` is raised and parked ranks give up.
    pub active_unfinished: AtomicUsize,
    /// Raised when the job is over; never-admitted parked ranks exit.
    pub closing: AtomicBool,
    /// The backend moving envelopes and control events between ranks.
    pub transport: Arc<dyn Transport>,
    /// One profiling counter block per global rank (remote ranks' blocks
    /// stay zero on multi-process backends; each process reports its own).
    pub counters: Vec<RankCounters>,
    /// Wakeup channel for events not tied to one mailbox: ssend acks,
    /// failure/revocation marks.
    pub hub: Arc<Hub>,
    /// Bumped on every failure/finish/revocation mark. Blocking waits cache
    /// their last verdict and re-scan the sets below only when this moves.
    pub fault_epoch: AtomicU64,
    /// Global ranks that have failed (ULFM).
    pub failed: RwLock<HashSet<usize>>,
    /// The first failure this process observed — what the flight recorder
    /// names in its crash report (local observation order; the post-mortem
    /// collector takes the consensus across processes).
    pub first_failed: OnceLock<usize>,
    /// Global ranks whose SPMD closure has returned. A finished rank will
    /// never communicate again, so peers blocked on it must be interrupted
    /// (in real MPI, completing `MPI_Finalize` with matching operations
    /// still pending is erroneous; we surface it as a process failure).
    pub finished: RwLock<HashSet<usize>>,
    /// Context ids of revoked communicators (ULFM).
    pub revoked: RwLock<HashSet<u64>>,
    /// Outstanding nonblocking-collective schedules of locally-hosted
    /// ranks, advanced by whichever thread delivers a collective-tagged
    /// envelope (see [`crate::icoll`]).
    pub icoll: Registry,
    /// Per-universe tracing/measuring context (disabled by default; one
    /// relaxed atomic load per hook when off).
    pub trace: Arc<TraceCtx>,
}

impl UniverseState {
    /// In-process universe over the shared-memory backend, with an optional
    /// chaos wrapper around it. The chaos layer's control sink (where an
    /// injected rank death is applied) is bound to the returned state.
    /// `initial` of the `size` rank slots are live at launch (they differ
    /// only on elastic universes; fixed jobs pass `initial == size`).
    fn new_shm(
        size: usize,
        initial: usize,
        chaos: Option<ChaosSpec>,
        trace: Arc<TraceCtx>,
    ) -> Arc<Self> {
        let hub = Arc::new(Hub::new());
        hub.bind_trace(Arc::clone(&trace));
        let shm: Arc<dyn Transport> = Arc::new(ShmTransport::new(size, &hub, &trace));
        let (transport, chaos_layer) = match chaos {
            None => (shm, None),
            Some(spec) => {
                let layer = Arc::new(ChaosTransport::new(shm, size, spec));
                layer.bind_trace(Arc::clone(&trace));
                (Arc::clone(&layer) as Arc<dyn Transport>, Some(layer))
            }
        };
        let state = Arc::new(Self::with_transport(
            size,
            (0..initial).collect(),
            transport,
            hub,
            trace,
        ));
        if let Some(layer) = chaos_layer {
            let sink: Arc<dyn ControlSink> = Arc::clone(&state) as Arc<dyn ControlSink>;
            layer.bind_sink(Arc::downgrade(&sink));
        }
        state
    }

    /// Universe over an externally-constructed backend (the socket path).
    /// `size` is the slot capacity; `launch_members` the globals alive from
    /// this process's point of view at construction.
    pub(crate) fn with_transport(
        size: usize,
        launch_members: Vec<usize>,
        transport: Arc<dyn Transport>,
        hub: Arc<Hub>,
        trace: Arc<TraceCtx>,
    ) -> Self {
        hub.bind_trace(Arc::clone(&trace));
        Self {
            size,
            members: RwLock::new(launch_members.clone()),
            launch_members,
            membership_epoch: AtomicU64::new(0),
            grow_log: RwLock::new(Vec::new()),
            parked: Mutex::new(Vec::new()),
            active_unfinished: AtomicUsize::new(0),
            closing: AtomicBool::new(false),
            transport,
            counters: (0..size).map(|_| RankCounters::default()).collect(),
            hub,
            fault_epoch: AtomicU64::new(0),
            failed: RwLock::new(HashSet::new()),
            first_failed: OnceLock::new(),
            finished: RwLock::new(HashSet::new()),
            revoked: RwLock::new(HashSet::new()),
            icoll: Registry::new(),
            trace,
        }
    }

    /// The mailbox of a locally-hosted rank.
    pub fn mailbox(&self, rank: usize) -> &Mailbox {
        self.transport.mailbox(rank)
    }

    /// Wakes everything that might be waiting on failure state: blocked
    /// receivers in every local mailbox (including parked collective
    /// waiters) and hub waiters (ssend waits).
    fn broadcast_fault(&self) {
        self.fault_epoch.fetch_add(1, Ordering::Release);
        self.transport.kick_local();
        self.hub.notify();
    }

    /// Applies a failure mark to the local view (no re-broadcast).
    fn apply_failed(&self, rank: usize) {
        let _ = self.first_failed.set(rank);
        self.failed
            .write()
            .expect("failed set poisoned")
            .insert(rank);
        self.broadcast_fault();
    }

    /// Applies a finish mark to the local view (no re-broadcast).
    fn apply_finished(&self, rank: usize) {
        self.finished
            .write()
            .expect("finished set poisoned")
            .insert(rank);
        self.broadcast_fault();
    }

    /// Applies a revocation mark to the local view (no re-broadcast).
    fn apply_revoked(&self, ctx: u64) {
        self.revoked
            .write()
            .expect("revoked set poisoned")
            .insert(ctx);
        self.broadcast_fault();
    }

    /// Marks `rank` failed, wakes every blocked local receiver, and tells
    /// all remote ranks.
    pub fn mark_failed(&self, rank: usize) {
        self.apply_failed(rank);
        self.transport.control(ControlMsg::Failed { rank });
    }

    /// True if `rank` is marked failed.
    pub fn is_failed(&self, rank: usize) -> bool {
        self.failed
            .read()
            .expect("failed set poisoned")
            .contains(&rank)
    }

    /// Marks `rank` as finished (its SPMD closure returned), wakes every
    /// blocked local receiver, and tells all remote ranks.
    pub fn mark_finished(&self, rank: usize) {
        self.apply_finished(rank);
        self.transport.control(ControlMsg::Finished { rank });
    }

    /// True if `rank` will never communicate again (failed or finished).
    pub fn is_gone(&self, rank: usize) -> bool {
        self.is_failed(rank)
            || self
                .finished
                .read()
                .expect("finished set poisoned")
                .contains(&rank)
    }

    /// Applies a grow event to the local view (no re-broadcast).
    /// Idempotent by epoch: the same admission may reach a process both
    /// through the rendezvous monitor and a control frame.
    pub(crate) fn apply_grow(&self, epoch: u64, joiners: Vec<usize>, members: Vec<usize>) {
        {
            let mut log = self.grow_log.write().expect("grow log poisoned");
            if log.iter().any(|e| e.epoch == epoch) {
                return;
            }
            log.push(GrowEvent {
                epoch,
                joiners,
                members: members.clone(),
            });
            log.sort_by_key(|e| e.epoch);
            // Only the newest epoch defines the current membership; a
            // stale event replayed late must not roll it back.
            if epoch >= self.membership_epoch.load(Ordering::Acquire) {
                *self.members.write().expect("members poisoned") = members;
            }
            self.membership_epoch.fetch_max(epoch, Ordering::AcqRel);
        }
        self.broadcast_fault();
    }

    /// Applies a grow event locally and tells all remote ranks. (On the
    /// socket backend the rendezvous monitor broadcasts a richer frame
    /// carrying the joiner's address instead; this path serves the shm
    /// backend, where `control` is a local no-op beyond chaos bookkeeping.)
    pub(crate) fn mark_grow(&self, epoch: u64, joiners: Vec<usize>, members: Vec<usize>) {
        let mask = crate::transport::members_to_mask(&members);
        let joiner = joiners.first().copied().unwrap_or(0);
        self.apply_grow(epoch, joiners, members);
        self.transport.control(ControlMsg::Grow {
            epoch,
            joiner,
            members: mask,
        });
    }

    /// The membership of the latest epoch this process has observed.
    pub fn current_members(&self) -> Vec<usize> {
        self.members.read().expect("members poisoned").clone()
    }

    /// The grow event of the lowest epoch strictly above `epoch`, if any.
    pub(crate) fn next_grow_after(&self, epoch: u64) -> Option<GrowEvent> {
        self.grow_log
            .read()
            .expect("grow log poisoned")
            .iter()
            .find(|e| e.epoch > epoch)
            .cloned()
    }

    /// Marks the communicator context revoked on all ranks.
    pub fn mark_revoked(&self, ctx: u64) {
        self.apply_revoked(ctx);
        self.transport.control(ControlMsg::Revoked { ctx });
    }

    /// True if the context has been revoked.
    pub fn is_revoked(&self, ctx: u64) -> bool {
        self.revoked
            .read()
            .expect("revoked set poisoned")
            .contains(&ctx)
    }

    /// Freezes the profiling counters.
    pub fn profile(&self) -> ProfileSnapshot {
        ProfileSnapshot::capture(&self.counters)
    }
}

impl ControlSink for UniverseState {
    fn apply(&self, msg: ControlMsg) {
        match msg {
            ControlMsg::Failed { rank } => self.apply_failed(rank),
            ControlMsg::Finished { rank } => self.apply_finished(rank),
            ControlMsg::Revoked { ctx } => self.apply_revoked(ctx),
            ControlMsg::Grow {
                epoch,
                joiner,
                members,
            } => self.apply_grow(epoch, vec![joiner], members_from_mask(members)),
        }
    }
}

/// Handle to an MPI job.
///
/// The common entry point is [`Universe::run`]; [`Universe::run_profiled`]
/// additionally returns the profiling counters accumulated during the run.
pub struct Universe;

impl Universe {
    /// Runs `f` as an SPMD job and returns the per-rank results.
    ///
    /// Backend selection: when the `KAMPING_TRANSPORT=socket` environment
    /// (as set up by the [`kampirun`](crate::net) launcher) is present,
    /// this process joins a multi-process job as the rank named by
    /// `KAMPING_RANK` — `size` is ignored in favour of the launcher's
    /// `--ranks`, the closure runs once, and the returned vector holds
    /// this rank's single result. Otherwise `f` runs on `size` rank
    /// threads over shared memory and the results come back ordered by
    /// rank.
    ///
    /// `f` receives the world communicator of its rank. Panics of rank
    /// threads are re-raised here after all ranks have terminated (the
    /// first panicking rank wins); surviving ranks observe the panicking
    /// rank as *failed* rather than hanging.
    ///
    /// # Panics
    /// Panics if the configuration is unusable (`size == 0`, malformed
    /// `KAMPING_TRANSPORT`/`KAMPING_CHAOS`, broken rendezvous environment)
    /// or if any rank panics. Use [`Universe::try_run`] to receive
    /// configuration problems as [`MpiError::Config`] instead.
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(RawComm) -> R + Sync,
    {
        Self::try_run(size, f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Universe::run`], but configuration problems come back as
    /// [`MpiError::Config`] instead of panicking — the entry point for
    /// launchers and tests that must observe bad environments as values.
    pub fn try_run<R, F>(size: usize, f: F) -> MpiResult<Vec<R>>
    where
        R: Send,
        F: Fn(RawComm) -> R + Sync,
    {
        Self::try_run_profiled(size, f).map(|(values, _)| values)
    }

    /// Like [`Universe::run`], also returning the final profile snapshot.
    /// On a multi-process backend the snapshot covers this rank only.
    ///
    /// # Panics
    /// As [`Universe::run`].
    pub fn run_profiled<R, F>(size: usize, f: F) -> (Vec<R>, ProfileSnapshot)
    where
        R: Send,
        F: Fn(RawComm) -> R + Sync,
    {
        Self::try_run_profiled(size, f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The non-panicking entry point behind every `run_*` wrapper: selects
    /// the backend from the environment, applies any `KAMPING_CHAOS`
    /// schedule, and surfaces configuration problems as
    /// [`MpiError::Config`].
    pub fn try_run_profiled<R, F>(size: usize, f: F) -> MpiResult<(Vec<R>, ProfileSnapshot)>
    where
        R: Send,
        F: Fn(RawComm) -> R + Sync,
    {
        Self::run_dispatch(size, TraceConfig::from_env()?, f)
            .map(|(values, profile, _)| (values, profile))
    }

    /// Backend dispatch shared by every entry point: selects shm vs socket
    /// from the environment and threads the trace configuration through,
    /// returning the universe's trace context alongside the results.
    fn run_dispatch<R, F>(
        size: usize,
        trace_cfg: TraceConfig,
        f: F,
    ) -> MpiResult<(Vec<R>, ProfileSnapshot, Arc<TraceCtx>)>
    where
        R: Send,
        F: Fn(RawComm) -> R + Sync,
    {
        let chaos = ChaosSpec::from_env()?;
        if let Some(cfg) = crate::net::SocketConfig::from_env()? {
            return crate::net::run_socket(&cfg, chaos, trace_cfg, f);
        }
        Self::run_threads_profiled(size, chaos, trace_cfg, f)
    }

    /// Runs `f` with tracing and measuring force-enabled (on top of any
    /// `KAMPING_TRACE` settings) and returns a [`TraceReport`]: the raw
    /// lifecycle events, a Perfetto-loadable Chrome trace document, and an
    /// aggregated per-op timer tree where every rank contributes its
    /// call counts and wait/compute latency split.
    ///
    /// Works on both backends: the op-tree aggregation runs *inside* the
    /// job (using the library's own collectives on a reserved tag range),
    /// so on the socket backend each process reports the cross-rank
    /// aggregate of its own universe.
    pub fn run_traced<R, F>(size: usize, f: F) -> MpiResult<(Vec<R>, TraceReport)>
    where
        R: Send,
        F: Fn(RawComm) -> R + Sync,
    {
        let mut cfg = TraceConfig::from_env()?;
        cfg.tracing = true;
        cfg.measuring = true;
        let agg: Mutex<Option<TreeAggregate>> = Mutex::new(None);
        let wrapped = |comm: RawComm| {
            let r = f(comm.clone());
            // Post-run aggregation on a reserved collective sequence range
            // so its tags cannot collide with anything `f` left in flight.
            comm.coll_seq.set(crate::measurements::AGG_SEQ_BASE);
            if let Ok(tree) = crate::measurements::aggregate_op_tree(&comm) {
                *agg.lock().expect("op-tree slot poisoned") = Some(tree);
            }
            r
        };
        let (values, _, trace) = Self::run_dispatch(size, cfg, wrapped)?;
        let events = trace.take_events();
        let chrome_json = crate::trace::chrome_trace_json(&events);
        Ok((
            values,
            TraceReport {
                op_tree: agg.into_inner().expect("op-tree slot poisoned"),
                dropped_events: trace.dropped_events(),
                events,
                chrome_json,
            },
        ))
    }

    /// Runs `f` on `size` shared-memory ranks under the given fault
    /// schedule — the programmatic form of `KAMPING_CHAOS`. Deterministic:
    /// the same `spec` (seed included) injects the same faults on every
    /// run, so a test can assert the exact failure its ranks observe.
    pub fn run_with_chaos<R, F>(size: usize, spec: ChaosSpec, f: F) -> MpiResult<Vec<R>>
    where
        R: Send,
        F: Fn(RawComm) -> R + Sync,
    {
        Self::run_threads_profiled(size, Some(spec), TraceConfig::from_env()?, f)
            .map(|(values, _, _)| values)
    }

    /// Runs `f` as an *elastic* SPMD job: `initial` ranks start immediately
    /// and up to `capacity - initial` more can be admitted mid-run. On the
    /// shm backend the extra ranks are parked threads that a member admits
    /// with [`RawComm::spawn_merge`]; under a `kampirun --elastic` launch
    /// the extra ranks are late-started processes admitted by the
    /// rendezvous monitor, and each admitted process runs `f` once on an
    /// already-grown communicator. Existing members observe an admission
    /// as a typed epoch transition through [`RawComm::grow`].
    ///
    /// Returns `(global_rank, result)` pairs in rank order for every rank
    /// whose closure ran — parked ranks that were never admitted return
    /// nothing. Membership is capped at 64 global ranks (the control-plane
    /// frames carry membership as a bitmask).
    pub fn run_elastic<R, F>(initial: usize, capacity: usize, f: F) -> MpiResult<Vec<(usize, R)>>
    where
        R: Send,
        F: Fn(RawComm) -> R + Sync,
    {
        if crate::net::SocketConfig::from_env()?.is_some() {
            // One rank per process under kampirun; joiners are separate
            // processes, so the initial/capacity split is the launcher's
            // business (`--ranks` / `--elastic`), not ours.
            let wrapped = |comm: RawComm| (comm.my_global_rank(), f(comm));
            return Self::try_run(initial.max(1), wrapped);
        }
        Self::run_elastic_threads(initial, capacity, f)
    }

    /// The shm elastic path: `capacity` rank threads, of which the last
    /// `capacity - initial` park until admitted or until the job closes.
    fn run_elastic_threads<R, F>(
        initial: usize,
        capacity: usize,
        f: F,
    ) -> MpiResult<Vec<(usize, R)>>
    where
        R: Send,
        F: Fn(RawComm) -> R + Sync,
    {
        if initial == 0 {
            return Err(MpiError::Config(
                "an elastic universe needs at least one initial rank".into(),
            ));
        }
        if capacity < initial {
            return Err(MpiError::Config(
                "elastic capacity must be at least the initial rank count".into(),
            ));
        }
        if capacity > 64 {
            return Err(MpiError::Config(
                "elastic universes are capped at 64 global ranks".into(),
            ));
        }
        let trace_cfg = TraceConfig::from_env()?;
        let chaos = ChaosSpec::from_env()?;
        let trace = Arc::new(TraceCtx::new(capacity, &trace_cfg));
        let state = UniverseState::new_shm(capacity, initial, chaos, Arc::clone(&trace));
        *state.parked.lock().expect("parked pool poisoned") = (initial..capacity).collect();
        state.active_unfinished.store(initial, Ordering::Release);
        let plane = crate::metrics::MetricsPlane::start_local(&state, &trace_cfg);
        let f = &f;

        let results: Vec<(usize, std::thread::Result<R>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..capacity)
                .map(|rank| {
                    let state = Arc::clone(&state);
                    scope.spawn(move || {
                        crate::trace::set_thread_rank(rank);
                        let comm = if rank < initial {
                            RawComm::world(state.clone(), rank)
                        } else {
                            // Park until a member admits this rank via
                            // spawn_merge, or until the job closes with
                            // this rank never admitted.
                            let admitted = state.hub.wait_until(|| {
                                let hit = state
                                    .grow_log
                                    .read()
                                    .expect("grow log poisoned")
                                    .iter()
                                    .find(|e| e.joiners.contains(&rank))
                                    .map(|e| (e.epoch, e.members.clone()));
                                match hit {
                                    Some(ev) => Some(Some(ev)),
                                    None if state.closing.load(Ordering::Acquire) => Some(None),
                                    None => None,
                                }
                            });
                            let (epoch, members) = admitted?;
                            let comm = RawComm::from_grow(state.clone(), epoch, members, rank);
                            // Admission barrier: rendezvous with the
                            // survivors' grow() on the new context. A
                            // failure racing the admission surfaces again
                            // on the closure's own first operation.
                            let _ = comm.barrier();
                            comm
                        };
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| f(comm)));
                        if outcome.is_err() {
                            state.mark_failed(rank);
                        }
                        state.transport.quiesce();
                        state.mark_finished(rank);
                        if state.active_unfinished.fetch_sub(1, Ordering::AcqRel) == 1 {
                            state.closing.store(true, Ordering::Release);
                            state.hub.notify();
                        }
                        Some(outcome)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .filter_map(|(rank, h)| {
                    h.join()
                        .expect("rank thread itself never panics")
                        .map(|r| (rank, r))
                })
                .collect()
        });

        if let Some(plane) = plane {
            plane.stop();
        }
        state.transport.shutdown();

        let mut values = Vec::with_capacity(results.len());
        let mut first_panic = None;
        for (rank, r) in results {
            match r {
                Ok(v) => values.push((rank, v)),
                Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
        Ok(values)
    }

    /// The shared-memory path: spawn `size` rank threads and join them.
    fn run_threads_profiled<R, F>(
        size: usize,
        chaos: Option<ChaosSpec>,
        trace_cfg: TraceConfig,
        f: F,
    ) -> MpiResult<(Vec<R>, ProfileSnapshot, Arc<TraceCtx>)>
    where
        R: Send,
        F: Fn(RawComm) -> R + Sync,
    {
        if size == 0 {
            return Err(MpiError::Config(
                "a universe needs at least one rank".into(),
            ));
        }
        let trace = Arc::new(TraceCtx::new(size, &trace_cfg));
        let state = UniverseState::new_shm(size, size, chaos, Arc::clone(&trace));
        let plane = crate::metrics::MetricsPlane::start_local(&state, &trace_cfg);
        let f = &f;

        let results: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let state = Arc::clone(&state);
                    scope.spawn(move || {
                        crate::trace::set_thread_rank(rank);
                        let comm = RawComm::world(state.clone(), rank);
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| f(comm)));
                        if outcome.is_err() {
                            // Treat a panicking rank as a crashed process so
                            // that peers error out instead of deadlocking.
                            state.mark_failed(rank);
                        }
                        // Drain any fault-injection queues first: Finished
                        // must not overtake data this rank still owes.
                        state.transport.quiesce();
                        state.mark_finished(rank);
                        outcome
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread itself never panics"))
                .collect()
        });

        // Emit the final (possibly partial) metrics interval while the
        // transport is still up, then join the snapshot thread.
        if let Some(plane) = plane {
            plane.stop();
        }

        // All ranks have finished: flush and tear down the transport. For
        // plain shm this is a no-op; a chaos wrapper joins its delivery
        // thread and releases any held-back envelopes here.
        state.transport.shutdown();

        let panicked: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_err())
            .map(|(r, _)| r)
            .collect();

        // Flight recorder + trace export share one `take_events` drain.
        let crashed = !panicked.is_empty()
            || !state.failed.read().expect("failed set poisoned").is_empty()
            || (0..size).any(|r| {
                trace
                    .metrics()
                    .rank(r)
                    .get(crate::metrics::Counter::Timeouts)
                    > 0
            });
        let want_trace = trace.tracing() && trace_cfg.out.is_some();
        let want_crash = trace_cfg.crash_dir.is_some() && crashed;
        if want_trace || want_crash {
            let events = trace.take_events();
            if let (Some(dir), true) = (&trace_cfg.crash_dir, want_crash) {
                let tail = crate::trace::render_event_tail(
                    &events,
                    crate::metrics::CRASH_EVENT_TAIL,
                    trace.epoch_unix_ns(),
                );
                let survivors: Vec<usize> = (0..size).filter(|r| !state.is_failed(*r)).collect();
                crate::metrics::dump_crash_reports(
                    &state,
                    dir,
                    &panicked,
                    &tail,
                    trace.dropped_events(),
                    &survivors,
                );
            }
            // KAMPING_TRACE named a destination: all ranks share this
            // process, so one self-contained trace covers the whole job.
            if want_trace {
                if let Some(out) = &trace_cfg.out {
                    if let Err(e) =
                        crate::trace::write_process_trace_events(&trace, &events, out, None)
                    {
                        eprintln!("kamping: failed to write trace to {}: {e}", out.display());
                    }
                }
            }
        }

        let profile = state.profile();
        let mut values = Vec::with_capacity(size);
        let mut first_panic = None;
        for r in results {
            match r {
                Ok(v) => values.push(v),
                Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
        Ok((values, profile, trace))
    }
}

/// Everything [`Universe::run_traced`] captured about a job.
#[derive(Debug)]
pub struct TraceReport {
    /// All recorded lifecycle events, sorted by timestamp.
    pub events: Vec<TraceEvent>,
    /// Aggregated per-op timer tree (calls / wait / compute per rank), or
    /// `None` if aggregation failed (e.g. a rank died mid-job).
    pub op_tree: Option<TreeAggregate>,
    /// The events as a Perfetto-loadable Chrome trace JSON document.
    pub chrome_json: String,
    /// Events lost to ring-buffer overflow (0 unless the job was huge).
    pub dropped_events: u64,
}

/// Interrupt predicate builder shared by blocking operations: returns an
/// error when `src` has failed or `ctx` has been revoked.
///
/// The closure caches its verdict per fault epoch: the failure/finish/revoke
/// sets are only re-read after a mark has bumped
/// [`UniverseState::fault_epoch`], so the hot path of a blocking receive
/// costs one atomic load per wakeup instead of two read-lock acquisitions.
pub(crate) fn wait_interrupt(
    state: &UniverseState,
    src: usize,
    ctx: u64,
) -> impl Fn() -> Option<MpiError> + '_ {
    let cached: std::cell::Cell<Option<u64>> = std::cell::Cell::new(None);
    move || {
        let epoch = state.fault_epoch.load(Ordering::Acquire);
        if cached.get() == Some(epoch) {
            // No fault event since the last scan came up clean.
            return None;
        }
        if state.is_revoked(ctx) {
            return Some(MpiError::Revoked);
        }
        if src != crate::tag::ANY_SOURCE && state.is_gone(src) {
            return Some(MpiError::ProcFailed { rank: src });
        }
        cached.set(Some(epoch));
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_rank_order() {
        let out = Universe::run(5, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn world_has_expected_shape() {
        Universe::run(3, |comm| {
            assert_eq!(comm.size(), 3);
            assert!(comm.rank() < 3);
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Universe::run(0, |_| ());
    }

    #[test]
    fn panicking_rank_propagates_and_unblocks_peers() {
        let caught = std::panic::catch_unwind(|| {
            Universe::run(2, |comm| {
                if comm.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                // Rank 0 waits for a message that will never come; it must
                // observe the failure instead of hanging.
                let err = comm.recv(1, 0).unwrap_err();
                assert!(err.is_failure());
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn profiled_run_reports_counters() {
        let (_, profile) = Universe::run_profiled(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, b"hello").unwrap();
            } else {
                comm.recv(0, 0).unwrap();
            }
        });
        assert_eq!(profile.total_calls(crate::Op::Send), 1);
        assert_eq!(profile.total_calls(crate::Op::Recv), 1);
        assert_eq!(profile.total_messages(), 1);
        assert_eq!(profile.total_bytes(), 5);
    }

    #[test]
    fn fault_epoch_moves_on_marks() {
        let state = UniverseState::new_shm(2, 2, None, TraceCtx::disabled(2));
        let e0 = state.fault_epoch.load(Ordering::Acquire);
        state.mark_failed(1);
        let e1 = state.fault_epoch.load(Ordering::Acquire);
        assert!(e1 > e0);
        state.mark_revoked(42);
        assert!(state.fault_epoch.load(Ordering::Acquire) > e1);
    }

    #[test]
    fn wait_interrupt_caches_clean_verdict_per_epoch() {
        let state = UniverseState::new_shm(2, 2, None, TraceCtx::disabled(2));
        let check = wait_interrupt(&state, 1, 0);
        assert!(check().is_none());
        assert!(check().is_none());
        state.mark_failed(1);
        assert_eq!(check(), Some(MpiError::ProcFailed { rank: 1 }));
    }

    #[test]
    fn control_sink_applies_remote_events() {
        let state = UniverseState::new_shm(3, 3, None, TraceCtx::disabled(3));
        state.apply(ControlMsg::Failed { rank: 2 });
        assert!(state.is_failed(2));
        state.apply(ControlMsg::Finished { rank: 1 });
        assert!(state.is_gone(1));
        state.apply(ControlMsg::Revoked { ctx: 9 });
        assert!(state.is_revoked(9));
    }
}
