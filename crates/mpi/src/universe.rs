//! The universe: process-global state and the SPMD entry point.
//!
//! [`Universe::run`] plays the role of `mpirun -n p`: it spawns `p` rank
//! threads, hands each a world communicator, joins them, and returns their
//! results ordered by rank. A rank that panics is treated like a crashed
//! process: it is marked failed so that peers blocked on it observe
//! [`MpiError::ProcFailed`] instead of deadlocking, and the panic is
//! re-raised on the spawning thread after all ranks have finished.

use std::collections::{HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::comm::RawComm;
use crate::error::MpiError;
use crate::ibarrier::BarrierCell;
use crate::profile::{ProfileSnapshot, RankCounters};
use crate::transport::{Hub, Mailbox};

/// Shared state of one simulated MPI job.
pub(crate) struct UniverseState {
    /// Number of ranks in the world.
    pub size: usize,
    /// One mailbox per global rank.
    pub mailboxes: Vec<Mailbox>,
    /// One profiling counter block per global rank.
    pub counters: Vec<RankCounters>,
    /// Wakeup channel for events not tied to one mailbox: ssend acks,
    /// non-blocking-barrier arrivals, failure/revocation marks.
    pub hub: Arc<Hub>,
    /// Bumped on every failure/finish/revocation mark. Blocking waits cache
    /// their last verdict and re-scan the sets below only when this moves.
    pub fault_epoch: AtomicU64,
    /// Global ranks that have failed (ULFM).
    pub failed: RwLock<HashSet<usize>>,
    /// Global ranks whose SPMD closure has returned. A finished rank will
    /// never communicate again, so peers blocked on it must be interrupted
    /// (in real MPI, completing `MPI_Finalize` with matching operations
    /// still pending is erroneous; we surface it as a process failure).
    pub finished: RwLock<HashSet<usize>>,
    /// Context ids of revoked communicators (ULFM).
    pub revoked: RwLock<HashSet<u64>>,
    /// Registry of in-flight non-blocking barriers, keyed by
    /// (context id, collective sequence number).
    pub barriers: Mutex<HashMap<(u64, u32), Arc<BarrierCell>>>,
}

impl UniverseState {
    fn new(size: usize) -> Self {
        let hub = Arc::new(Hub::new());
        Self {
            size,
            mailboxes: (0..size)
                .map(|_| Mailbox::new(size, Arc::clone(&hub)))
                .collect(),
            counters: (0..size).map(|_| RankCounters::default()).collect(),
            hub,
            fault_epoch: AtomicU64::new(0),
            failed: RwLock::new(HashSet::new()),
            finished: RwLock::new(HashSet::new()),
            revoked: RwLock::new(HashSet::new()),
            barriers: Mutex::new(HashMap::new()),
        }
    }

    /// Wakes everything that might be waiting on failure state: blocked
    /// receivers in every mailbox and hub waiters (ssend/barrier waits).
    fn broadcast_fault(&self) {
        self.fault_epoch.fetch_add(1, Ordering::Release);
        for mb in &self.mailboxes {
            mb.kick();
        }
        self.hub.notify();
    }

    /// Marks `rank` failed and wakes every blocked receiver so it can
    /// observe the failure.
    pub fn mark_failed(&self, rank: usize) {
        self.failed
            .write()
            .expect("failed set poisoned")
            .insert(rank);
        self.broadcast_fault();
    }

    /// True if `rank` is marked failed.
    pub fn is_failed(&self, rank: usize) -> bool {
        self.failed
            .read()
            .expect("failed set poisoned")
            .contains(&rank)
    }

    /// Marks `rank` as finished (its SPMD closure returned) and wakes every
    /// blocked receiver.
    pub fn mark_finished(&self, rank: usize) {
        self.finished
            .write()
            .expect("finished set poisoned")
            .insert(rank);
        self.broadcast_fault();
    }

    /// True if `rank` will never communicate again (failed or finished).
    pub fn is_gone(&self, rank: usize) -> bool {
        self.is_failed(rank)
            || self
                .finished
                .read()
                .expect("finished set poisoned")
                .contains(&rank)
    }

    /// Marks the communicator context revoked and wakes all receivers.
    pub fn mark_revoked(&self, ctx: u64) {
        self.revoked
            .write()
            .expect("revoked set poisoned")
            .insert(ctx);
        self.broadcast_fault();
    }

    /// True if the context has been revoked.
    pub fn is_revoked(&self, ctx: u64) -> bool {
        self.revoked
            .read()
            .expect("revoked set poisoned")
            .contains(&ctx)
    }

    /// Freezes the profiling counters.
    pub fn profile(&self) -> ProfileSnapshot {
        ProfileSnapshot::capture(&self.counters)
    }
}

/// Handle to a simulated MPI job.
///
/// The common entry point is [`Universe::run`]; [`Universe::run_profiled`]
/// additionally returns the profiling counters accumulated during the run.
pub struct Universe;

impl Universe {
    /// Runs `f` on `size` rank threads and returns the per-rank results,
    /// ordered by rank.
    ///
    /// `f` receives the world communicator of its rank. Panics of rank
    /// threads are re-raised here after all ranks have terminated (the
    /// first panicking rank wins); surviving ranks observe the panicking
    /// rank as *failed* rather than hanging.
    ///
    /// # Panics
    /// Panics if `size == 0` or if any rank panics.
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(RawComm) -> R + Sync,
    {
        Self::run_profiled(size, f).0
    }

    /// Like [`Universe::run`], also returning the final profile snapshot.
    pub fn run_profiled<R, F>(size: usize, f: F) -> (Vec<R>, ProfileSnapshot)
    where
        R: Send,
        F: Fn(RawComm) -> R + Sync,
    {
        assert!(size > 0, "a universe needs at least one rank");
        let state = Arc::new(UniverseState::new(size));
        let f = &f;

        let results: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let state = Arc::clone(&state);
                    scope.spawn(move || {
                        let comm = RawComm::world(state.clone(), rank);
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| f(comm)));
                        if outcome.is_err() {
                            // Treat a panicking rank as a crashed process so
                            // that peers error out instead of deadlocking.
                            state.mark_failed(rank);
                        }
                        state.mark_finished(rank);
                        outcome
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread itself never panics"))
                .collect()
        });

        let profile = state.profile();
        let mut values = Vec::with_capacity(size);
        let mut first_panic = None;
        for r in results {
            match r {
                Ok(v) => values.push(v),
                Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
        (values, profile)
    }
}

/// Interrupt predicate builder shared by blocking operations: returns an
/// error when `src` has failed or `ctx` has been revoked.
///
/// The closure caches its verdict per fault epoch: the failure/finish/revoke
/// sets are only re-read after a mark has bumped
/// [`UniverseState::fault_epoch`], so the hot path of a blocking receive
/// costs one atomic load per wakeup instead of two read-lock acquisitions.
pub(crate) fn wait_interrupt(
    state: &UniverseState,
    src: usize,
    ctx: u64,
) -> impl Fn() -> Option<MpiError> + '_ {
    let cached: std::cell::Cell<Option<u64>> = std::cell::Cell::new(None);
    move || {
        let epoch = state.fault_epoch.load(Ordering::Acquire);
        if cached.get() == Some(epoch) {
            // No fault event since the last scan came up clean.
            return None;
        }
        if state.is_revoked(ctx) {
            return Some(MpiError::Revoked);
        }
        if src != crate::tag::ANY_SOURCE && state.is_gone(src) {
            return Some(MpiError::ProcFailed { rank: src });
        }
        cached.set(Some(epoch));
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_rank_order() {
        let out = Universe::run(5, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn world_has_expected_shape() {
        Universe::run(3, |comm| {
            assert_eq!(comm.size(), 3);
            assert!(comm.rank() < 3);
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Universe::run(0, |_| ());
    }

    #[test]
    fn panicking_rank_propagates_and_unblocks_peers() {
        let caught = std::panic::catch_unwind(|| {
            Universe::run(2, |comm| {
                if comm.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                // Rank 0 waits for a message that will never come; it must
                // observe the failure instead of hanging.
                let err = comm.recv(1, 0).unwrap_err();
                assert!(err.is_failure());
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn profiled_run_reports_counters() {
        let (_, profile) = Universe::run_profiled(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, b"hello").unwrap();
            } else {
                comm.recv(0, 0).unwrap();
            }
        });
        assert_eq!(profile.total_calls(crate::Op::Send), 1);
        assert_eq!(profile.total_calls(crate::Op::Recv), 1);
        assert_eq!(profile.total_messages(), 1);
        assert_eq!(profile.total_bytes(), 5);
    }

    #[test]
    fn fault_epoch_moves_on_marks() {
        let state = UniverseState::new(2);
        let e0 = state.fault_epoch.load(Ordering::Acquire);
        state.mark_failed(1);
        let e1 = state.fault_epoch.load(Ordering::Acquire);
        assert!(e1 > e0);
        state.mark_revoked(42);
        assert!(state.fault_epoch.load(Ordering::Acquire) > e1);
    }

    #[test]
    fn wait_interrupt_caches_clean_verdict_per_epoch() {
        let state = UniverseState::new(2);
        let check = wait_interrupt(&state, 1, 0);
        assert!(check().is_none());
        assert!(check().is_none());
        state.mark_failed(1);
        assert_eq!(check(), Some(MpiError::ProcFailed { rank: 1 }));
    }
}
