//! End-to-end chaos and deadline tests on the shared-memory backend.
//!
//! The unit suite in `src/chaos.rs` pins the *schedule* (which message is
//! dropped under which seed); these tests pin the *observable contract* of
//! this PR: a hung peer surfaces as [`MpiError::Timeout`] and a killed peer
//! as [`MpiError::ProcFailed`] — typed errors within a caller-chosen
//! deadline, never a wedged test suite and never a panic.

use std::time::Duration;

use kamping_mpi::{ChaosSpec, MpiError, Universe};

/// A peer that stays alive but never sends: the receiver's bounded wait
/// must report `Timeout` (not hang, not `ProcFailed`), and the release
/// message afterwards must still go through — timing out is not fatal.
#[test]
fn hung_peer_recv_times_out_then_recovers() {
    Universe::run(2, |comm| {
        if comm.rank() == 0 {
            let err = comm
                .recv_timeout(1, 7, Duration::from_millis(200))
                .unwrap_err();
            assert!(err.is_timeout(), "expected Timeout, got {err:?}");
            if let MpiError::Timeout { waited } = err {
                assert!(waited >= Duration::from_millis(200));
            }
            comm.send(1, 0, b"release").unwrap();
        } else {
            // Silent on tag 7, parked on tag 0 — alive the whole time.
            let (payload, _) = comm.recv(0, 0).unwrap();
            assert_eq!(payload, b"release");
        }
    });
}

/// `wait_timeout` on a request must leave it pending: after the deadline
/// fires, the same request can be waited again and complete normally.
#[test]
fn timed_out_request_stays_retryable() {
    Universe::run(2, |comm| {
        if comm.rank() == 0 {
            let mut req = comm.issend(1, 5, b"payload".to_vec()).unwrap();
            // Rank 1 won't match tag 5 until it gets the go message.
            let err = req.wait_timeout(Duration::from_millis(150)).unwrap_err();
            assert!(err.is_timeout(), "expected Timeout, got {err:?}");
            comm.send(1, 0, b"go").unwrap();
            req.wait().unwrap();
        } else {
            comm.recv(0, 0).unwrap();
            let (payload, _) = comm.recv(0, 5).unwrap();
            assert_eq!(payload, b"payload");
        }
    });
}

/// A severed link loses traffic *without* any failure mark: the only
/// detector is the deadline. The reverse direction keeps working.
#[test]
fn severed_link_surfaces_as_timeout() {
    Universe::run_with_chaos(2, ChaosSpec::parse("11:sever=0->1@0").unwrap(), |comm| {
        if comm.rank() == 0 {
            comm.send(1, 3, b"vanishes").unwrap();
            // Reverse direction is unaffected by the directional cut.
            let (payload, _) = comm.recv(1, 4).unwrap();
            assert_eq!(payload, b"alive");
        } else {
            let err = comm
                .recv_timeout(0, 3, Duration::from_millis(300))
                .unwrap_err();
            assert!(err.is_timeout(), "expected Timeout, got {err:?}");
            comm.send(0, 4, b"alive").unwrap();
        }
    })
    .unwrap();
}

/// An injected rank death must surface as `ProcFailed` on receivers and
/// break collectives for the survivors — within the deadline, typed.
#[test]
fn chaos_kill_surfaces_as_proc_failed() {
    Universe::run_with_chaos(3, ChaosSpec::parse("7:kill=2@1").unwrap(), |comm| {
        if comm.rank() == 2 {
            // First send passes the kill budget; the second triggers the
            // death and is discarded. No simulate_failure, no panic — the
            // chaos layer is the only thing marking this rank dead.
            comm.send(0, 9, b"first").unwrap();
            comm.send(0, 9, b"second").unwrap();
            return;
        }
        if comm.rank() == 0 {
            let (payload, _) = comm.recv(2, 9).unwrap();
            assert_eq!(payload, b"first");
            let err = comm
                .recv_timeout(2, 9, Duration::from_secs(10))
                .unwrap_err();
            assert!(err.is_failure(), "expected ProcFailed, got {err:?}");
            comm.send(1, 5, b"dead").unwrap();
        } else {
            // The barrier now rides the data plane, so a dissemination
            // envelope posted *to* rank 2 would count against its kill
            // budget and race the accounting above — hold rank 1 back
            // until rank 0 has observed the death.
            comm.recv(0, 5).unwrap();
        }
        // The dead member never enters the barrier; survivors must get a
        // typed failure instead of wedging.
        let mut req = comm.ibarrier().unwrap();
        let err = req.wait_timeout(Duration::from_secs(10)).unwrap_err();
        assert!(err.is_failure(), "expected a failure, got {err:?}");
    })
    .unwrap();
}

fn byte_sum(a: &mut [u8], b: &[u8]) {
    let x = u64::from_le_bytes(a.try_into().unwrap());
    let y = u64::from_le_bytes(b.try_into().unwrap());
    a.copy_from_slice(&(x + y).to_le_bytes());
}

fn sum_op() -> kamping_mpi::OwnedByteOp {
    std::sync::Arc::new(byte_sum)
}

/// A severed link starves an i-collective the same way it starves a
/// receive: `wait_timeout` must report `Timeout` (the request stays
/// retryable), never a hang — while the rank with intact inbound traffic
/// completes normally.
#[test]
fn severed_link_times_out_icollectives() {
    Universe::run_with_chaos(2, ChaosSpec::parse("11:sever=0->1@0").unwrap(), |comm| {
        let counts = vec![1usize; 2];
        let displs = vec![0usize, 1];
        if comm.rank() == 1 {
            // The reduce partial flows 1→0 (alive); the bcast 0→1 is cut.
            let mut req = comm
                .iallreduce(5u64.to_le_bytes().to_vec(), sum_op(), 8)
                .unwrap();
            let err = req.wait_timeout(Duration::from_millis(300)).unwrap_err();
            assert!(err.is_timeout(), "expected Timeout, got {err:?}");
            let mut req = comm
                .ialltoallv(vec![7, 8], &counts, &displs, &counts, &displs)
                .unwrap();
            let err = req.wait_timeout(Duration::from_millis(300)).unwrap_err();
            assert!(err.is_timeout(), "expected Timeout, got {err:?}");
            // Keep rank 0 alive until both timeouts have been observed:
            // were it to finish first, the fault scan would turn rank 1's
            // starvation into ProcFailed instead of Timeout. 1→0 is the
            // intact direction.
            comm.send(0, 99, b"done").unwrap();
        } else {
            let mut req = comm
                .iallreduce(2u64.to_le_bytes().to_vec(), sum_op(), 8)
                .unwrap();
            assert_eq!(req.wait().unwrap(), 7u64.to_le_bytes());
            let mut req = comm
                .ialltoallv(vec![3, 4], &counts, &displs, &counts, &displs)
                .unwrap();
            assert_eq!(req.wait().unwrap(), vec![3, 7]);
            comm.recv(1, 99).unwrap();
        }
    })
    .unwrap();
}

/// A chaos-killed rank mid-`ialltoallv` surfaces as a typed failure on
/// every survivor: each one directly awaits the dead rank's block.
#[test]
fn chaos_kill_fails_ialltoallv_on_survivors() {
    Universe::run_with_chaos(3, ChaosSpec::parse("13:kill=2@1").unwrap(), |comm| {
        let p = comm.size();
        let counts = vec![1usize; p];
        let displs: Vec<usize> = (0..p).collect();
        if comm.rank() == 2 {
            // The first send passes the kill budget; the collective's own
            // sends trigger the death, so rank 2 dies mid-schedule.
            comm.send(0, 9, b"first").unwrap();
            let _ = comm.ialltoallv(vec![9; p], &counts, &displs, &counts, &displs);
            return;
        }
        // Collective posts *to* rank 2 count against its kill budget, so
        // neither survivor may issue before rank 2's own "first" send has
        // passed it — sequence both behind that receive.
        if comm.rank() == 0 {
            let (payload, _) = comm.recv(2, 9).unwrap();
            assert_eq!(payload, b"first");
            comm.send(1, 5, b"go").unwrap();
        } else {
            comm.recv(0, 5).unwrap();
        }
        let mut req = comm
            .ialltoallv(
                vec![comm.rank() as u8; p],
                &counts,
                &displs,
                &counts,
                &displs,
            )
            .unwrap();
        let err = req.wait_timeout(Duration::from_secs(10)).unwrap_err();
        assert!(err.is_failure(), "expected a failure, got {err:?}");
    })
    .unwrap();
}

/// The kill seed against `iallreduce`: the survivor directly awaits the
/// dead rank's reduce partial and must get `ProcFailed`.
#[test]
fn chaos_kill_fails_iallreduce_on_survivor() {
    Universe::run_with_chaos(2, ChaosSpec::parse("13:kill=1@1").unwrap(), |comm| {
        if comm.rank() == 1 {
            comm.send(0, 9, b"first").unwrap();
            // The reduce partial send (1→0) triggers the death.
            let _ = comm.iallreduce(4u64.to_le_bytes().to_vec(), sum_op(), 8);
            return;
        }
        let (payload, _) = comm.recv(1, 9).unwrap();
        assert_eq!(payload, b"first");
        let mut req = comm
            .iallreduce(1u64.to_le_bytes().to_vec(), sum_op(), 8)
            .unwrap();
        let err = req.wait_timeout(Duration::from_secs(10)).unwrap_err();
        assert!(err.is_failure(), "expected a failure, got {err:?}");
    })
    .unwrap();
}

/// A *transitively* stalled survivor gets the typed failure too. In the
/// binomial allreduce on 3 ranks, rank 1's schedule only ever waits on
/// rank 0 (its bcast parent) — never on rank 2 — while rank 0 itself
/// awaits the dead rank's reduce partial. The fault scan's waited-on
/// check alone cannot see that, so without the any-member-failed doom
/// check rank 1 would fall through to a generic `Timeout`; it must get
/// `ProcFailed` for the rank that actually died.
#[test]
fn chaos_kill_fails_transitively_stalled_icollective() {
    Universe::run_with_chaos(3, ChaosSpec::parse("13:kill=2@1").unwrap(), |comm| {
        if comm.rank() == 2 {
            comm.send(0, 9, b"first").unwrap();
            // The reduce partial send (2→0) triggers the death, so the
            // partial never reaches rank 0 and the whole tree stalls.
            let _ = comm.iallreduce(4u64.to_le_bytes().to_vec(), sum_op(), 8);
            return;
        }
        // Sequence survivors behind rank 2's budget-passing send (see
        // `chaos_kill_fails_ialltoallv_on_survivors` for why).
        if comm.rank() == 0 {
            let (payload, _) = comm.recv(2, 9).unwrap();
            assert_eq!(payload, b"first");
            comm.send(1, 5, b"go").unwrap();
        } else {
            comm.recv(0, 5).unwrap();
        }
        let mut req = comm
            .iallreduce(1u64.to_le_bytes().to_vec(), sum_op(), 8)
            .unwrap();
        let err = req.wait_timeout(Duration::from_secs(10)).unwrap_err();
        assert!(
            matches!(err, MpiError::ProcFailed { rank: 2 }),
            "expected ProcFailed {{ rank: 2 }}, got {err:?}"
        );
    })
    .unwrap();
}

/// Delay chaos is semantics-preserving, so i-collectives must complete
/// with the exact blocking-twin results — several outstanding at once,
/// waited in reverse issue order.
#[test]
fn delay_chaos_preserves_icollective_results() {
    Universe::run_with_chaos(3, ChaosSpec::parse("5:delay=20@2").unwrap(), |comm| {
        let p = comm.size() as u64;
        let me = comm.rank() as u64;
        let mut r1 = comm
            .iallreduce(me.to_le_bytes().to_vec(), sum_op(), 8)
            .unwrap();
        let mut r2 = comm.iallgather(vec![me as u8]).unwrap();
        let mut r3 = comm.ibarrier().unwrap();
        r3.wait().unwrap();
        assert_eq!(r2.wait().unwrap(), (0..p as u8).collect::<Vec<_>>());
        assert_eq!(r1.wait().unwrap(), (p * (p - 1) / 2).to_le_bytes());
    })
    .unwrap();
}

/// Counts how many of rank 1's 40 messages survive a drop=50 schedule,
/// through the full Universe/RawComm stack.
fn deliveries_under_drop(seed: u64) -> usize {
    let spec = ChaosSpec::parse(&format!("{seed}:drop=50")).unwrap();
    let counts = Universe::run_with_chaos(2, spec, |comm| {
        if comm.rank() == 1 {
            for i in 0..40u8 {
                comm.send(0, 7, &[i]).unwrap();
            }
            // Nothing is exempt from drop chaos any more (the nonblocking
            // barrier rides the data plane like every collective), so fence
            // with redundant sentinels: each copy's fate is seed-determined,
            // and 12 copies at drop=50 leave at least one survivor for the
            // seeds this test uses. Channel FIFO means a delivered sentinel
            // proves every surviving data message precedes it.
            for _ in 0..12 {
                comm.send(0, 8, b"fence").unwrap();
            }
            0
        } else {
            comm.recv_timeout(1, 8, Duration::from_secs(10)).unwrap();
            let mut n = 0;
            while comm.recv_timeout(1, 7, Duration::from_millis(100)).is_ok() {
                n += 1;
            }
            n
        }
    })
    .unwrap();
    counts[0]
}

/// The seeded schedule is reproducible end-to-end: the same seed delivers
/// the same number of messages on every run, and a different seed is free
/// to differ.
#[test]
fn same_seed_same_deliveries_end_to_end() {
    let a = deliveries_under_drop(2024);
    let b = deliveries_under_drop(2024);
    assert_eq!(a, b, "same seed must yield the same delivery count");
    assert!(
        a > 0 && a < 40,
        "drop=50 must thin but not erase the traffic"
    );
}

/// Delay chaos models a slow link, not a reordering one: per-channel FIFO
/// survives end-to-end even when deliveries detour through the delay
/// thread.
#[test]
fn delay_chaos_preserves_fifo_end_to_end() {
    Universe::run_with_chaos(2, ChaosSpec::parse("5:delay=40@3").unwrap(), |comm| {
        if comm.rank() == 1 {
            for i in 0..30u8 {
                comm.send(0, 7, &[i]).unwrap();
            }
            // Stay alive until rank 0 drained everything: returning early
            // would race the delay queue against finish detection. The ack
            // itself may be delayed, but quiesce-before-Finished guarantees
            // it arrives rather than being overtaken by rank 0's exit.
            comm.recv_timeout(0, 8, Duration::from_secs(10)).unwrap();
        } else {
            for expect in 0..30u8 {
                let (payload, _) = comm.recv_timeout(1, 7, Duration::from_secs(10)).unwrap();
                assert_eq!(payload, vec![expect], "FIFO broken by delay chaos");
            }
            comm.send(1, 8, b"done").unwrap();
        }
    })
    .unwrap();
}

/// The de-panicked entry point: an impossible universe is a typed Config
/// error from `try_run`, not an abort.
#[test]
fn try_run_rejects_zero_ranks_with_typed_error() {
    let err = Universe::try_run(0, |_| ()).unwrap_err();
    assert!(
        matches!(err, MpiError::Config(_)),
        "expected Config, got {err:?}"
    );
}
