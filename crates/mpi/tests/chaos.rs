//! End-to-end chaos and deadline tests on the shared-memory backend.
//!
//! The unit suite in `src/chaos.rs` pins the *schedule* (which message is
//! dropped under which seed); these tests pin the *observable contract* of
//! this PR: a hung peer surfaces as [`MpiError::Timeout`] and a killed peer
//! as [`MpiError::ProcFailed`] — typed errors within a caller-chosen
//! deadline, never a wedged test suite and never a panic.

use std::time::Duration;

use kamping_mpi::{ChaosSpec, MpiError, Universe};

/// A peer that stays alive but never sends: the receiver's bounded wait
/// must report `Timeout` (not hang, not `ProcFailed`), and the release
/// message afterwards must still go through — timing out is not fatal.
#[test]
fn hung_peer_recv_times_out_then_recovers() {
    Universe::run(2, |comm| {
        if comm.rank() == 0 {
            let err = comm
                .recv_timeout(1, 7, Duration::from_millis(200))
                .unwrap_err();
            assert!(err.is_timeout(), "expected Timeout, got {err:?}");
            if let MpiError::Timeout { waited } = err {
                assert!(waited >= Duration::from_millis(200));
            }
            comm.send(1, 0, b"release").unwrap();
        } else {
            // Silent on tag 7, parked on tag 0 — alive the whole time.
            let (payload, _) = comm.recv(0, 0).unwrap();
            assert_eq!(payload, b"release");
        }
    });
}

/// `wait_timeout` on a request must leave it pending: after the deadline
/// fires, the same request can be waited again and complete normally.
#[test]
fn timed_out_request_stays_retryable() {
    Universe::run(2, |comm| {
        if comm.rank() == 0 {
            let mut req = comm.issend(1, 5, b"payload".to_vec()).unwrap();
            // Rank 1 won't match tag 5 until it gets the go message.
            let err = req.wait_timeout(Duration::from_millis(150)).unwrap_err();
            assert!(err.is_timeout(), "expected Timeout, got {err:?}");
            comm.send(1, 0, b"go").unwrap();
            req.wait().unwrap();
        } else {
            comm.recv(0, 0).unwrap();
            let (payload, _) = comm.recv(0, 5).unwrap();
            assert_eq!(payload, b"payload");
        }
    });
}

/// A severed link loses traffic *without* any failure mark: the only
/// detector is the deadline. The reverse direction keeps working.
#[test]
fn severed_link_surfaces_as_timeout() {
    Universe::run_with_chaos(2, ChaosSpec::parse("11:sever=0->1@0").unwrap(), |comm| {
        if comm.rank() == 0 {
            comm.send(1, 3, b"vanishes").unwrap();
            // Reverse direction is unaffected by the directional cut.
            let (payload, _) = comm.recv(1, 4).unwrap();
            assert_eq!(payload, b"alive");
        } else {
            let err = comm
                .recv_timeout(0, 3, Duration::from_millis(300))
                .unwrap_err();
            assert!(err.is_timeout(), "expected Timeout, got {err:?}");
            comm.send(0, 4, b"alive").unwrap();
        }
    })
    .unwrap();
}

/// An injected rank death must surface as `ProcFailed` on receivers and
/// break collectives for the survivors — within the deadline, typed.
#[test]
fn chaos_kill_surfaces_as_proc_failed() {
    Universe::run_with_chaos(3, ChaosSpec::parse("7:kill=2@1").unwrap(), |comm| {
        if comm.rank() == 2 {
            // First send passes the kill budget; the second triggers the
            // death and is discarded. No simulate_failure, no panic — the
            // chaos layer is the only thing marking this rank dead.
            comm.send(0, 9, b"first").unwrap();
            comm.send(0, 9, b"second").unwrap();
            return;
        }
        if comm.rank() == 0 {
            let (payload, _) = comm.recv(2, 9).unwrap();
            assert_eq!(payload, b"first");
            let err = comm
                .recv_timeout(2, 9, Duration::from_secs(10))
                .unwrap_err();
            assert!(err.is_failure(), "expected ProcFailed, got {err:?}");
        }
        // The dead member never enters the barrier; survivors must get a
        // typed failure instead of wedging.
        let mut req = comm.ibarrier().unwrap();
        let err = req.wait_timeout(Duration::from_secs(10)).unwrap_err();
        assert!(err.is_failure(), "expected a failure, got {err:?}");
    })
    .unwrap();
}

/// Counts how many of rank 1's 40 messages survive a drop=50 schedule,
/// through the full Universe/RawComm stack.
fn deliveries_under_drop(seed: u64) -> usize {
    let spec = ChaosSpec::parse(&format!("{seed}:drop=50")).unwrap();
    let counts = Universe::run_with_chaos(2, spec, |comm| {
        if comm.rank() == 1 {
            for i in 0..40u8 {
                comm.send(0, 7, &[i]).unwrap();
            }
            // The barrier rides the control plane, which chaos never
            // touches: its completion proves every surviving data message
            // is already in rank 0's mailbox.
            let mut req = comm.ibarrier().unwrap();
            req.wait().unwrap();
            0
        } else {
            let mut req = comm.ibarrier().unwrap();
            req.wait().unwrap();
            let mut n = 0;
            while comm.recv_timeout(1, 7, Duration::from_millis(100)).is_ok() {
                n += 1;
            }
            n
        }
    })
    .unwrap();
    counts[0]
}

/// The seeded schedule is reproducible end-to-end: the same seed delivers
/// the same number of messages on every run, and a different seed is free
/// to differ.
#[test]
fn same_seed_same_deliveries_end_to_end() {
    let a = deliveries_under_drop(2024);
    let b = deliveries_under_drop(2024);
    assert_eq!(a, b, "same seed must yield the same delivery count");
    assert!(
        a > 0 && a < 40,
        "drop=50 must thin but not erase the traffic"
    );
}

/// Delay chaos models a slow link, not a reordering one: per-channel FIFO
/// survives end-to-end even when deliveries detour through the delay
/// thread.
#[test]
fn delay_chaos_preserves_fifo_end_to_end() {
    Universe::run_with_chaos(2, ChaosSpec::parse("5:delay=40@3").unwrap(), |comm| {
        if comm.rank() == 1 {
            for i in 0..30u8 {
                comm.send(0, 7, &[i]).unwrap();
            }
            // Stay alive until rank 0 drained everything: returning early
            // would race the delay queue against finish detection. The ack
            // itself may be delayed, but quiesce-before-Finished guarantees
            // it arrives rather than being overtaken by rank 0's exit.
            comm.recv_timeout(0, 8, Duration::from_secs(10)).unwrap();
        } else {
            for expect in 0..30u8 {
                let (payload, _) = comm.recv_timeout(1, 7, Duration::from_secs(10)).unwrap();
                assert_eq!(payload, vec![expect], "FIFO broken by delay chaos");
            }
            comm.send(1, 8, b"done").unwrap();
        }
    })
    .unwrap();
}

/// The de-panicked entry point: an impossible universe is a typed Config
/// error from `try_run`, not an abort.
#[test]
fn try_run_rejects_zero_ranks_with_typed_error() {
    let err = Universe::try_run(0, |_| ()).unwrap_err();
    assert!(
        matches!(err, MpiError::Config(_)),
        "expected Config, got {err:?}"
    );
}
