//! Elastic-universe tests: dynamic rank join, shrink→grow→shrink cycles,
//! and the rendezvous failure modes around them.
//!
//! The multi-process tests follow the `socket_backend.rs` pattern: each
//! launches N copies of *this test binary* (plus late joiners via
//! `LaunchSpec::elastic`) filtered down to [`elastic_worker_entry`], with
//! the case selected by `KAMPING_TEST_CASE`. Initial ranks enter at
//! membership epoch 0 and observe admissions as typed epoch transitions
//! through [`RawComm::grow`]; a joiner's closure starts directly on the
//! grown communicator (its epoch is already past 0), which is how the
//! case bodies tell the two roles apart.
//!
//! The shm tests exercise the same epoch machinery in-process through
//! [`Universe::run_elastic`] + [`RawComm::spawn_merge`], including the
//! hierarchical-collective variant over `set_fake_hosts`.

use std::time::Duration;

use kamping_mpi::net::{launch, Backend, LaunchSpec, RankExit};
use kamping_mpi::{MpiError, RawComm, Universe};

const CASE_VAR: &str = "KAMPING_TEST_CASE";
const GROW_WAIT: Duration = Duration::from_secs(20);

fn byte_sum(a: &mut [u8], b: &[u8]) {
    let x = u64::from_le_bytes(a.try_into().unwrap());
    let y = u64::from_le_bytes(b.try_into().unwrap());
    a.copy_from_slice(&(x + y).to_le_bytes());
}

/// Allreduced sum of every member's global rank — the membership
/// fingerprint each epoch is checked against.
fn global_sum(comm: &RawComm) -> u64 {
    let mut acc = (comm.my_global_rank() as u64).to_le_bytes().to_vec();
    comm.allreduce(&mut acc, &byte_sum, 8).unwrap();
    u64::from_le_bytes(acc.try_into().unwrap())
}

/// Asserts the communicator's members are exactly `globals`, densely
/// renumbered in ascending global order.
fn assert_members(comm: &RawComm, globals: &[usize]) {
    assert_eq!(comm.size(), globals.len());
    for (l, &g) in globals.iter().enumerate() {
        assert_eq!(comm.global_rank(l).unwrap(), g, "local {l} misnumbered");
    }
}

fn launch_elastic(
    case: &str,
    ranks: usize,
    elastic: usize,
    tcp: bool,
    backend: Backend,
    extra: &[(&str, String)],
) -> Vec<RankExit> {
    let mut spec = LaunchSpec::new(
        ranks,
        std::env::current_exe().expect("test binary path available"),
    );
    spec.tcp = tcp;
    spec.backend = backend;
    spec.elastic = elastic;
    spec.join_delay_ms = 50;
    spec.args = vec!["elastic_worker_entry".into(), "--exact".into()];
    spec.env = vec![(CASE_VAR.into(), case.into())];
    for (k, v) in extra {
        spec.env.push(((*k).into(), v.clone()));
    }
    launch(&spec).expect("launching the job")
}

fn assert_all_success(case: &str, exits: &[RankExit]) {
    for e in exits {
        assert!(
            e.status.success(),
            "case {case}: rank {} exited with {}",
            e.rank,
            e.status
        );
    }
}

// ---------------------------------------------------------------------
// Case bodies (run inside the child processes).
// ---------------------------------------------------------------------

/// 2 launch ranks + 1 joiner: the launch ranks block for the admission
/// and step into epoch 1; the joiner starts there. Everyone agrees on
/// the grown membership and runs a collective over it.
fn case_grow(comm: RawComm) {
    let grown = if comm.membership_epoch() == 0 {
        assert_eq!(comm.size(), 2);
        let epoch = comm.await_grow_timeout(GROW_WAIT).unwrap();
        assert_eq!(epoch, 1);
        comm.grow().unwrap()
    } else {
        assert_eq!(comm.membership_epoch(), 1, "joiner enters at epoch 1");
        comm
    };
    assert_members(&grown, &[0, 1, 2]);
    assert_eq!(global_sum(&grown), 3);
    grown.barrier().unwrap();
}

/// 3 launch ranks + 1 joiner, then two kills: a full
/// grow → shrink → shrink cycle. Each epoch is fingerprinted by a
/// collective over the membership and by its dense renumbering; both
/// shrinks derive from the same epoch communicator (the pinned-base
/// pattern the elastic service uses).
fn case_cycle(comm: RawComm) {
    // --- epoch 0 → 1: admission ---------------------------------------
    let comm4 = if comm.membership_epoch() == 0 {
        assert_eq!(global_sum(&comm), 3, "launch membership is {{0,1,2}}");
        comm.await_grow_timeout(GROW_WAIT).unwrap();
        comm.grow().unwrap()
    } else {
        comm
    };
    assert_members(&comm4, &[0, 1, 2, 3]);
    assert_eq!(global_sum(&comm4), 6);

    // --- first kill: global 2 dies, the rest shrink --------------------
    if comm4.my_global_rank() == 2 {
        comm4.simulate_failure();
        return;
    }
    match comm4.await_membership_change_timeout(GROW_WAIT).unwrap() {
        kamping_mpi::MembershipChange::Failure(l) => {
            assert_eq!(comm4.global_rank(l).unwrap(), 2)
        }
        other => panic!("expected a failure, got {other:?}"),
    }
    let shrunk = comm4.shrink().unwrap();
    assert_members(&shrunk, &[0, 1, 3]);
    assert_eq!(global_sum(&shrunk), 4);

    // Satellite: on shm-xproc, the dead rank's inbox ring file must be
    // unlinked once the failure is processed — ring files must not
    // accumulate across membership cycles.
    if let Ok(dir) = std::env::var("KAMPING_SHM_DIR") {
        let corpse = std::path::Path::new(&dir).join("inbox-2.ring");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while corpse.exists() {
            assert!(
                std::time::Instant::now() < deadline,
                "dead rank's ring file {corpse:?} still linked"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // p2p on the shrunk epoch: rotate a token around the ring.
    let p = shrunk.size();
    let right = (shrunk.rank() + 1) % p;
    let left = (shrunk.rank() + p - 1) % p;
    let (got, _) = shrunk
        .sendrecv(right, 4, &[shrunk.rank() as u8; 16], left, 4)
        .unwrap();
    assert_eq!(got, vec![left as u8; 16]);
    shrunk.barrier().unwrap();

    // --- second kill: global 1 dies; both shrinks share the base -------
    if shrunk.my_global_rank() == 1 {
        shrunk.simulate_failure();
        return;
    }
    match shrunk.await_membership_change_timeout(GROW_WAIT).unwrap() {
        kamping_mpi::MembershipChange::Failure(l) => {
            assert_eq!(shrunk.global_rank(l).unwrap(), 1)
        }
        other => panic!("expected a failure, got {other:?}"),
    }
    let pair = comm4.shrink().unwrap();
    assert_members(&pair, &[0, 3]);
    assert_eq!(global_sum(&pair), 3);
    let peer = 1 - pair.rank();
    let (got, _) = pair
        .sendrecv(peer, 5, &[pair.my_global_rank() as u8], peer, 5)
        .unwrap();
    assert_eq!(got, vec![pair.global_rank(peer).unwrap() as u8]);
}

/// Satellite: a joiner whose rendezvous endpoint never answers must get
/// a typed `MpiError::Timeout` — a bounded failure, not a hang.
fn case_join_timeout() {
    let err = Universe::try_run(1, |_comm| ()).unwrap_err();
    assert!(err.is_timeout(), "expected Timeout, got {err:?}");
}

// ---------------------------------------------------------------------
// The child-side entry point.
// ---------------------------------------------------------------------

/// A no-op under a plain `cargo test`; the rank body when launched by
/// the parent tests below.
#[test]
fn elastic_worker_entry() {
    let Ok(case) = std::env::var(CASE_VAR) else {
        return;
    };
    // A deadlocked child must not hang CI: die loudly instead.
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(120));
        eprintln!("elastic_worker_entry: watchdog fired, aborting rank");
        std::process::exit(86);
    });
    if case == "join_timeout" {
        case_join_timeout();
        return;
    }
    Universe::run(1, |comm| match case.as_str() {
        "grow" => case_grow(comm),
        "cycle" => case_cycle(comm),
        other => panic!("unknown case {other:?}"),
    });
}

// ---------------------------------------------------------------------
// Multi-process parent tests.
// ---------------------------------------------------------------------

#[test]
fn socket_joiner_grows_universe() {
    assert_all_success(
        "grow",
        &launch_elastic("grow", 2, 1, false, Backend::Socket, &[]),
    );
}

#[test]
fn tcp_joiner_grows_universe() {
    assert_all_success(
        "grow",
        &launch_elastic("grow", 2, 1, true, Backend::Socket, &[]),
    );
}

#[test]
fn ring_joiner_grows_universe() {
    assert_all_success(
        "grow",
        &launch_elastic("grow", 2, 1, false, Backend::ShmXproc, &[]),
    );
}

#[test]
fn socket_shrink_grow_shrink_cycle() {
    assert_all_success(
        "cycle",
        &launch_elastic("cycle", 3, 1, false, Backend::Socket, &[]),
    );
}

/// The cycle over shm-xproc rings, with the launcher's ring directory
/// overridden so the parent can verify that *no* ring files survive the
/// job — every member's inbox is unlinked on failure or goodbye.
#[test]
fn ring_shrink_grow_shrink_cycle_unlinks_ring_files() {
    let dir = std::env::temp_dir().join(format!("kamping-elastic-rings-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creating ring dir");
    let exits = launch_elastic(
        "cycle",
        3,
        1,
        false,
        Backend::ShmXproc,
        &[("KAMPING_SHM_DIR", dir.display().to_string())],
    );
    assert_all_success("cycle", &exits);
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("reading ring dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".ring"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "ring files leaked past the job: {leftovers:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: a joiner pointed at a rendezvous endpoint nobody serves
/// must come back with a typed `Timeout` within the rendezvous deadline.
#[test]
fn joiner_times_out_on_severed_rendezvous() {
    let absent = std::env::temp_dir().join(format!(
        "kamping-absent-rendezvous-{}.sock",
        std::process::id()
    ));
    let status =
        std::process::Command::new(std::env::current_exe().expect("test binary path available"))
            .args(["elastic_worker_entry", "--exact"])
            .env(CASE_VAR, "join_timeout")
            .env("KAMPING_TRANSPORT", "socket")
            .env("KAMPING_JOIN", "1")
            .env("KAMPING_RANKS", "2")
            .env("KAMPING_MAX_RANKS", "3")
            .env("KAMPING_RENDEZVOUS", format!("unix:{}", absent.display()))
            .stdin(std::process::Stdio::null())
            .status()
            .expect("spawning joiner");
    assert!(
        status.success(),
        "joiner must exit cleanly after its typed timeout, got {status}"
    );
}

// ---------------------------------------------------------------------
// In-process (shm) elastic tests.
// ---------------------------------------------------------------------

/// `spawn_merge` admits a parked rank as a typed epoch transition; the
/// never-admitted rank stays parked and returns nothing.
#[test]
fn shm_spawn_merge_admits_parked_rank() {
    let results = Universe::run_elastic(2, 4, |comm| {
        let grown = if comm.membership_epoch() == 0 {
            comm.barrier().unwrap();
            if comm.rank() == 0 {
                comm.spawn_merge(1).unwrap()
            } else {
                comm.await_grow_timeout(GROW_WAIT).unwrap();
                comm.grow().unwrap()
            }
        } else {
            assert_eq!(comm.membership_epoch(), 1);
            comm
        };
        assert_members(&grown, &[0, 1, 2]);
        assert_eq!(global_sum(&grown), 3);
        grown.barrier().unwrap();
        grown.my_global_rank()
    })
    .unwrap();
    // Globals 0..2 ran; the second parked rank (global 3) never did.
    let ran: Vec<usize> = results.iter().map(|&(g, _)| g).collect();
    assert_eq!(ran, vec![0, 1, 2]);
    for &(g, r) in &results {
        assert_eq!(g, r);
    }
}

/// Satellite: the full shrink → grow → shrink cycle in one process, with
/// the *hierarchical* collectives (synthetic two-host grouping via
/// `set_fake_hosts`) fingerprinting every epoch's membership.
#[test]
fn shm_cycle_equivalence_with_fake_host_hierarchy() {
    let hier_sum = |comm: &RawComm| {
        comm.set_coll_strategy(kamping_mpi::CollStrategy::Hier);
        comm.set_fake_hosts(2);
        global_sum(comm)
    };
    let results = Universe::run_elastic(4, 5, |comm| {
        let mut slot = Some(comm);
        // --- epoch 0: the launch membership ---------------------------
        let world = if slot.as_ref().unwrap().membership_epoch() == 0 {
            let comm = slot.take().unwrap();
            assert_eq!(hier_sum(&comm), 6, "launch membership is {{0,1,2,3}}");
            if comm.my_global_rank() == 3 {
                comm.simulate_failure();
                return comm.my_global_rank();
            }
            Some(comm)
        } else {
            None
        };

        // --- shrink to {0,1,2} ----------------------------------------
        let shrunk = world.as_ref().map(|w| {
            match w.await_membership_change_timeout(GROW_WAIT).unwrap() {
                kamping_mpi::MembershipChange::Failure(l) => {
                    assert_eq!(w.global_rank(l).unwrap(), 3)
                }
                other => panic!("expected a failure, got {other:?}"),
            }
            let s = w.shrink().unwrap();
            assert_members(&s, &[0, 1, 2]);
            assert_eq!(hier_sum(&s), 3);
            s
        });

        // --- grow to {0,1,2,4}: leader admits the parked rank ---------
        let grown = match (&world, shrunk) {
            (Some(w), Some(s)) => {
                if s.rank() == 0 {
                    s.spawn_merge(1).unwrap()
                } else {
                    s.await_grow_timeout(GROW_WAIT).unwrap();
                    w.grow().unwrap()
                }
            }
            // The joiner (global 4) starts here, at epoch 1.
            _ => {
                let comm = slot.take().unwrap();
                assert_eq!(comm.membership_epoch(), 1);
                comm
            }
        };
        assert_members(&grown, &[0, 1, 2, 4]);
        assert_eq!(hier_sum(&grown), 7);

        // --- second shrink to {0,1,4} ---------------------------------
        if grown.my_global_rank() == 2 {
            grown.simulate_failure();
            return grown.my_global_rank();
        }
        match grown.await_membership_change_timeout(GROW_WAIT).unwrap() {
            kamping_mpi::MembershipChange::Failure(l) => {
                assert_eq!(grown.global_rank(l).unwrap(), 2)
            }
            other => panic!("expected a failure, got {other:?}"),
        }
        let pair = grown.shrink().unwrap();
        assert_members(&pair, &[0, 1, 4]);
        assert_eq!(hier_sum(&pair), 5);
        pair.my_global_rank()
    })
    .unwrap();
    let ran: Vec<usize> = results.iter().map(|&(g, _)| g).collect();
    assert_eq!(ran, vec![0, 1, 2, 3, 4], "every rank ran, none parked");
}

/// Misuse surfaces as typed configuration errors, not hangs or panics.
#[test]
fn shm_elastic_misuse_is_typed() {
    // grow() with no admission event pending.
    Universe::run(2, |comm| {
        let err = comm.grow().unwrap_err();
        assert!(matches!(err, MpiError::Internal(_)), "got {err:?}");
        // spawn_merge(0) is a request for nothing.
        let err = comm.spawn_merge(0).unwrap_err();
        assert!(matches!(err, MpiError::Config(_)), "got {err:?}");
        comm.barrier().unwrap();
        // More joiners than the parked pool holds.
        if comm.rank() == 0 {
            let err = comm.spawn_merge(1).unwrap_err();
            assert!(matches!(err, MpiError::Config(_)), "got {err:?}");
        }
    });
    // Capacity below the initial rank count.
    let err = Universe::run_elastic(3, 2, |_comm| ()).unwrap_err();
    assert!(matches!(err, MpiError::Config(_)), "got {err:?}");
}
