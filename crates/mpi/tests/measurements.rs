//! Integration tests of the measurements subsystem (timer trees,
//! cross-rank aggregation) and the `Universe::run_traced` pipeline
//! (envelope lifecycle events, wait-time attribution, Chrome export) on
//! the shared-memory backend. The socket-backend counterparts live in
//! `socket_backend.rs`.

use std::collections::BTreeMap;
use std::time::Duration;

use kamping_mpi::measurements::TimerTree;
use kamping_mpi::trace::EventKind;
use kamping_mpi::{MpiError, Universe};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Every rank contributes deterministic values; the aggregate must be
/// byte-identical on every rank and reduce to the expected min/mean/max.
#[test]
fn aggregate_is_identical_on_every_rank() {
    let results = Universe::run(4, |comm| {
        let mut t = TimerTree::new();
        t.append_seconds("phase_a", comm.rank() as f64);
        t.start("outer");
        t.append_seconds("inner", 10.0 + comm.rank() as f64);
        t.stop();
        t.counter_put("items", (comm.rank() * 100) as f64);
        let agg = t.aggregate(&comm).unwrap();
        (agg.to_json(), agg)
    });
    let (json0, agg0) = &results[0];
    for (json, _) in &results {
        assert_eq!(json, json0, "aggregate JSON must match across ranks");
    }
    let a = &agg0.root.children[0];
    assert_eq!(a.name, "phase_a");
    assert_eq!(a.measurements[0].per_rank, vec![0.0, 1.0, 2.0, 3.0]);
    assert_eq!(a.measurements[0].min, 0.0);
    assert_eq!(a.measurements[0].max, 3.0);
    assert_eq!(a.measurements[0].mean, 1.5);
    let outer = &agg0.root.children[1];
    assert_eq!(outer.name, "outer");
    assert_eq!(outer.children[0].name, "inner");
    assert_eq!(outer.children[0].measurements[0].min, 10.0);
    assert_eq!(outer.children[0].measurements[0].max, 13.0);
    let items = &agg0.counters["items"];
    assert_eq!(items.min, 0.0);
    assert_eq!(items.max, 300.0);
    assert_eq!(items.mean, 150.0);
}

/// Wall-clock phases: min <= mean <= max must hold for every slot, and a
/// deliberately slow rank must dominate `max`.
#[test]
fn aggregate_orders_min_mean_max() {
    let results = Universe::run(3, |comm| {
        let mut t = TimerTree::new();
        t.start("work");
        if comm.rank() == 2 {
            std::thread::sleep(Duration::from_millis(30));
        }
        t.stop();
        t.aggregate(&comm).unwrap()
    });
    let slot = &results[0].root.children[0].measurements[0];
    assert!(slot.min <= slot.mean && slot.mean <= slot.max);
    assert!(
        slot.max >= 0.030,
        "slow rank must dominate max, got {}",
        slot.max
    );
    assert_eq!(slot.per_rank.len(), 3);
    assert_eq!(slot.max, slot.per_rank[2]);
}

/// Seeded values through the full aggregation wire protocol: two separate
/// universes with the same seeds must serialize to the identical JSON
/// document.
#[test]
fn seeded_aggregation_is_deterministic() {
    let run = || {
        Universe::run(4, |comm| {
            let mut rng = SmallRng::seed_from_u64(99 + comm.rank() as u64);
            let mut t = TimerTree::new();
            for _ in 0..5 {
                t.append_seconds("step", rng.gen_range(0u64..1_000_000) as f64 * 1e-6);
            }
            t.counter_put("draws", rng.gen_range(0u64..1_000) as f64);
            t.aggregate(&comm).unwrap().to_json()
        })
    };
    let first = run();
    let second = run();
    assert_eq!(first, second);
    assert_eq!(first[0], first[3]);
}

/// Ranks disagreeing on the tree shape must all observe a typed Config
/// error instead of exchanging garbage.
#[test]
fn shape_mismatch_is_config_error() {
    let results = Universe::run(2, |comm| {
        let mut t = TimerTree::new();
        if comm.rank() == 0 {
            t.append_seconds("alpha", 1.0);
        } else {
            t.append_seconds("beta", 1.0);
        }
        t.aggregate(&comm)
    });
    for r in results {
        match r {
            Err(MpiError::Config(msg)) => assert!(msg.contains("shape mismatch")),
            other => panic!("expected Config error, got {other:?}"),
        }
    }
}

/// `run_traced` on the shm backend: the envelope lifecycle must be
/// causally ordered per channel (k-th post <= k-th deliver <= k-th take in
/// timestamps), every rank must contribute to the op tree, and blocking
/// time must be attributed as wait rather than compute.
#[test]
fn run_traced_envelope_lifecycle_and_op_tree() {
    let (_, report) = Universe::run_traced(4, |comm| {
        if comm.rank() == 0 {
            for src in 1..comm.size() {
                comm.recv(src, 7).unwrap();
            }
        } else {
            // Stagger so rank 0 demonstrably blocks in recv.
            std::thread::sleep(Duration::from_millis(10 * comm.rank() as u64));
            comm.send(0, 7, &[comm.rank() as u8; 32]).unwrap();
        }
        comm.barrier().unwrap();
        comm.allgather(&[comm.rank() as u8]).unwrap();
    })
    .unwrap();

    assert_eq!(report.dropped_events, 0);
    assert!(report.chrome_json.contains("\"traceEvents\""));

    // Group the lifecycle events per directed channel.
    type Channel = (u32, u32, kamping_mpi::Tag, u64);
    let mut posts: BTreeMap<Channel, Vec<u64>> = BTreeMap::new();
    let mut delivers: BTreeMap<Channel, Vec<u64>> = BTreeMap::new();
    let mut takes: BTreeMap<Channel, Vec<u64>> = BTreeMap::new();
    for ev in &report.events {
        match ev.kind {
            EventKind::Post {
                src, dst, tag, ctx, ..
            } => posts
                .entry((src, dst, tag, ctx))
                .or_default()
                .push(ev.ts_ns),
            EventKind::Deliver {
                src, dst, tag, ctx, ..
            } => delivers
                .entry((src, dst, tag, ctx))
                .or_default()
                .push(ev.ts_ns),
            EventKind::Take {
                src, dst, tag, ctx, ..
            } => takes
                .entry((src, dst, tag, ctx))
                .or_default()
                .push(ev.ts_ns),
            _ => {}
        }
    }
    assert!(!posts.is_empty(), "application sends must be traced");
    for (chan, take_ts) in &mut takes {
        let post_ts = posts.get_mut(chan).expect("take without post");
        let deliver_ts = delivers.get_mut(chan).expect("take without deliver");
        post_ts.sort_unstable();
        deliver_ts.sort_unstable();
        take_ts.sort_unstable();
        assert!(take_ts.len() <= deliver_ts.len());
        assert!(deliver_ts.len() <= post_ts.len());
        for i in 0..take_ts.len() {
            assert!(
                post_ts[i] <= deliver_ts[i] && deliver_ts[i] <= take_ts[i],
                "channel {chan:?}: lifecycle out of order at message {i}"
            );
        }
    }

    // Every rank contributed to the aggregated op tree.
    let tree = report
        .op_tree
        .expect("run_traced must aggregate the op tree");
    assert_eq!(tree.root.name, "mpi_ops");
    let allgather = tree
        .root
        .children
        .iter()
        .find(|n| n.name == "allgather")
        .expect("allgather was called");
    let calls = allgather
        .children
        .iter()
        .find(|n| n.name == "calls")
        .expect("calls child");
    assert_eq!(calls.measurements[0].per_rank, vec![1.0; 4]);

    // Rank 0 blocked in recv behind deliberately slow senders: most of its
    // recv latency must be attributed to wait, not compute.
    let recv = tree
        .root
        .children
        .iter()
        .find(|n| n.name == "recv")
        .expect("recv was called");
    let total = recv.measurements[0].per_rank[0];
    let wait = recv
        .children
        .iter()
        .find(|n| n.name == "wait")
        .expect("wait child")
        .measurements[0]
        .per_rank[0];
    assert!(
        wait >= 0.010,
        "rank 0 blocked >= 10ms in recv, attributed wait = {wait}s"
    );
    assert!(
        wait <= total + 1e-9,
        "wait cannot exceed total ({wait} > {total})"
    );
}

/// The tree renderer and the OpSpan events agree that waits never exceed
/// the op's own duration.
#[test]
fn op_spans_bound_wait_by_duration() {
    let (_, report) = Universe::run_traced(2, |comm| {
        if comm.rank() == 1 {
            std::thread::sleep(Duration::from_millis(20));
        }
        comm.barrier().unwrap();
    })
    .unwrap();
    let mut saw_span = false;
    for ev in &report.events {
        if let EventKind::OpSpan {
            dur_ns, wait_ns, ..
        } = ev.kind
        {
            saw_span = true;
            assert!(wait_ns <= dur_ns, "wait {wait_ns}ns > span {dur_ns}ns");
        }
    }
    assert!(saw_span, "ops must emit spans under run_traced");
}
