//! Cross-process tests of the live metrics plane and flight recorder.
//!
//! Same harness as `socket_backend.rs`: each test launches N copies of
//! this test binary (filtered to [`metrics_worker_entry`]) over the
//! cross-process transport, with `KAMPING_METRICS` pointed at a scratch
//! JSONL file. The parent then reads the merged interval stream rank 0
//! wrote and asserts on it — the same artifact `kampirun --metrics`
//! produces.
//!
//! Covered invariants:
//!
//! 1. a chaos-style abrupt rank death mid-job shows up as a `stale` entry
//!    in subsequent interval records, the poller never hangs on the dead
//!    rank, and the surviving ranks keep reporting (seq keeps rising);
//! 2. the JSONL field order is exactly [`JSONL_FIELDS`] on both the
//!    socket and shm-xproc backends — consumers may scrape by position;
//! 3. with `KAMPING_CRASH_DIR` armed, survivors of a rank death each dump
//!    a flight-recorder report and the folded post-mortem names the
//!    killed rank as first-failing.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use kamping_mpi::metrics::{collect_crash_reports, scrape_array, scrape_u64, JSONL_FIELDS};
use kamping_mpi::net::{launch, Backend, LaunchSpec, RankExit};
use kamping_mpi::{RawComm, Universe};

const CASE_VAR: &str = "KAMPING_METRICS_TEST_CASE";

/// Launches `ranks` copies of this test binary running `case` over
/// `backend` with the given extra environment.
fn run_job(case: &str, ranks: usize, backend: Backend, extra: &[(&str, String)]) -> Vec<RankExit> {
    let mut spec = LaunchSpec::new(
        ranks,
        std::env::current_exe().expect("test binary path available"),
    );
    spec.backend = backend;
    spec.args = vec!["metrics_worker_entry".into(), "--exact".into()];
    spec.env = vec![(CASE_VAR.into(), case.into())];
    for (k, v) in extra {
        spec.env.push(((*k).into(), v.clone()));
    }
    launch(&spec).expect("launching the job")
}

fn scratch_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "kamping-metrics-test-{}-{name}",
        std::process::id()
    ))
}

fn read_records(path: &Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("reading metrics JSONL {}: {e}", path.display()))
        .lines()
        .map(str::to_string)
        .collect()
}

/// Asserts one record's top-level keys appear in exactly the
/// [`JSONL_FIELDS`] order. Inner `totals` keys cannot collide with the
/// top-level names, so plain substring positions suffice.
fn assert_field_order(record: &str) {
    let mut last = 0usize;
    for field in JSONL_FIELDS {
        let needle = format!("\"{field}\":");
        let at = record
            .find(&needle)
            .unwrap_or_else(|| panic!("field {field:?} missing from record {record}"));
        assert!(
            at >= last,
            "field {field:?} out of order in record {record}"
        );
        last = at;
    }
}

// ---------------------------------------------------------------------
// Case bodies, executed inside the child processes.
// ---------------------------------------------------------------------

/// A two-rank ping-pong where rank 0 alone decides when to stop (after
/// `dur`) and signals it in the ping's first byte. Bounding both sides by
/// their *own* clocks instead would deadlock under CPU starvation: the
/// ranks can disagree on the final round, leaving rank 0 in a `recv` that
/// rank 1 — already past its loop — will never answer.
fn ping_pong_driven(comm: &RawComm, dur: Duration, pause: Duration) {
    let start = Instant::now();
    if comm.rank() == 0 {
        loop {
            let done = start.elapsed() >= dur;
            comm.send(1, 5, &[done as u8; 64]).unwrap();
            comm.recv(1, 6).unwrap();
            if done {
                return;
            }
            std::thread::sleep(pause);
        }
    }
    loop {
        let (ping, _) = comm.recv(0, 5).unwrap();
        comm.send(0, 6, &[2u8; 64]).unwrap();
        if ping[0] == 1 {
            return;
        }
    }
}

/// Rank 2 dies abruptly ~250 ms in (no unwinding, no goodbye); ranks 0
/// and 1 keep a steady ping-pong going for ~1.2 s so the poller observes
/// throughput before, during, and after the death.
fn case_metrics_kill(comm: &RawComm) {
    if comm.rank() == 2 {
        comm.send(0, 3, b"up").unwrap();
        std::thread::sleep(Duration::from_millis(250));
        std::process::exit(7);
    }
    if comm.rank() == 0 {
        comm.recv(2, 3).unwrap();
    }
    ping_pong_driven(comm, Duration::from_millis(1200), Duration::from_millis(5));
}

/// A clean 2-rank ping-pong long enough for several 100 ms intervals.
fn case_metrics_clean(comm: &RawComm) {
    ping_pong_driven(comm, Duration::from_millis(450), Duration::from_millis(2));
    comm.barrier().unwrap();
}

/// The child-side entry point: a no-op under plain `cargo test`, the rank
/// body when launched by the tests below.
#[test]
fn metrics_worker_entry() {
    let Ok(case) = std::env::var(CASE_VAR) else {
        return;
    };
    // A deadlocked child must not hang CI: die loudly instead.
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(120));
        eprintln!("metrics_worker_entry: watchdog fired, aborting rank");
        std::process::exit(86);
    });
    Universe::run(1, |comm| match case.as_str() {
        "metrics_kill" => case_metrics_kill(&comm),
        "metrics_clean" => case_metrics_clean(&comm),
        other => panic!("unknown case {other:?}"),
    });
}

// ---------------------------------------------------------------------
// Parent-side tests.
// ---------------------------------------------------------------------

/// A killed rank turns stale in the interval stream without stalling it:
/// records keep coming (survivors keep reporting), the dead rank appears
/// in `stale`, and no record ever blocks the poller past its budget.
#[test]
fn socket_killed_rank_goes_stale_and_stream_continues() {
    let out = scratch_path("kill.jsonl");
    let _ = std::fs::remove_file(&out);
    let exits = run_job(
        "metrics_kill",
        3,
        Backend::Socket,
        &[
            ("KAMPING_METRICS", out.display().to_string()),
            ("KAMPING_METRICS_INTERVAL_MS", "100".to_string()),
        ],
    );
    for e in &exits {
        match e.rank {
            2 => assert_eq!(
                e.status.code(),
                Some(7),
                "rank 2 must die with its own code"
            ),
            r => assert!(e.status.success(), "rank {r} exited with {}", e.status),
        }
    }

    let records = read_records(&out);
    assert!(
        records.len() >= 4,
        "expected several 100ms intervals over a ~1.2s job, got {}",
        records.len()
    );
    let mut prev_seq = 0;
    let mut first_stale_seq = None;
    for rec in &records {
        assert_field_order(rec);
        let seq = scrape_u64(rec, "seq").expect("seq field");
        assert!(seq > prev_seq, "seq must be strictly increasing");
        prev_seq = seq;
        let stale = scrape_array(rec, "stale").expect("stale field");
        if stale.contains(&2) {
            first_stale_seq.get_or_insert(seq);
        }
        assert!(
            !stale.contains(&0) && !stale.contains(&1),
            "survivors must never be reported stale, got {rec}"
        );
    }
    let first_stale = first_stale_seq.expect("rank 2's death never showed up as stale");
    assert!(
        prev_seq > first_stale,
        "stream must keep flowing after the death (stale from #{first_stale}, last #{prev_seq})"
    );
    // Early records — before the 250 ms kill — must show all ranks live.
    let stale0 = scrape_array(&records[0], "stale").expect("stale field");
    assert!(
        stale0.is_empty(),
        "first interval should predate the kill, got {}",
        records[0]
    );
    let _ = std::fs::remove_file(&out);
}

/// The JSONL schema is positional: every record on every backend carries
/// the exact [`JSONL_FIELDS`] order, and a clean run moves real traffic.
#[test]
fn interval_records_have_identical_field_order_across_backends() {
    for (backend, name) in [(Backend::Socket, "socket"), (Backend::ShmXproc, "ring")] {
        let out = scratch_path(&format!("clean-{name}.jsonl"));
        let _ = std::fs::remove_file(&out);
        let exits = run_job(
            "metrics_clean",
            2,
            backend,
            &[
                ("KAMPING_METRICS", out.display().to_string()),
                ("KAMPING_METRICS_INTERVAL_MS", "100".to_string()),
            ],
        );
        for e in &exits {
            assert!(
                e.status.success(),
                "{name}: rank {} exited with {}",
                e.rank,
                e.status
            );
        }
        let records = read_records(&out);
        assert!(!records.is_empty(), "{name}: no interval records written");
        for rec in &records {
            assert_field_order(rec);
            assert!(
                scrape_array(rec, "stale").expect("stale field").is_empty(),
                "{name}: clean run reported a stale rank: {rec}"
            );
        }
        let moved_traffic = records
            .iter()
            .any(|r| scrape_u64(r, "msgs_per_s").expect("msgs_per_s field") > 0);
        assert!(moved_traffic, "{name}: no interval saw any traffic");
        let _ = std::fs::remove_file(&out);
    }
}

/// Flight recorder drill: with `KAMPING_CRASH_DIR` armed, each survivor
/// of the killed rank dumps a crash report, and the folded post-mortem
/// names rank 2 as the first-failing rank.
#[test]
fn crash_dir_post_mortem_names_killed_rank() {
    let dir = scratch_path("crash");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating crash dir");
    let exits = run_job(
        "metrics_kill",
        3,
        Backend::Socket,
        &[("KAMPING_CRASH_DIR", dir.display().to_string())],
    );
    for e in &exits {
        match e.rank {
            2 => assert_eq!(
                e.status.code(),
                Some(7),
                "rank 2 must die with its own code"
            ),
            r => assert!(e.status.success(), "rank {r} exited with {}", e.status),
        }
    }

    for r in [0usize, 1] {
        assert!(
            dir.join(format!("crash-rank{r}.json")).is_file(),
            "surviving rank {r} wrote no crash report"
        );
    }
    let doc = collect_crash_reports(&dir)
        .expect("reading crash reports")
        .expect("no crash reports collected");
    assert_eq!(
        scrape_u64(&doc, "first_failed"),
        Some(2),
        "post-mortem must name the killed rank: {doc}"
    );
    assert!(
        scrape_array(&doc, "failed")
            .expect("failed field")
            .contains(&2),
        "failed set must contain the killed rank: {doc}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
