//! Multi-process tests of the cross-process backends (sockets and
//! shm-xproc rings).
//!
//! Each `socket_*` test below launches N copies of *this test binary* via
//! [`kamping_mpi::net::launch`] (the `kampirun` library), filtered down to
//! the [`worker_entry`] test. Inside each child, `KAMPING_TRANSPORT=socket`
//! makes `Universe::run` join the job as one rank, so the case functions
//! here run unchanged code paths — the very ones the shared-memory tests
//! (`transport_ordering.rs` and the unit suites) exercise in-process. A
//! case asserts inside the child; the parent only checks exit statuses.
//!
//! Every case also runs as a `ring_*` test under `Backend::ShmXproc`,
//! where co-located ranks talk over mmap'd shared-memory rings instead of
//! sockets — same `Transport` seam, same invariants, different wire. A
//! `mixed_*` family splits the co-located set (`KAMPING_LOCAL_RANKS`) so
//! some pairs ride rings while others keep sockets in one job.
//!
//! The mirrored invariants:
//!
//! 1. FIFO non-overtaking per (source, tag, context) across the wire;
//! 2. `ANY_SOURCE` matches follow mailbox arrival stamps (with arrival
//!    order *enforced* through rank-0-mediated tokens — unlike shared
//!    memory, sockets do not make cross-sender delivery causal on their
//!    own, and MPI does not promise it either);
//! 3. `issend` completes exactly on match (wire acks), or errors when the
//!    destination is gone;
//! 4. collectives (blocking and — this PR — the nonblocking engine:
//!    equivalence against the blocking twins, chaos seeds surfacing typed
//!    `Timeout`/`ProcFailed` instead of hangs), non-blocking barriers,
//!    revocation and rank-death recovery (a child killed mid-job surfaces
//!    as `ProcFailed` and the survivors shrink and continue).

use std::time::Duration;

use kamping_mpi::net::{launch, Backend, LaunchSpec, RankExit};
use kamping_mpi::{MpiError, RawComm, Universe, ANY_SOURCE, ANY_TAG};

const MSGS: u32 = 50;
const CASE_VAR: &str = "KAMPING_TEST_CASE";

fn seq_payload(src: usize, seq: u32) -> Vec<u8> {
    let mut v = (src as u32).to_le_bytes().to_vec();
    v.extend_from_slice(&seq.to_le_bytes());
    v
}

fn decode(payload: &[u8]) -> (u32, u32) {
    (
        u32::from_le_bytes(payload[..4].try_into().unwrap()),
        u32::from_le_bytes(payload[4..8].try_into().unwrap()),
    )
}

/// Launches `ranks` copies of this test binary running `case` over
/// `backend`, with any extra environment for the children.
fn run_job_full(
    case: &str,
    ranks: usize,
    tcp: bool,
    backend: Backend,
    extra: &[(&str, String)],
) -> Vec<RankExit> {
    let mut spec = LaunchSpec::new(
        ranks,
        std::env::current_exe().expect("test binary path available"),
    );
    spec.tcp = tcp;
    spec.backend = backend;
    spec.args = vec!["worker_entry".into(), "--exact".into()];
    spec.env = vec![(CASE_VAR.into(), case.into())];
    for (k, v) in extra {
        spec.env.push(((*k).into(), v.clone()));
    }
    launch(&spec).expect("launching the job")
}

/// Launches `ranks` copies of this test binary running `case`.
fn run_job(case: &str, ranks: usize, tcp: bool) -> Vec<RankExit> {
    run_job_chaos(case, ranks, tcp, None)
}

/// Like [`run_job`], but with a `KAMPING_CHAOS` schedule exported to the
/// children — the socket-backend variant of `Universe::run_with_chaos`.
fn run_job_chaos(case: &str, ranks: usize, tcp: bool, chaos: Option<&str>) -> Vec<RankExit> {
    let extra: Vec<(&str, String)> = chaos
        .map(|c| ("KAMPING_CHAOS", c.to_string()))
        .into_iter()
        .collect();
    run_job_full(case, ranks, tcp, Backend::Socket, &extra)
}

/// Like [`run_job`], with one extra environment variable for the children.
fn run_job_env(
    case: &str,
    ranks: usize,
    tcp: bool,
    extra: Option<(&str, String)>,
) -> Vec<RankExit> {
    let extra: Vec<(&str, String)> = extra.into_iter().collect();
    run_job_full(case, ranks, tcp, Backend::Socket, &extra)
}

/// [`run_job`] over shm-xproc rings (every pair co-located).
fn run_ring_job(case: &str, ranks: usize) -> Vec<RankExit> {
    run_ring_job_chaos(case, ranks, None)
}

/// [`run_job_chaos`] over shm-xproc rings.
fn run_ring_job_chaos(case: &str, ranks: usize, chaos: Option<&str>) -> Vec<RankExit> {
    let extra: Vec<(&str, String)> = chaos
        .map(|c| ("KAMPING_CHAOS", c.to_string()))
        .into_iter()
        .collect();
    run_job_full(case, ranks, false, Backend::ShmXproc, &extra)
}

/// A mixed-topology job: ranks listed in `local` use rings among
/// themselves; every pair involving an unlisted rank stays on sockets.
fn run_mixed_job(case: &str, ranks: usize, local: &str) -> Vec<RankExit> {
    run_job_full(
        case,
        ranks,
        false,
        Backend::ShmXproc,
        &[("KAMPING_LOCAL_RANKS", local.to_string())],
    )
}

fn assert_all_success(case: &str, exits: &[RankExit]) {
    for e in exits {
        assert!(
            e.status.success(),
            "case {case}: rank {} exited with {}",
            e.rank,
            e.status
        );
    }
}

// ---------------------------------------------------------------------
// The case bodies, executed inside the child processes.
// ---------------------------------------------------------------------

fn case_fifo(comm: &RawComm) {
    if comm.rank() == 0 {
        for src in 1..comm.size() {
            for expect in 0..MSGS {
                let (payload, status) = comm.recv(src, 7).unwrap();
                assert_eq!(status.source, src);
                assert_eq!(decode(&payload), (src as u32, expect));
            }
        }
    } else {
        for seq in 0..MSGS {
            comm.send(0, 7, &seq_payload(comm.rank(), seq)).unwrap();
        }
    }
}

fn case_fifo_tags(comm: &RawComm) {
    if comm.rank() == 1 {
        for seq in 0..MSGS {
            comm.send(0, 10, &seq_payload(1, seq)).unwrap();
            comm.send(0, 20, &seq_payload(1, seq)).unwrap();
        }
    } else {
        // Drain the second tag first: tag-20 must overtake queued tag-10
        // messages while each tag stays FIFO — across the wire.
        for expect in 0..MSGS {
            let (payload, _) = comm.recv(1, 20).unwrap();
            assert_eq!(decode(&payload).1, expect);
        }
        for expect in 0..MSGS {
            let (payload, _) = comm.recv(1, 10).unwrap();
            assert_eq!(decode(&payload).1, expect);
        }
    }
}

fn case_any_source(comm: &RawComm) {
    // Senders 1..3 deposit into rank 0's mailbox one at a time: rank 0
    // acknowledges each deposit before unleashing the next sender, so the
    // arrival order is forced and ANY_SOURCE must observe exactly it.
    if comm.rank() == 0 {
        for expect in 1..comm.size() {
            let (payload, status) = comm.recv(ANY_SOURCE, 5).unwrap();
            assert_eq!(decode(&payload).0, expect as u32);
            assert_eq!(status.source, expect);
            if expect + 1 < comm.size() {
                comm.send(expect + 1, 1, b"go").unwrap();
            }
        }
    } else {
        if comm.rank() > 1 {
            comm.recv(0, 1).unwrap();
        }
        comm.send(0, 5, &seq_payload(comm.rank(), 0)).unwrap();
    }
}

fn case_wildcard_drain(comm: &RawComm) {
    let p = comm.size();
    if comm.rank() == 0 {
        let mut next_seq = vec![0u32; p];
        let mut total = 0usize;
        while total < (p - 1) * MSGS as usize {
            let (payload, status) = comm.recv(ANY_SOURCE, ANY_TAG).unwrap();
            let (src, seq) = decode(&payload);
            assert_eq!(src as usize, status.source);
            assert_eq!(status.tag, status.source as kamping_mpi::Tag);
            assert_eq!(seq, next_seq[status.source], "per-source FIFO broken");
            next_seq[status.source] += 1;
            total += 1;
        }
    } else {
        let tag = comm.rank() as kamping_mpi::Tag;
        for seq in 0..MSGS {
            comm.send(0, tag, &seq_payload(comm.rank(), seq)).unwrap();
        }
    }
}

fn case_issend(comm: &RawComm) {
    if comm.rank() == 0 {
        let mut req = comm.issend(1, 1, b"payload".to_vec()).unwrap();
        // Rank 1 is blocked waiting for the go message, so no Ack frame
        // can have come back yet.
        assert!(req.test().unwrap().is_none());
        comm.send(1, 0, b"go").unwrap();
        req.wait().unwrap();
    } else {
        comm.recv(0, 0).unwrap();
        let (payload, _) = comm.recv(0, 1).unwrap();
        assert_eq!(payload, b"payload");
    }
}

fn case_issend_failed_rank(comm: &RawComm) {
    if comm.rank() == 0 {
        let mut req = comm.issend(1, 42, b"never read".to_vec()).unwrap();
        comm.send(1, 0, b"posted").unwrap();
        assert_eq!(req.wait().unwrap_err(), MpiError::ProcFailed { rank: 1 });
        // Sends to an already-dead process complete locally.
        let mut req2 = comm.issend(1, 3, b"into the void".to_vec()).unwrap();
        req2.wait().unwrap();
    } else {
        comm.recv(0, 0).unwrap();
        comm.simulate_failure();
    }
}

fn case_probe(comm: &RawComm) {
    if comm.rank() == 0 {
        for _ in 0..2 * MSGS {
            let s = comm.probe(ANY_SOURCE, ANY_TAG).unwrap();
            let (payload, status) = comm.recv(s.source, s.tag).unwrap();
            assert_eq!(status, s);
            assert_eq!(payload.len(), s.bytes);
        }
    } else {
        let tag = comm.rank() as kamping_mpi::Tag;
        for seq in 0..MSGS {
            comm.send(0, tag, &seq_payload(comm.rank(), seq)).unwrap();
        }
    }
}

fn case_collectives(comm: &RawComm) {
    comm.barrier().unwrap();
    // Broadcast from rank 1.
    let mut buf = if comm.rank() == 1 {
        b"root-data".to_vec()
    } else {
        vec![0; 9]
    };
    comm.bcast(&mut buf, 1).unwrap();
    assert_eq!(buf, b"root-data");
    // Allreduce a u64 sum.
    let mut acc = (comm.rank() as u64).to_le_bytes().to_vec();
    comm.allreduce(
        &mut acc,
        &|a: &mut [u8], b: &[u8]| {
            let x = u64::from_le_bytes(a.try_into().unwrap());
            let y = u64::from_le_bytes(b.try_into().unwrap());
            a.copy_from_slice(&(x + y).to_le_bytes());
        },
        8,
    )
    .unwrap();
    let n = comm.size() as u64;
    assert_eq!(u64::from_le_bytes(acc.try_into().unwrap()), n * (n - 1) / 2);
    // Allgather one byte per rank.
    let gathered = comm.allgather(&[comm.rank() as u8]).unwrap();
    assert_eq!(gathered, (0..comm.size() as u8).collect::<Vec<_>>());
    // Sendrecv ring rotation (payload > INLINE_CAP to cover heap frames).
    let right = (comm.rank() + 1) % comm.size();
    let left = (comm.rank() + comm.size() - 1) % comm.size();
    let (got, _) = comm
        .sendrecv(right, 0, &[comm.rank() as u8; 100], left, 0)
        .unwrap();
    assert_eq!(got, vec![left as u8; 100]);
    comm.barrier().unwrap();
}

fn case_ibarrier(comm: &RawComm) {
    if comm.rank() == 0 {
        let mut req = comm.ibarrier().unwrap();
        // Nobody else entered yet (they wait for our go signal).
        assert!(req.test().unwrap().is_none());
        for dest in 1..comm.size() {
            comm.send(dest, 0, b"go").unwrap();
        }
        req.wait().unwrap();
    } else {
        comm.recv(0, 0).unwrap();
        let mut req = comm.ibarrier().unwrap();
        req.wait().unwrap();
    }
    // Successive barriers stay independent across processes.
    for _ in 0..5 {
        let mut req = comm.ibarrier().unwrap();
        req.wait().unwrap();
    }
}

fn case_ibarrier_dead_member(comm: &RawComm) {
    if comm.rank() == 2 {
        comm.simulate_failure();
        return;
    }
    // A bounded wait, not a test_any spin: the remote Failed frame must
    // surface as a typed failure well before the deadline.
    let mut req = comm.ibarrier().unwrap();
    let err = req.wait_timeout(Duration::from_secs(30)).unwrap_err();
    assert!(err.is_failure(), "expected a failure, got {err:?}");
}

/// Byte-level u64 sum for the blocking reduction twins.
fn byte_sum(a: &mut [u8], b: &[u8]) {
    let x = u64::from_le_bytes(a.try_into().unwrap());
    let y = u64::from_le_bytes(b.try_into().unwrap());
    a.copy_from_slice(&(x + y).to_le_bytes());
}

/// The same sum as an owned operator for the nonblocking twins.
fn sum_op() -> kamping_mpi::OwnedByteOp {
    std::sync::Arc::new(byte_sum)
}

/// Tentpole acceptance: every i-collective must produce exactly the bytes
/// of its blocking twin, across the wire. Runs with 5 ranks so the
/// `ialltoall` small-block path exercises the Bruck schedule (p > 4).
fn case_icoll(comm: &RawComm) {
    let p = comm.size();
    let me = comm.rank();

    // ibcast vs bcast (root 1).
    let mut expect = if me == 1 {
        b"root-data".to_vec()
    } else {
        vec![0; 9]
    };
    comm.bcast(&mut expect, 1).unwrap();
    let input = if me == 1 {
        b"root-data".to_vec()
    } else {
        Vec::new()
    };
    let mut req = comm.ibcast(input, 1).unwrap();
    assert_eq!(req.wait().unwrap(), expect);

    // iallreduce vs allreduce (u64 sum).
    let mine = (me as u64 + 3).to_le_bytes().to_vec();
    let mut expect = mine.clone();
    comm.allreduce(&mut expect, &byte_sum, 8).unwrap();
    let mut req = comm.iallreduce(mine, sum_op(), 8).unwrap();
    assert_eq!(req.wait().unwrap(), expect);

    // ireduce vs reduce (root 2).
    let mine = (me as u64 * 7).to_le_bytes().to_vec();
    let mut expect = mine.clone();
    comm.reduce(&mut expect, &byte_sum, 8, 2).unwrap();
    let mut req = comm.ireduce(mine, sum_op(), 8, 2).unwrap();
    let out = req.wait().unwrap();
    if me == 2 {
        assert_eq!(out, expect);
    } else {
        assert!(out.is_empty());
    }

    // iallgatherv vs allgatherv (rank r contributes r+1 bytes).
    let mine = vec![me as u8; me + 1];
    let counts: Vec<usize> = (0..p).map(|r| r + 1).collect();
    let expect = comm.allgatherv(&mine, &counts).unwrap();
    let mut req = comm.iallgatherv(mine, &counts).unwrap();
    assert_eq!(req.wait().unwrap(), expect);

    // ialltoall vs alltoall (3-byte blocks: Bruck when p > 4).
    let send: Vec<u8> = (0..p).flat_map(|d| [(me * p + d) as u8; 3]).collect();
    let expect = comm.alltoall(&send).unwrap();
    let mut req = comm.ialltoall(send).unwrap();
    assert_eq!(req.wait().unwrap(), expect);

    // ialltoallv vs alltoallv (send (me + d) % 3 bytes to destination d).
    let sc: Vec<usize> = (0..p).map(|d| (me + d) % 3).collect();
    let sd = kamping_mpi::coll::excl_prefix_sum(&sc);
    let rc: Vec<usize> = (0..p).map(|s| (s + me) % 3).collect();
    let rd = kamping_mpi::coll::excl_prefix_sum(&rc);
    let send: Vec<u8> = (0..p)
        .flat_map(|d| vec![(me * 10 + d) as u8; (me + d) % 3])
        .collect();
    let expect = comm.alltoallv(&send, &sc, &sd, &rc, &rd).unwrap();
    let mut req = comm.ialltoallv(send, &sc, &sd, &rc, &rd).unwrap();
    assert_eq!(req.wait().unwrap(), expect);

    // Multiple outstanding collectives, waited in reverse issue order:
    // per-issue schedule tags keep the envelope streams apart.
    let mut r1 = comm
        .iallreduce((1u64).to_le_bytes().to_vec(), sum_op(), 8)
        .unwrap();
    let mut r2 = comm.iallgather(vec![me as u8]).unwrap();
    let mut r3 = comm.ibarrier().unwrap();
    r3.wait().unwrap();
    assert_eq!(r2.wait().unwrap(), (0..p as u8).collect::<Vec<_>>());
    assert_eq!(r1.wait().unwrap(), (p as u64).to_le_bytes());
}

/// Satellite: a severed 0→1 link starves rank 1's i-collectives, which
/// must surface as typed `Timeout`s — not hangs — while rank 0 (whose
/// inbound traffic is intact) completes normally.
fn case_icoll_sever(comm: &RawComm) {
    let counts = vec![1usize; 2];
    let displs = vec![0usize, 1];
    if comm.rank() == 1 {
        // The reduce partial flows 1→0 (alive); the bcast 0→1 is cut.
        let mut req = comm
            .iallreduce(5u64.to_le_bytes().to_vec(), sum_op(), 8)
            .unwrap();
        let err = req.wait_timeout(Duration::from_millis(500)).unwrap_err();
        assert!(err.is_timeout(), "expected Timeout, got {err:?}");
        // The alltoallv block from rank 0 never arrives.
        let mut req = comm
            .ialltoallv(vec![7, 8], &counts, &displs, &counts, &displs)
            .unwrap();
        let err = req.wait_timeout(Duration::from_millis(500)).unwrap_err();
        assert!(err.is_timeout(), "expected Timeout, got {err:?}");
        // Keep rank 0 alive until both timeouts are observed — its exit
        // would turn rank 1's starvation into ProcFailed. 1→0 is intact.
        comm.send(0, 99, b"done").unwrap();
    } else {
        let mut req = comm
            .iallreduce(2u64.to_le_bytes().to_vec(), sum_op(), 8)
            .unwrap();
        assert_eq!(req.wait().unwrap(), 7u64.to_le_bytes());
        let mut req = comm
            .ialltoallv(vec![3, 4], &counts, &displs, &counts, &displs)
            .unwrap();
        assert_eq!(req.wait().unwrap(), vec![3, 7]);
        comm.recv(1, 99).unwrap();
    }
}

/// Satellite: a chaos-killed rank mid-`ialltoallv` must surface as a typed
/// failure on every survivor (each directly awaits the dead rank's block).
fn case_icoll_kill(comm: &RawComm) {
    let p = comm.size();
    let counts = vec![1usize; p];
    let displs: Vec<usize> = (0..p).collect();
    if comm.rank() == 2 {
        // The first send passes the kill budget; the collective's own
        // sends trigger the death, so rank 2 dies mid-schedule.
        comm.send(0, 9, b"first").unwrap();
        let _ = comm.ialltoallv(vec![9; p], &counts, &displs, &counts, &displs);
        return;
    }
    if comm.rank() == 0 {
        let (payload, _) = comm.recv(2, 9).unwrap();
        assert_eq!(payload, b"first");
    }
    let mut req = comm
        .ialltoallv(
            vec![comm.rank() as u8; p],
            &counts,
            &displs,
            &counts,
            &displs,
        )
        .unwrap();
    let err = req.wait_timeout(Duration::from_secs(30)).unwrap_err();
    assert!(err.is_failure(), "expected a failure, got {err:?}");
}

/// Satellite: the kill seed against `iallreduce` — the survivor directly
/// awaits the dead rank's reduce partial and must get `ProcFailed`.
fn case_icoll_kill_reduce(comm: &RawComm) {
    if comm.rank() == 1 {
        comm.send(0, 9, b"first").unwrap();
        // The reduce partial send (1→0) triggers the death.
        let _ = comm.iallreduce(4u64.to_le_bytes().to_vec(), sum_op(), 8);
        return;
    }
    let (payload, _) = comm.recv(1, 9).unwrap();
    assert_eq!(payload, b"first");
    let mut req = comm
        .iallreduce(1u64.to_le_bytes().to_vec(), sum_op(), 8)
        .unwrap();
    let err = req.wait_timeout(Duration::from_secs(30)).unwrap_err();
    assert!(err.is_failure(), "expected a failure, got {err:?}");
}

/// Satellite: a severed link (chaos drops the data, no failure mark) must
/// surface as `Timeout` on the starved receiver — on the socket backend,
/// where the wait parks on the process-local hub, not a shared one.
fn case_chaos_sever(comm: &RawComm) {
    if comm.rank() == 0 {
        comm.send(1, 3, b"vanishes").unwrap();
        // Reverse direction is unaffected by the directional cut.
        let (payload, _) = comm.recv(1, 4).unwrap();
        assert_eq!(payload, b"alive");
    } else {
        let err = comm
            .recv_timeout(0, 3, Duration::from_millis(500))
            .unwrap_err();
        assert!(err.is_timeout(), "expected Timeout, got {err:?}");
        comm.send(0, 4, b"alive").unwrap();
    }
}

/// Satellite: a chaos-injected rank death in *one* process must broadcast
/// the `Failed` control frame so every survivor gets `ProcFailed` — the
/// cross-process version of the shm chaos-kill test.
fn case_chaos_kill(comm: &RawComm) {
    if comm.rank() == 2 {
        // The first send passes the kill budget; the second triggers the
        // death (in this process's chaos layer) and is discarded.
        comm.send(0, 9, b"first").unwrap();
        comm.send(0, 9, b"second").unwrap();
        return;
    }
    if comm.rank() == 0 {
        let (payload, _) = comm.recv(2, 9).unwrap();
        assert_eq!(payload, b"first");
        let err = comm
            .recv_timeout(2, 9, Duration::from_secs(20))
            .unwrap_err();
        assert!(err.is_failure(), "expected ProcFailed, got {err:?}");
    }
    let mut req = comm.ibarrier().unwrap();
    let err = req.wait_timeout(Duration::from_secs(30)).unwrap_err();
    assert!(err.is_failure(), "expected a failure, got {err:?}");
}

/// Tentpole acceptance: the two-level (node-leader + intra-node)
/// collectives at p=32 across a mixed topology — two 16-rank "hosts"
/// joined by sockets, rings inside each. The topology must be discovered
/// from transport locality (not configured), and broadcast / allreduce /
/// reduce must produce the same bytes as the flat naive twins on the same
/// communicator.
fn case_hier_collectives(comm: &RawComm) {
    let p = comm.size();
    comm.set_coll_strategy(kamping_mpi::CollStrategy::Hier);
    // The locality probe must have split the job into the two launcher-
    // configured host groups, with the lowest rank of each as leader.
    let h = comm.hier_topo().unwrap();
    assert_eq!(h.groups.len(), 2, "expected two discovered host groups");
    assert_eq!(h.groups[0], (0..p / 2).collect::<Vec<_>>());
    assert_eq!(h.groups[1], (p / 2..p).collect::<Vec<_>>());
    // Pipelined hierarchical bcast from a non-leader root (the parent
    // exports a small KAMPING_BCAST_SEGMENT so this payload segments).
    let pattern: Vec<u8> = (0..4096u32).map(|i| (i * 7 % 251) as u8).collect();
    let mut buf = if comm.rank() == 5 {
        pattern.clone()
    } else {
        Vec::new()
    };
    comm.bcast(&mut buf, 5).unwrap();
    assert_eq!(buf, pattern);
    // Two-level allreduce: leaders exchange across the socket seam.
    let mut acc = (comm.rank() as u64).to_le_bytes().to_vec();
    comm.allreduce(&mut acc, &byte_sum, 8).unwrap();
    let n = p as u64;
    assert_eq!(u64::from_le_bytes(acc.try_into().unwrap()), n * (n - 1) / 2);
    // Two-level reduce rooted at the *second* group's leader.
    let mut acc = (comm.rank() as u64 + 1).to_le_bytes().to_vec();
    comm.reduce(&mut acc, &byte_sum, 8, p / 2).unwrap();
    if comm.rank() == p / 2 {
        assert_eq!(u64::from_le_bytes(acc.try_into().unwrap()), n * (n + 1) / 2);
    }
    // The naive twins interleave on the same communicator without
    // desynchronizing the collective sequence.
    let mut flat = (comm.rank() as u64).to_le_bytes().to_vec();
    comm.reduce_naive(&mut flat, &byte_sum, 8, 0).unwrap();
    comm.bcast_naive(&mut flat, 0).unwrap();
    assert_eq!(
        u64::from_le_bytes(flat.try_into().unwrap()),
        n * (n - 1) / 2
    );
    comm.barrier().unwrap();
}

/// Satellite: chaos kills the *second group's leader* exactly at its
/// inter-leader exchange post, mid two-level allreduce. Every survivor
/// must surface a typed failure — not hang: the members of the dead
/// leader's group starve waiting for the broadcast-down, the other leader
/// starves on the reduced partial, and the `Failed` broadcast (plus
/// peers' clean exits) must wake all of them.
fn case_hier_leader_kill(comm: &RawComm) {
    let p = comm.size();
    let leader = p / 2;
    comm.set_coll_strategy(kamping_mpi::CollStrategy::Hier);
    let mut acc = (comm.rank() as u64).to_le_bytes().to_vec();
    if comm.rank() == leader {
        // Post #1; the topology-build allgather (Bruck, 5 rounds) spends
        // #2-#6 of the kill budget, so the 7th post — this rank's reduced
        // partial to leader 0 — fires the death.
        comm.send(0, 9, b"first").unwrap();
        let _ = comm.allreduce(&mut acc, &byte_sum, 8);
        return;
    }
    if comm.rank() == 0 {
        let (payload, _) = comm.recv(leader, 9).unwrap();
        assert_eq!(payload, b"first");
    }
    let err = comm.allreduce(&mut acc, &byte_sum, 8).unwrap_err();
    assert!(err.is_failure(), "expected a failure, got {err:?}");
}

/// Satellite: chaos severs the leader→member link `16 -> 17` after its
/// first message (the topology-build allgather's Bruck round), so the cut
/// hits exactly the broadcast-down leg of the two-level allreduce. Rank
/// 17 starves, every other rank completes; the peers' clean exits must
/// convert rank 17's starvation into a typed `ProcFailed`, not a hang.
fn case_hier_sever(comm: &RawComm) {
    let p = comm.size();
    comm.set_coll_strategy(kamping_mpi::CollStrategy::Hier);
    let mut acc = (comm.rank() as u64).to_le_bytes().to_vec();
    let n = p as u64;
    if comm.rank() == p / 2 + 1 {
        let err = comm.allreduce(&mut acc, &byte_sum, 8).unwrap_err();
        assert!(err.is_failure(), "expected ProcFailed, got {err:?}");
    } else {
        comm.allreduce(&mut acc, &byte_sum, 8).unwrap();
        assert_eq!(u64::from_le_bytes(acc.try_into().unwrap()), n * (n - 1) / 2);
    }
}

fn case_revoke(comm: &RawComm) {
    match comm.rank() {
        0 => {
            // Blocks forever unless the remote revocation frame wakes it.
            let err = comm.recv(1, 99).unwrap_err();
            assert_eq!(err, MpiError::Revoked);
        }
        1 => {
            comm.revoke();
            assert!(comm.is_revoked());
        }
        _ => {
            comm.await_revoked();
            assert_eq!(comm.send(0, 0, b"x").unwrap_err(), MpiError::Revoked);
        }
    }
}

/// Satellite: a rank killed without warning (no panic path, no Finished
/// frame) must surface as `ProcFailed` on the survivors via the rendezvous
/// monitor, and the ULFM shrink-and-continue recovery must work across
/// processes.
fn case_kill_recovery(comm: &RawComm) {
    if comm.rank() == 2 {
        // Die abruptly: no unwinding, no goodbye of any kind.
        std::process::exit(7);
    }
    let err = comm.recv(2, 9).unwrap_err();
    assert_eq!(err, MpiError::ProcFailed { rank: 2 });
    let shrunk = comm.shrink().unwrap();
    assert_eq!(shrunk.size(), comm.size() - 1);
    // The shrunk communicator is fully operational.
    let mut acc = (shrunk.rank() as u64).to_le_bytes().to_vec();
    shrunk
        .allreduce(
            &mut acc,
            &|a: &mut [u8], b: &[u8]| {
                let x = u64::from_le_bytes(a.try_into().unwrap());
                let y = u64::from_le_bytes(b.try_into().unwrap());
                a.copy_from_slice(&(x + y).to_le_bytes());
            },
            8,
        )
        .unwrap();
    let n = shrunk.size() as u64;
    assert_eq!(u64::from_le_bytes(acc.try_into().unwrap()), n * (n - 1) / 2);
}

/// Satellite: traffic run under `KAMPING_TRACE=<dir>` — the parent merges
/// the per-rank traces afterwards. Every rank both sends and receives so
/// every pid shows up in the merged Perfetto document.
fn case_traced_work(comm: &RawComm) {
    let right = (comm.rank() + 1) % comm.size();
    let left = (comm.rank() + comm.size() - 1) % comm.size();
    let (got, _) = comm
        .sendrecv(right, 4, &[comm.rank() as u8; 16], left, 4)
        .unwrap();
    assert_eq!(got, vec![left as u8; 16]);
    comm.barrier().unwrap();
    comm.allgather(&[comm.rank() as u8]).unwrap();
}

/// Satellite: an idle-but-connected pair exchanges heartbeat `Ping`
/// frames (every 500ms), and those must not move the data-plane
/// message/byte counters the LogGP cost model reads.
fn case_heartbeat_idle(comm: &RawComm) {
    // Establish data connections in both directions first.
    if comm.rank() == 0 {
        comm.send(1, 1, b"hi").unwrap();
        comm.recv(1, 2).unwrap();
    } else {
        comm.recv(0, 1).unwrap();
        comm.send(0, 2, b"yo").unwrap();
    }
    let me = comm.my_global_rank();
    let before = comm.profile().ranks[me].clone();
    // Longer than two heartbeat intervals: pings are flowing.
    std::thread::sleep(Duration::from_millis(1300));
    let after = comm.profile().ranks[me].clone();
    assert_eq!(
        before.messages_sent, after.messages_sent,
        "heartbeat pings must not count as data-plane messages"
    );
    assert_eq!(
        before.bytes_sent, after.bytes_sent,
        "heartbeat pings must not count as data-plane bytes"
    );
    comm.barrier().unwrap();
}

/// Acceptance check of the progress-engine rewrite: the number of OS
/// threads per rank must be *independent of job size* (the old design
/// spent a reader + writer thread pair per peer). Every rank exchanges a
/// message with every other rank first, so all connections/rings exist
/// and every transport thread that will ever run is running; then each
/// rank counts its own threads and rank 0 reports the job-wide maximum.
fn case_thread_count(comm: &RawComm) {
    for peer in 0..comm.size() {
        if peer != comm.rank() {
            comm.send(peer, 1, b"x").unwrap();
        }
    }
    for peer in 0..comm.size() {
        if peer != comm.rank() {
            comm.recv(peer, 1).unwrap();
        }
    }
    comm.barrier().unwrap();
    let threads = std::fs::read_dir("/proc/self/task")
        .expect("procfs thread listing")
        .count() as u8;
    let all = comm.allgather(&[threads]).unwrap();
    if comm.rank() == 0 {
        let path = std::env::var("KAMPING_THREADS_OUT").expect("parent provides output path");
        let max = all.iter().copied().max().unwrap();
        std::fs::write(path, max.to_string()).expect("writing thread count");
    }
    comm.barrier().unwrap();
}

/// Satellite: the end-of-run profile exchange — the snapshot a process
/// gets back covers *every* rank's counters, not just its own (remote
/// rows used to read all-zero on the socket backend).
fn profile_gather_entry() {
    let ranks: usize = std::env::var("KAMPING_RANKS")
        .expect("socket env")
        .parse()
        .expect("integer rank count");
    let (_, profile) = Universe::run_profiled(1, |comm| {
        comm.barrier().unwrap();
        let gathered = comm.allgather(&[comm.rank() as u8]).unwrap();
        assert_eq!(gathered.len(), comm.size());
    });
    if std::env::var("KAMPING_CHAOS").is_ok() {
        // Under a chaos schedule the end-of-run exchange is skipped by
        // design (a lossy transport could stall it), so only the local
        // row is live — nothing cross-rank to assert.
        return;
    }
    use kamping_mpi::profile::Op;
    for r in 0..ranks {
        assert_eq!(
            profile.ranks[r].calls(Op::Barrier),
            1,
            "rank {r}'s barrier call missing from the gathered profile"
        );
        assert_eq!(profile.ranks[r].calls(Op::Allgather), 1);
        assert!(
            profile.ranks[r].messages_sent > 0,
            "rank {r}'s transport counters missing from the gathered profile"
        );
    }
}

/// The child-side entry point: a no-op under a plain `cargo test`, the
/// rank body when launched by one of the `socket_*` tests below.
#[test]
fn worker_entry() {
    let Ok(case) = std::env::var(CASE_VAR) else {
        return;
    };
    // A deadlocked child must not hang CI: die loudly instead. (This is a
    // watchdog, not synchronization — it never fires on the happy path.)
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(120));
        eprintln!("worker_entry: watchdog fired, aborting rank");
        std::process::exit(86);
    });
    if case == "profile_gather" {
        profile_gather_entry();
        return;
    }
    // Size argument is ignored under KAMPING_TRANSPORT=socket — the
    // launcher's --ranks is authoritative, as with mpirun -n.
    Universe::run(1, |comm| match case.as_str() {
        "fifo" => case_fifo(&comm),
        "fifo_tags" => case_fifo_tags(&comm),
        "any_source" => case_any_source(&comm),
        "wildcard_drain" => case_wildcard_drain(&comm),
        "issend" => case_issend(&comm),
        "issend_failed_rank" => case_issend_failed_rank(&comm),
        "probe" => case_probe(&comm),
        "collectives" => case_collectives(&comm),
        "ibarrier" => case_ibarrier(&comm),
        "ibarrier_dead_member" => case_ibarrier_dead_member(&comm),
        "icoll" => case_icoll(&comm),
        "icoll_sever" => case_icoll_sever(&comm),
        "icoll_kill" => case_icoll_kill(&comm),
        "icoll_kill_reduce" => case_icoll_kill_reduce(&comm),
        "chaos_sever" => case_chaos_sever(&comm),
        "chaos_kill" => case_chaos_kill(&comm),
        "hier_collectives" => case_hier_collectives(&comm),
        "hier_leader_kill" => case_hier_leader_kill(&comm),
        "hier_sever" => case_hier_sever(&comm),
        "revoke" => case_revoke(&comm),
        "kill_recovery" => case_kill_recovery(&comm),
        "traced_work" => case_traced_work(&comm),
        "heartbeat_idle" => case_heartbeat_idle(&comm),
        "thread_count" => case_thread_count(&comm),
        other => panic!("unknown case {other:?}"),
    });
}

// ---------------------------------------------------------------------
// The parent-side tests.
// ---------------------------------------------------------------------

#[test]
fn socket_fifo_per_source_and_tag() {
    assert_all_success("fifo", &run_job("fifo", 4, false));
}

#[test]
fn socket_fifo_holds_per_tag_out_of_order_drain() {
    assert_all_success("fifo_tags", &run_job("fifo_tags", 2, false));
}

#[test]
fn socket_any_source_follows_arrival_stamps() {
    assert_all_success("any_source", &run_job("any_source", 4, false));
}

#[test]
fn socket_wildcard_drain_keeps_per_source_fifo() {
    assert_all_success("wildcard_drain", &run_job("wildcard_drain", 4, false));
}

#[test]
fn socket_issend_completes_only_on_match() {
    assert_all_success("issend", &run_job("issend", 2, false));
}

#[test]
fn socket_issend_to_failing_rank_errors() {
    assert_all_success(
        "issend_failed_rank",
        &run_job("issend_failed_rank", 2, false),
    );
}

#[test]
fn socket_probe_and_recv_agree() {
    assert_all_success("probe", &run_job("probe", 3, false));
}

#[test]
fn socket_collectives_end_to_end() {
    assert_all_success("collectives", &run_job("collectives", 4, false));
}

#[test]
fn socket_collectives_over_tcp() {
    assert_all_success("collectives", &run_job("collectives", 3, true));
}

#[test]
fn socket_ibarrier_completes_after_all_enter() {
    assert_all_success("ibarrier", &run_job("ibarrier", 3, false));
}

#[test]
fn socket_ibarrier_detects_dead_member() {
    assert_all_success(
        "ibarrier_dead_member",
        &run_job("ibarrier_dead_member", 3, false),
    );
}

#[test]
fn socket_icoll_matches_blocking_twins() {
    assert_all_success("icoll", &run_job("icoll", 5, false));
}

#[test]
fn socket_icoll_survives_delay_chaos() {
    // Delay chaos is semantics-preserving, so the full equivalence sweep
    // must pass unchanged under it.
    assert_all_success(
        "icoll",
        &run_job_chaos("icoll", 5, false, Some("5:delay=20@2")),
    );
}

#[test]
fn socket_icoll_severed_link_times_out() {
    assert_all_success(
        "icoll_sever",
        &run_job_chaos("icoll_sever", 2, false, Some("11:sever=0->1@0")),
    );
}

#[test]
fn socket_icoll_killed_rank_fails_alltoallv() {
    assert_all_success(
        "icoll_kill",
        &run_job_chaos("icoll_kill", 3, false, Some("13:kill=2@1")),
    );
}

#[test]
fn socket_icoll_killed_rank_fails_iallreduce() {
    assert_all_success(
        "icoll_kill_reduce",
        &run_job_chaos("icoll_kill_reduce", 2, false, Some("13:kill=1@1")),
    );
}

#[test]
fn socket_chaos_severed_link_times_out() {
    assert_all_success(
        "chaos_sever",
        &run_job_chaos("chaos_sever", 2, false, Some("11:sever=0->1@0")),
    );
}

#[test]
fn socket_chaos_kill_broadcasts_proc_failed() {
    assert_all_success(
        "chaos_kill",
        &run_job_chaos("chaos_kill", 3, false, Some("7:kill=2@1")),
    );
}

#[test]
fn socket_collectives_survive_delay_chaos() {
    // Delay chaos is semantics-preserving (per-channel FIFO), so the full
    // collectives case must pass unchanged under it — the property the CI
    // chaos-soak job leans on.
    assert_all_success(
        "collectives",
        &run_job_chaos("collectives", 3, false, Some("3:delay=30@2")),
    );
}

#[test]
fn socket_revoke_interrupts_blocked_peers() {
    assert_all_success("revoke", &run_job("revoke", 3, false));
}

#[test]
fn socket_trace_merges_time_sorted_across_processes() {
    const RANKS: usize = 3;
    let dir = std::env::temp_dir().join(format!("kamping-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creating trace dir");
    let exits = run_job_env(
        "traced_work",
        RANKS,
        false,
        Some(("KAMPING_TRACE", dir.display().to_string())),
    );
    assert_all_success("traced_work", &exits);

    for r in 0..RANKS {
        assert!(
            dir.join(format!("trace-rank{r}.jsonl")).exists(),
            "rank {r} must write its per-process trace"
        );
    }
    let out = dir.join("merged.json");
    let report = kamping_mpi::trace::merge_trace_dir(&dir, &out).expect("merging traces");
    assert!(report.events > 0, "merged trace must contain events");
    assert_eq!(
        report.total_dropped(),
        0,
        "this tiny job must not overflow any rank's ring: {:?}",
        report.dropped
    );
    let doc = std::fs::read_to_string(&out).expect("reading merged trace");
    assert!(doc.starts_with("{\"displayTimeUnit\""));

    // Merged events are globally time-sorted and every rank contributed.
    let mut last = f64::NEG_INFINITY;
    let mut events = 0usize;
    for line in doc.lines() {
        // The dropped-events metadata record also carries a "ts" key but is
        // not one of the merged events.
        if line.contains("\"ph\":\"M\"") {
            continue;
        }
        let Some(at) = line.find("\"ts\":") else {
            continue;
        };
        let rest = &line[at + 5..];
        let end = rest
            .find(|c: char| c != '.' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        let ts: f64 = rest[..end].parse().expect("numeric ts");
        assert!(ts >= last, "merged trace out of order: {ts} after {last}");
        last = ts;
        events += 1;
    }
    assert_eq!(events, report.events);
    for r in 0..RANKS {
        assert!(
            doc.contains(&format!("\"src\":{r}")),
            "rank {r} posted no traced envelopes"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn socket_profile_snapshot_covers_remote_ranks() {
    assert_all_success("profile_gather", &run_job("profile_gather", 4, false));
}

#[test]
fn socket_heartbeats_stay_out_of_message_counters() {
    assert_all_success("heartbeat_idle", &run_job("heartbeat_idle", 2, false));
}

#[test]
fn socket_killed_rank_surfaces_and_survivors_recover() {
    let exits = run_job("kill_recovery", 4, false);
    for e in &exits {
        if e.rank == 2 {
            assert_eq!(
                e.status.code(),
                Some(7),
                "killed rank must report its own exit code"
            );
        } else {
            assert!(
                e.status.success(),
                "survivor rank {} exited with {}",
                e.rank,
                e.status
            );
        }
    }
}

// ---------------------------------------------------------------------
// The same invariants over shm-xproc rings.
// ---------------------------------------------------------------------

#[test]
fn ring_fifo_per_source_and_tag() {
    assert_all_success("fifo", &run_ring_job("fifo", 4));
}

#[test]
fn ring_fifo_holds_per_tag_out_of_order_drain() {
    assert_all_success("fifo_tags", &run_ring_job("fifo_tags", 2));
}

#[test]
fn ring_any_source_follows_arrival_stamps() {
    assert_all_success("any_source", &run_ring_job("any_source", 4));
}

#[test]
fn ring_wildcard_drain_keeps_per_source_fifo() {
    assert_all_success("wildcard_drain", &run_ring_job("wildcard_drain", 4));
}

#[test]
fn ring_issend_completes_only_on_match() {
    assert_all_success("issend", &run_ring_job("issend", 2));
}

#[test]
fn ring_issend_to_failing_rank_errors() {
    assert_all_success("issend_failed_rank", &run_ring_job("issend_failed_rank", 2));
}

#[test]
fn ring_probe_and_recv_agree() {
    assert_all_success("probe", &run_ring_job("probe", 3));
}

#[test]
fn ring_collectives_end_to_end() {
    assert_all_success("collectives", &run_ring_job("collectives", 4));
}

#[test]
fn ring_ibarrier_completes_after_all_enter() {
    assert_all_success("ibarrier", &run_ring_job("ibarrier", 3));
}

#[test]
fn ring_ibarrier_detects_dead_member() {
    assert_all_success(
        "ibarrier_dead_member",
        &run_ring_job("ibarrier_dead_member", 3),
    );
}

#[test]
fn ring_icoll_matches_blocking_twins() {
    assert_all_success("icoll", &run_ring_job("icoll", 5));
}

#[test]
fn ring_icoll_severed_link_times_out() {
    assert_all_success(
        "icoll_sever",
        &run_ring_job_chaos("icoll_sever", 2, Some("11:sever=0->1@0")),
    );
}

#[test]
fn ring_icoll_killed_rank_fails_alltoallv() {
    assert_all_success(
        "icoll_kill",
        &run_ring_job_chaos("icoll_kill", 3, Some("13:kill=2@1")),
    );
}

#[test]
fn ring_icoll_killed_rank_fails_iallreduce() {
    assert_all_success(
        "icoll_kill_reduce",
        &run_ring_job_chaos("icoll_kill_reduce", 2, Some("13:kill=1@1")),
    );
}

#[test]
fn ring_chaos_severed_link_times_out() {
    // Chaos wraps the transport *above* the ring/socket split, so fault
    // injection applies to ring traffic identically.
    assert_all_success(
        "chaos_sever",
        &run_ring_job_chaos("chaos_sever", 2, Some("11:sever=0->1@0")),
    );
}

#[test]
fn ring_chaos_kill_broadcasts_proc_failed() {
    assert_all_success(
        "chaos_kill",
        &run_ring_job_chaos("chaos_kill", 3, Some("7:kill=2@1")),
    );
}

#[test]
fn ring_collectives_survive_delay_chaos() {
    assert_all_success(
        "collectives",
        &run_ring_job_chaos("collectives", 3, Some("3:delay=30@2")),
    );
}

#[test]
fn ring_revoke_interrupts_blocked_peers() {
    assert_all_success("revoke", &run_ring_job("revoke", 3));
}

#[test]
fn ring_killed_rank_surfaces_and_survivors_recover() {
    let exits = run_ring_job("kill_recovery", 4);
    for e in &exits {
        if e.rank == 2 {
            assert_eq!(e.status.code(), Some(7));
        } else {
            assert!(
                e.status.success(),
                "survivor rank {} exited with {}",
                e.rank,
                e.status
            );
        }
    }
}

// ---------------------------------------------------------------------
// Mixed topology: rings inside the local set, sockets across it.
// ---------------------------------------------------------------------

#[test]
fn mixed_backend_collectives_span_rings_and_sockets() {
    // Ranks 0,1 talk over rings; every pair touching ranks 2,3 uses
    // sockets. The collectives case sweeps broadcast/allreduce/allgather/
    // sendrecv over all pairs, so both wires carry traffic in one job.
    assert_all_success("collectives", &run_mixed_job("collectives", 4, "0,1"));
}

#[test]
fn mixed_backend_keeps_per_source_fifo() {
    assert_all_success("wildcard_drain", &run_mixed_job("wildcard_drain", 4, "0,1"));
}

/// Tentpole acceptance at production-ish scale: 32 ranks, two 16-rank
/// "hosts" (rings inside each, sockets across), hierarchical strategy on,
/// small broadcast segment so the pipelined bcast actually segments.
#[test]
fn mixed_backend_hierarchical_collectives_p32() {
    let exits = run_job_full(
        "hier_collectives",
        32,
        false,
        Backend::ShmXproc,
        &[
            ("KAMPING_LOCAL_RANKS", "0-15;16-31".to_string()),
            ("KAMPING_BCAST_SEGMENT", "1024".to_string()),
        ],
    );
    assert_all_success("hier_collectives", &exits);
}

/// Chaos kill of a group leader mid two-level allreduce: every survivor
/// surfaces a typed failure instead of hanging.
///
/// The kill budget counts the victim's posts under the *logarithmic*
/// schedules (topology-build Bruck + leader exchange); the `naive`
/// feature swaps in linear algorithms with different message counts, so
/// the arithmetic only holds on the default dispatch.
#[cfg(not(feature = "naive"))]
#[test]
fn mixed_backend_hier_leader_death_fails_allreduce() {
    let exits = run_job_full(
        "hier_leader_kill",
        32,
        false,
        Backend::ShmXproc,
        &[
            ("KAMPING_LOCAL_RANKS", "0-15;16-31".to_string()),
            ("KAMPING_CHAOS", "13:kill=16@6".to_string()),
        ],
    );
    // The victim's exit status is not asserted (its own teardown races
    // the locally-fired death); every survivor must succeed.
    for e in &exits {
        if e.rank != 16 {
            assert!(
                e.status.success(),
                "survivor rank {} exited with {}",
                e.rank,
                e.status
            );
        }
    }
}

/// Chaos sever of the leader→member broadcast-down link: the starved
/// member gets `ProcFailed` once its peers finish; nobody hangs.
///
/// Like the leader-kill case, the sever offset is pinned to the
/// logarithmic schedules' message counts — skipped under `naive`.
#[cfg(not(feature = "naive"))]
#[test]
fn mixed_backend_hier_severed_bcast_link_fails_starved_member() {
    let exits = run_job_full(
        "hier_sever",
        32,
        false,
        Backend::ShmXproc,
        &[
            ("KAMPING_LOCAL_RANKS", "0-15;16-31".to_string()),
            ("KAMPING_CHAOS", "11:sever=16->17@1".to_string()),
        ],
    );
    assert_all_success("hier_sever", &exits);
}

// ---------------------------------------------------------------------
// Thread-count flatness (acceptance criterion of the engine rewrite).
// ---------------------------------------------------------------------

/// Runs the `thread_count` case and returns the job-wide maximum thread
/// count per rank after all-pairs traffic.
fn max_threads(ranks: usize, backend: Backend) -> u32 {
    let out = std::env::temp_dir().join(format!(
        "kamping-threads-{}-{ranks}-{}",
        std::process::id(),
        backend.transport_name(),
    ));
    let exits = run_job_full(
        "thread_count",
        ranks,
        false,
        backend,
        &[("KAMPING_THREADS_OUT", out.display().to_string())],
    );
    assert_all_success("thread_count", &exits);
    let n = std::fs::read_to_string(&out)
        .expect("rank 0 wrote the thread count")
        .trim()
        .parse()
        .expect("numeric thread count");
    let _ = std::fs::remove_file(&out);
    n
}

#[test]
fn thread_count_per_rank_is_flat_in_job_size() {
    // The seed design spawned a reader thread per inbound connection and
    // a writer thread per outbound one: rank 0 of a p-rank job idled at
    // 2(p-1)+monitors threads. The progress engine pins this to: main +
    // engine + watchdog (this harness) + one monitor on rank 0, plus one
    // ring consumer under shm-xproc — independent of p.
    let socket_small = max_threads(2, Backend::Socket);
    let socket_large = max_threads(8, Backend::Socket);
    assert_eq!(
        socket_small, socket_large,
        "socket backend thread count must not grow with job size"
    );
    assert!(
        socket_large <= 6,
        "unexpectedly many threads per rank: {socket_large}"
    );

    let ring_small = max_threads(2, Backend::ShmXproc);
    let ring_large = max_threads(8, Backend::ShmXproc);
    assert_eq!(
        ring_small, ring_large,
        "shm-xproc thread count must not grow with job size"
    );
    assert!(ring_large <= 7, "unexpectedly many threads: {ring_large}");
}
