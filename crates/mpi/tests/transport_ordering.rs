//! Transport ordering invariants under the sharded per-sender lanes.
//!
//! The mailbox keeps one lane per sender plus a global arrival stamp, so
//! three properties must survive any interleaving:
//!
//! 1. FIFO non-overtaking per (source, tag, context) — MPI's ordering rule;
//! 2. `ANY_SOURCE` matches in *arrival* order across lanes (the stamp), so
//!    causally ordered sends from different ranks are received in causal
//!    order;
//! 3. `issend` completes exactly when the envelope is matched (or the
//!    destination is gone), never early.

use kamping_mpi::{MpiError, Universe, ANY_SOURCE, ANY_TAG};

const MSGS: u32 = 50;

fn seq_payload(src: usize, seq: u32) -> Vec<u8> {
    let mut v = (src as u32).to_le_bytes().to_vec();
    v.extend_from_slice(&seq.to_le_bytes());
    v
}

fn decode(payload: &[u8]) -> (u32, u32) {
    (
        u32::from_le_bytes(payload[..4].try_into().unwrap()),
        u32::from_le_bytes(payload[4..8].try_into().unwrap()),
    )
}

#[test]
fn fifo_per_source_and_tag_under_concurrent_senders() {
    Universe::run(4, |comm| {
        if comm.rank() == 0 {
            // Drain source by source; each source's stream must be in order
            // even though the three senders run concurrently.
            for src in 1..comm.size() {
                for expect in 0..MSGS {
                    let (payload, status) = comm.recv(src, 7).unwrap();
                    assert_eq!(status.source, src);
                    assert_eq!(decode(&payload), (src as u32, expect));
                }
            }
        } else {
            for seq in 0..MSGS {
                comm.send(0, 7, &seq_payload(comm.rank(), seq)).unwrap();
            }
        }
    });
}

#[test]
fn fifo_holds_per_tag_when_receiver_drains_out_of_order() {
    Universe::run(2, |comm| {
        if comm.rank() == 1 {
            // Interleave two tags from one sender.
            for seq in 0..MSGS {
                comm.send(0, 10, &seq_payload(1, seq)).unwrap();
                comm.send(0, 20, &seq_payload(1, seq)).unwrap();
            }
        } else {
            // Receive the *second* tag first: tag-20 messages must overtake
            // the queued tag-10 ones, while each tag stays FIFO.
            for expect in 0..MSGS {
                let (payload, _) = comm.recv(1, 20).unwrap();
                assert_eq!(decode(&payload).1, expect);
            }
            for expect in 0..MSGS {
                let (payload, _) = comm.recv(1, 10).unwrap();
                assert_eq!(decode(&payload).1, expect);
            }
        }
    });
}

#[test]
fn any_source_respects_causal_arrival_order() {
    // Ranks 1, 2, 3 deposit into distinct lanes of rank 0's mailbox, but a
    // token chain makes the deposits causally ordered. The arrival stamps
    // must make ANY_SOURCE yield them in that order, not lane order.
    Universe::run(4, |comm| match comm.rank() {
        0 => {
            for expect in [1u32, 2, 3] {
                let (payload, status) = comm.recv(ANY_SOURCE, 5).unwrap();
                assert_eq!(decode(&payload).0, expect);
                assert_eq!(status.source as u32, expect);
            }
        }
        1 => {
            comm.send(0, 5, &seq_payload(1, 0)).unwrap();
            comm.send(2, 1, b"token").unwrap();
        }
        2 => {
            comm.recv(1, 1).unwrap();
            comm.send(0, 5, &seq_payload(2, 0)).unwrap();
            comm.send(3, 1, b"token").unwrap();
        }
        _ => {
            comm.recv(2, 1).unwrap();
            comm.send(0, 5, &seq_payload(3, 0)).unwrap();
        }
    });
}

#[test]
fn wildcard_recv_drains_all_lanes_without_loss() {
    Universe::run(8, |comm| {
        let p = comm.size();
        if comm.rank() == 0 {
            let mut next_seq = vec![0u32; p];
            let mut total = 0usize;
            while total < (p - 1) * MSGS as usize {
                let (payload, status) = comm.recv(ANY_SOURCE, ANY_TAG).unwrap();
                let (src, seq) = decode(&payload);
                assert_eq!(src as usize, status.source);
                assert_eq!(status.tag, status.source as kamping_mpi::Tag);
                // Per-source FIFO must hold even through wildcard receives.
                assert_eq!(seq, next_seq[status.source]);
                next_seq[status.source] += 1;
                total += 1;
            }
        } else {
            let tag = comm.rank() as kamping_mpi::Tag;
            for seq in 0..MSGS {
                comm.send(0, tag, &seq_payload(comm.rank(), seq)).unwrap();
            }
        }
    });
}

#[test]
fn issend_completes_only_when_matched() {
    Universe::run(2, |comm| {
        if comm.rank() == 0 {
            let mut req = comm.issend(1, 1, b"payload".to_vec()).unwrap();
            // Rank 1 is blocked waiting for the go message, so the issend
            // cannot have been matched yet.
            assert!(req.test().unwrap().is_none());
            comm.send(1, 0, b"go").unwrap();
            req.wait().unwrap();
        } else {
            comm.recv(0, 0).unwrap();
            let (payload, _) = comm.recv(0, 1).unwrap();
            assert_eq!(payload, b"payload");
        }
    });
}

#[test]
fn issend_unmatched_to_failing_rank_errors() {
    Universe::run(2, |comm| {
        if comm.rank() == 0 {
            // Post an envelope rank 1 will never receive, prove it is in
            // rank 1's mailbox (the token is ordered behind nothing), then
            // let rank 1 die. The pending issend must fail, not hang.
            let mut req = comm.issend(1, 42, b"never read".to_vec()).unwrap();
            comm.send(1, 0, b"posted").unwrap();
            assert_eq!(req.wait().unwrap_err(), MpiError::ProcFailed { rank: 1 });
        } else {
            comm.recv(0, 0).unwrap();
            comm.simulate_failure();
        }
    });
}

#[test]
fn issend_to_already_failed_rank_completes_locally() {
    // Like MPI, sends to an already-dead process may complete locally; the
    // failure surfaces at operations that need the peer.
    Universe::run(2, |comm| {
        if comm.rank() == 0 {
            assert_eq!(comm.await_failure(), 1);
            let mut req = comm.issend(1, 3, b"into the void".to_vec()).unwrap();
            req.wait().unwrap();
        } else {
            comm.simulate_failure();
        }
    });
}

#[test]
fn probe_then_recv_agree_on_wildcards() {
    Universe::run(3, |comm| {
        if comm.rank() == 0 {
            for _ in 0..2 * MSGS {
                let s = comm.probe(ANY_SOURCE, ANY_TAG).unwrap();
                let (payload, status) = comm.recv(s.source, s.tag).unwrap();
                // The probed envelope must be the one the receive takes:
                // same source, tag and size.
                assert_eq!(status, s);
                assert_eq!(payload.len(), s.bytes);
            }
        } else {
            let tag = comm.rank() as kamping_mpi::Tag;
            for seq in 0..MSGS {
                comm.send(0, tag, &seq_payload(comm.rank(), seq)).unwrap();
            }
        }
    });
}

#[test]
fn icollective_waits_survive_shm_notifier_cycles() {
    // Regression: `wait` used to run its schedule-stepping attempt while
    // holding the owner's mailbox gate. On the shm backend a step's post
    // delivers inline, and the peer's collective notifier — still on the
    // waiter's thread — steps the peer's schedule, whose own posts can
    // circle back at p = 6 (round distances 1, 2, 4: A posts to A+2, which
    // posts to A+2+4 ≡ A mod 6) and re-enter `Mailbox::post` on the
    // waiter's mailbox, self-deadlocking on the gate mutex it already held.
    Universe::run(6, |comm| {
        for round in 0..8u8 {
            let mut bar = comm.ibarrier().unwrap();
            bar.wait().unwrap();
            let mut gather = comm.iallgather(vec![comm.rank() as u8, round]).unwrap();
            let got = gather.wait().unwrap();
            let want: Vec<u8> = (0..comm.size() as u8).flat_map(|r| [r, round]).collect();
            assert_eq!(got, want, "round {round}");
        }
    });
}

#[test]
fn icollective_fault_scan_rescans_after_schedule_advances() {
    // Regression: the engine caches "fault scan found nothing" per fault
    // epoch. A failure mark applied while a schedule still waits on a
    // *live* rank must be re-examined when the schedule later advances
    // onto the dead one — no further mark will arrive to bump the epoch,
    // so a stale cache turns a prompt ProcFailed into a timeout.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;
    let hold = std::sync::Arc::new(AtomicBool::new(false));
    Universe::run(3, move |comm| {
        match comm.rank() {
            2 => {
                // Die immediately — but keep the thread parked so no
                // Finished mark bumps the fault epoch later and rescues a
                // stale scan cache by accident.
                comm.simulate_failure();
                while !hold.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            1 => {
                // Issue while rank 0 is held back: the dissemination
                // schedule (p = 3) first waits on rank 0's round-0 signal.
                let mut req = comm.ibarrier().unwrap();
                assert_eq!(comm.await_failure(), 2);
                // Force a scan with rank 2 already dead but the schedule
                // still blocked on live rank 0 — this is what goes stale.
                assert!(!req.is_complete());
                // Rank 0's round-0 signal now advances the schedule onto
                // dead rank 2 with no further fault mark in flight.
                comm.send(0, 5, b"go").unwrap();
                let err = req.wait_timeout(Duration::from_secs(10)).unwrap_err();
                hold.store(true, Ordering::Release);
                assert!(err.is_failure(), "expected ProcFailed, got {err:?}");
            }
            _ => {
                comm.recv(1, 5).unwrap();
                // Issue posts the round-0 signal to rank 1 eagerly; the
                // dropped request is adopted by the engine.
                let _ = comm.ibarrier().unwrap();
                // Stay alive until rank 1 has its verdict (finishing would
                // bump the epoch and mask the bug).
                while !hold.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    });
}
