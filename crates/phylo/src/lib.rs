//! # kamping-phylo — a RAxML-NG-like phylogenetic inference kernel
//!
//! §IV-C of the paper integrates KaMPIng into RAxML-NG, a maximum-
//! likelihood phylogenetic inference tool whose MPI abstraction layer
//! (700+ lines over pthreads + MPI) shrinks dramatically — Fig. 11 shows
//! the serialize + size-broadcast + payload-broadcast helper collapsing to
//! a one-liner — with *no measurable overhead* at nearly 700 MPI calls per
//! second and with the same results.
//!
//! RAxML-NG itself is a large C++ application we cannot port; what the
//! experiment actually exercises is its **communication skeleton**:
//!
//! * sites of the alignment are distributed across ranks; every
//!   evaluation reduces per-category local log-likelihood vectors with an
//!   `allreduce` (the ~700 calls/s loop);
//! * model updates (a struct of strings and float vectors) are broadcast
//!   from rank 0 through serialization.
//!
//! This crate reproduces that skeleton with a synthetic likelihood
//! function, implemented against both abstraction layers: [`plain`] is
//! the hand-written helper of Fig. 11 (explicit serialization, separate
//! size and payload broadcasts on the raw substrate), [`kamping_layer`]
//! is the one-liner. The `raxml_phylo` harness in `kamping-bench`
//! measures call rate and runtime parity (T-RAX in EXPERIMENTS.md).

use kamping::prelude::*;
use kamping_mpi::RawComm;
use kamping_serial::serial_struct;

/// An evolutionary model — the kind of heap-backed object RAxML-NG
/// broadcasts between ranks (paper Fig. 11).
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Substitution model name (e.g. "GTR+G").
    pub name: String,
    /// Substitution rates.
    pub rates: Vec<f64>,
    /// Base frequencies.
    pub freqs: Vec<f64>,
    /// Branch lengths of the current tree.
    pub branch_lengths: Vec<f64>,
}

serial_struct!(Model {
    name,
    rates,
    freqs,
    branch_lengths
});

impl Model {
    /// A deterministic starting model with `branches` branch lengths.
    pub fn initial(branches: usize) -> Self {
        Model {
            name: "GTR+G".to_string(),
            rates: vec![1.0, 0.5, 0.25, 0.125, 0.0625, 1.5],
            freqs: vec![0.25; 4],
            branch_lengths: (0..branches).map(|i| 0.1 + 0.01 * i as f64).collect(),
        }
    }

    /// Deterministically perturbs the model (what an optimizer step does).
    pub fn perturb(&mut self, step: u64) {
        let f = 1.0 + ((step % 7) as f64 - 3.0) * 1e-3;
        for r in &mut self.rates {
            *r *= f;
        }
        for b in &mut self.branch_lengths {
            *b = (*b * f).max(1e-6);
        }
    }
}

/// Synthetic per-site log-likelihood: smooth in the model parameters,
/// deterministic in the site index — enough to make the reduction values
/// depend on every input, so both layers can be checked for identical
/// results.
fn site_loglh(model: &Model, site: u64, category: usize) -> f64 {
    let r = model.rates[category % model.rates.len()];
    let b = model.branch_lengths[(site as usize) % model.branch_lengths.len()];
    -((site as f64 + 1.0).ln() * r * b + model.freqs[(site as usize) % 4])
}

/// Evaluates the local partial log-likelihood vector (one entry per rate
/// category) over this rank's site range.
pub fn local_partial(model: &Model, sites: std::ops::Range<u64>, categories: usize) -> Vec<f64> {
    let mut acc = vec![0.0f64; categories];
    for site in sites {
        for (c, slot) in acc.iter_mut().enumerate() {
            *slot += site_loglh(model, site, c);
        }
    }
    acc
}

/// The hand-written abstraction layer (paper Fig. 11, *before*).
pub mod plain {
    use super::*;

    // LOC-BEGIN phylo_bcast_plain
    /// Broadcast a model by hand: serialize at the master, broadcast the
    /// size, broadcast the payload, deserialize everywhere else — the
    /// structure of RAxML-NG's original `mpi_broadcast`.
    pub fn mpi_broadcast_model(comm: &RawComm, model: &mut Model) {
        if comm.size() > 1 {
            let master = comm.rank() == 0;
            let mut payload = if master {
                kamping_serial::to_bytes(model)
            } else {
                Vec::new()
            };
            let mut size_buf = (payload.len() as u64).to_le_bytes().to_vec();
            comm.bcast(&mut size_buf, 0).expect("size bcast");
            let size = u64::from_le_bytes(size_buf.try_into().unwrap()) as usize;
            if !master {
                payload = vec![0u8; size];
            }
            comm.bcast(&mut payload, 0).expect("payload bcast");
            if !master {
                *model = kamping_serial::from_bytes(&payload).expect("deserialize");
            }
        }
    }
    // LOC-END phylo_bcast_plain

    /// Reduce the partial log-likelihood vector by hand.
    pub fn allreduce_partials(comm: &RawComm, partials: &mut Vec<f64>) {
        let mut wire: Vec<u8> = partials.iter().flat_map(|v| v.to_le_bytes()).collect();
        let add = |a: &mut [u8], b: &[u8]| {
            let x = f64::from_le_bytes(a.try_into().unwrap());
            let y = f64::from_le_bytes(b.try_into().unwrap());
            a.copy_from_slice(&(x + y).to_le_bytes());
        };
        comm.allreduce(&mut wire, &add, 8).expect("allreduce");
        *partials = wire
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
    }
}

/// The kamping abstraction layer (paper Fig. 11, *after*).
pub mod kamping_layer {
    use super::*;

    // LOC-BEGIN phylo_bcast_kamping
    /// Broadcast a model: `bcast_object` serializes, sizes and
    /// deserializes internally — the Fig. 11 one-liner.
    pub fn mpi_broadcast_model(comm: &Communicator, model: &mut Model) -> KResult<()> {
        if comm.size() > 1 {
            comm.bcast_object(model, 0)?;
        }
        Ok(())
    }
    // LOC-END phylo_bcast_kamping

    /// Reduce the partial log-likelihood vector.
    pub fn allreduce_partials(comm: &Communicator, partials: &mut Vec<f64>) -> KResult<()> {
        *partials = comm
            .allreduce(send_buf(partials))
            .op(|a: f64, b: f64| a + b)
            .call()?
            .into_recv_buf();
        Ok(())
    }
}

/// Which abstraction layer the inference loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Hand-written helpers on the raw substrate.
    Plain,
    /// kamping one-liners.
    Kamping,
}

/// Outcome of an inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceStats {
    /// Final global log-likelihood.
    pub final_score: f64,
    /// Communication calls issued by this rank (allreduces + broadcasts).
    pub comm_calls: u64,
}

/// Runs `iterations` likelihood evaluations with a model broadcast every
/// `bcast_interval` iterations — the RAxML-NG communication skeleton.
/// Collective; every rank gets the same final score.
pub fn run_inference(
    comm: &Communicator,
    layer: Layer,
    iterations: u64,
    sites_per_rank: u64,
    categories: usize,
    bcast_interval: u64,
) -> KResult<InferenceStats> {
    let first = comm.rank() as u64 * sites_per_rank;
    let sites = first..first + sites_per_rank;
    let mut model = Model::initial(16);
    let mut score = 0.0;
    let mut comm_calls = 0u64;
    for it in 0..iterations {
        if it % bcast_interval == 0 {
            if comm.rank() == 0 {
                model.perturb(it);
            }
            match layer {
                Layer::Plain => plain::mpi_broadcast_model(comm.raw(), &mut model),
                Layer::Kamping => kamping_layer::mpi_broadcast_model(comm, &mut model)?,
            }
            comm_calls += 1;
        }
        let mut partials = local_partial(&model, sites.clone(), categories);
        match layer {
            Layer::Plain => plain::allreduce_partials(comm.raw(), &mut partials),
            Layer::Kamping => kamping_layer::allreduce_partials(comm, &mut partials)?,
        }
        comm_calls += 1;
        score = partials.iter().sum::<f64>();
    }
    Ok(InferenceStats {
        final_score: score,
        comm_calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_serialization_roundtrips() {
        let m = Model::initial(8);
        let back: Model = kamping_serial::from_bytes(&kamping_serial::to_bytes(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn broadcast_layers_agree() {
        kamping::run(4, |comm| {
            let mut a = if comm.rank() == 0 {
                Model::initial(8)
            } else {
                Model::initial(1)
            };
            if comm.rank() == 0 {
                a.perturb(3);
            }
            let mut b = a.clone();
            plain::mpi_broadcast_model(comm.raw(), &mut a);
            kamping_layer::mpi_broadcast_model(&comm, &mut b).unwrap();
            assert_eq!(a, b);
            // Everyone now holds the master's model.
            let sig: f64 = a.rates.iter().sum();
            let sigs = comm.allgather_vec(&[sig]).unwrap();
            assert!(sigs.iter().all(|s| s == &sigs[0]));
        });
    }

    #[test]
    fn inference_layers_produce_identical_scores() {
        kamping::run(3, |comm| {
            let a = run_inference(&comm, Layer::Plain, 20, 50, 4, 5).unwrap();
            let b = run_inference(&comm, Layer::Kamping, 20, 50, 4, 5).unwrap();
            // Bitwise equality: both layers issue the same reductions in
            // the same tree order (the "no measurable difference" claim
            // includes identical numerics here).
            assert_eq!(a.final_score.to_bits(), b.final_score.to_bits());
            assert_eq!(a.comm_calls, b.comm_calls);
        });
    }

    #[test]
    fn scores_consistent_across_ranks() {
        let outs = kamping::run(4, |comm| {
            run_inference(&comm, Layer::Kamping, 10, 30, 4, 3)
                .unwrap()
                .final_score
        });
        assert!(outs.iter().all(|s| s.to_bits() == outs[0].to_bits()));
    }

    #[test]
    fn single_rank_runs_without_broadcast_traffic() {
        let (_, profile) = kamping::run_profiled(1, |comm| {
            run_inference(&comm, Layer::Plain, 5, 10, 2, 2).unwrap()
        });
        // p = 1: the guarded broadcast helper must not issue bcasts.
        assert_eq!(profile.total_calls(kamping_mpi::Op::Bcast), 0);
    }

    #[test]
    fn perturbation_changes_the_score() {
        kamping::run(2, |comm| {
            let short = run_inference(&comm, Layer::Kamping, 1, 20, 2, 1).unwrap();
            let long = run_inference(&comm, Layer::Kamping, 15, 20, 2, 1).unwrap();
            assert_ne!(short.final_score.to_bits(), long.final_score.to_bits());
        });
    }
}
