//! Grid (two-dimensional) all-to-all (paper §V-A).
//!
//! Direct personalized all-to-all pays one message startup per peer:
//! latency linear in p. The `GridCommunicator` plugin arranges the p ranks
//! in a virtual ⌈√p⌉-wide grid and routes every message in two hops —
//! first within the sender's *column* to the destination's row, then
//! within that *row* to the destination — so each rank talks to O(√p)
//! peers per phase. Communication volume grows (payloads travel twice,
//! plus routing headers), which is exactly the volume-for-latency trade
//! the paper describes (after Kalé, Kumar and Varadarajan).
//!
//! For non-square p the last grid row is partial; messages whose sender
//! column does not reach the destination's row take a third, within-column
//! cleanup hop. All three phases are sub-communicator `alltoallv`s, so the
//! O(√p) startup bound holds for every p.
//!
//! The routing engine itself lives in the substrate
//! ([`kamping_mpi::RawComm::grid_alltoallv`]) so it can participate in the
//! strategy-selected all-to-all dispatch
//! ([`kamping_mpi::RawComm::alltoallv_strategy`]); this plugin is the
//! typed convenience surface over it.

use kamping::plugin::CommunicatorPlugin;
use kamping::types::{bytes_to_pods, pod_as_bytes, PodType};
use kamping::{Communicator, KResult, KampingError};

/// A communicator organized as a virtual 2D grid (√p × √p).
pub struct GridCommunicator {
    raw: kamping_mpi::RawComm,
    size: usize,
    /// Grid width (⌈√p⌉).
    width: usize,
}

/// The grid all-to-all plugin (extension trait, §III-F).
pub trait GridAlltoall: CommunicatorPlugin {
    /// Builds the grid (collective: two communicator splits, performed
    /// eagerly and cached on the communicator). Reuse the returned object
    /// across exchanges.
    fn make_grid(&self) -> KResult<GridCommunicator> {
        let comm = self.comm();
        let cache = comm.raw().grid_cache()?;
        Ok(GridCommunicator {
            size: comm.size(),
            width: cache.width(),
            raw: comm.raw().clone(),
        })
    }
}

impl GridAlltoall for Communicator {}

impl GridCommunicator {
    /// Number of ranks in the underlying communicator.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Grid width (⌈√p⌉).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Personalized all-to-all over the grid: `send_counts[d]` elements of
    /// `data` (back-to-back, in destination order) go to world rank `d`.
    /// Returns the received elements grouped by source rank plus the
    /// per-source receive counts.
    pub fn alltoallv<T: PodType>(
        &self,
        data: &[T],
        send_counts: &[usize],
    ) -> KResult<(Vec<T>, Vec<usize>)> {
        if send_counts.len() != self.size {
            return Err(KampingError::InvalidArgument(
                "grid alltoallv: send_counts length",
            ));
        }
        if send_counts.iter().sum::<usize>() != data.len() {
            return Err(KampingError::InvalidArgument(
                "grid alltoallv: send_counts do not sum to data length",
            ));
        }
        let mut parts: Vec<Vec<u8>> = Vec::with_capacity(self.size);
        let mut offset = 0usize;
        for &count in send_counts {
            parts.push(pod_as_bytes(&data[offset..offset + count]).to_vec());
            offset += count;
        }
        let by_source = self.raw.grid_alltoallv(&parts)?;
        let mut out = Vec::new();
        let mut recv_counts = vec![0usize; self.size];
        for (src, bytes) in by_source.iter().enumerate() {
            let elems: Vec<T> = bytes_to_pods(bytes)?;
            recv_counts[src] = elems.len();
            out.extend(elems);
        }
        Ok((out, recv_counts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: dense alltoallv through the core library.
    fn reference(comm: &Communicator, data: &[u64], counts: &[usize]) -> Vec<u64> {
        comm.alltoallv_vec(data, counts).unwrap()
    }

    fn dense_pattern(comm: &Communicator) -> (Vec<u64>, Vec<usize>) {
        let me = comm.rank() as u64;
        let p = comm.size();
        let counts: Vec<usize> = (0..p).map(|d| (me as usize + d) % 3).collect();
        let data: Vec<u64> = (0..p)
            .flat_map(|d| vec![me * 1000 + d as u64; counts[d]])
            .collect();
        (data, counts)
    }

    #[test]
    fn matches_dense_alltoallv_various_p() {
        // Includes square (4, 9), non-square (2, 3, 5, 7), and 1.
        for p in [1, 2, 3, 4, 5, 7, 9] {
            kamping::run(p, |comm| {
                let grid = comm.make_grid().unwrap();
                let (data, counts) = dense_pattern(&comm);
                let (got, recv_counts) = grid.alltoallv(&data, &counts).unwrap();
                let want = reference(&comm, &data, &counts);
                assert_eq!(got, want, "p={p} rank={}", comm.rank());
                let expected_counts: Vec<usize> = (0..p).map(|s| (s + comm.rank()) % 3).collect();
                assert_eq!(recv_counts, expected_counts);
            });
        }
    }

    /// Exhaustive equivalence against the dense `alltoallv` for every
    /// communicator size 2..=17 — pins the cleanup-hop routing on every
    /// partial-last-row shape (the non-square primes 5, 7, 11, 13, 17 are
    /// the interesting cases; squares and the rest ride along). Each rank
    /// sends a distinct, size-varying payload to every destination so a
    /// misroute cannot alias another rank's data.
    #[test]
    fn exhaustive_equivalence_p_2_to_17() {
        for p in 2..=17usize {
            kamping::run(p, |comm| {
                let me = comm.rank();
                let counts: Vec<usize> = (0..p).map(|d| (me * 5 + d * 3 + 1) % 7).collect();
                let data: Vec<u64> = (0..p)
                    .flat_map(|d| (0..counts[d]).map(move |i| ((me * p + d) * 100 + i) as u64))
                    .collect();
                let grid = comm.make_grid().unwrap();
                let (got, recv_counts) = grid.alltoallv(&data, &counts).unwrap();
                let want = reference(&comm, &data, &counts);
                assert_eq!(got, want, "p={p} rank={me}");
                let expected_counts: Vec<usize> =
                    (0..p).map(|s| (s * 5 + me * 3 + 1) % 7).collect();
                assert_eq!(recv_counts, expected_counts, "p={p} rank={me}");
            });
        }
    }

    #[test]
    fn startups_scale_with_sqrt_p() {
        // At p = 16 a dense exchange posts 15 envelopes per rank; the grid
        // posts at most ~3 phases x (sqrt(p)-1 + counts-exchange) per rank.
        let p = 16;
        let (maxmsgs, _) = kamping::run_profiled(p, |comm| {
            let grid = comm.make_grid().unwrap();
            let before = comm.profile();
            // all-ones pattern: worst case for dense startup count
            let counts = vec![1usize; p];
            let data: Vec<u64> = (0..p as u64).collect();
            grid.alltoallv(&data, &counts).unwrap();
            let delta = comm.profile().since(&before);
            delta.ranks[comm.raw().my_global_rank()].messages_sent
        });
        // Each phase is an alltoallv (+ counts alltoall) on a 4-member
        // subcomm: <= 2 x 3 envelopes; 3 phases => <= 18... but crucially
        // the *world-size-linear* term is gone. Bound generously:
        let worst = *maxmsgs.iter().max().unwrap();
        assert!(
            worst <= 2 * 3 * (4 - 1) + 6,
            "grid posted {worst} envelopes per rank"
        );
    }

    #[test]
    fn self_message_roundtrips() {
        kamping::run(5, |comm| {
            let grid = comm.make_grid().unwrap();
            let mut counts = vec![0usize; 5];
            counts[comm.rank()] = 2;
            let data = vec![comm.rank() as u64; 2];
            let (got, rc) = grid.alltoallv(&data, &counts).unwrap();
            assert_eq!(got, vec![comm.rank() as u64; 2]);
            assert_eq!(rc[comm.rank()], 2);
        });
    }

    #[test]
    fn empty_exchange() {
        kamping::run(6, |comm| {
            let grid = comm.make_grid().unwrap();
            let counts = vec![0usize; 6];
            let (got, rc) = grid.alltoallv::<u32>(&[], &counts).unwrap();
            assert!(got.is_empty());
            assert_eq!(rc, vec![0; 6]);
        });
    }

    #[test]
    fn grid_reusable_across_rounds() {
        kamping::run(4, |comm| {
            let grid = comm.make_grid().unwrap();
            for round in 0..3u64 {
                let counts = vec![1usize; 4];
                let data = vec![round * 10 + comm.rank() as u64; 4];
                let (got, _) = grid.alltoallv(&data, &counts).unwrap();
                let want: Vec<u64> = (0..4).map(|s| round * 10 + s).collect();
                assert_eq!(got, want);
            }
        });
    }

    #[test]
    fn bad_counts_rejected() {
        kamping::run(1, |comm| {
            let grid = comm.make_grid().unwrap();
            assert!(grid.alltoallv(&[1u8], &[2]).is_err());
            assert!(grid.alltoallv(&[1u8], &[1, 1]).is_err());
        });
    }
}
