//! Grid (two-dimensional) all-to-all (paper §V-A).
//!
//! Direct personalized all-to-all pays one message startup per peer:
//! latency linear in p. The `GridCommunicator` plugin arranges the p ranks
//! in a virtual ⌈√p⌉-wide grid and routes every message in two hops —
//! first within the sender's *column* to the destination's row, then
//! within that *row* to the destination — so each rank talks to O(√p)
//! peers per phase. Communication volume grows (payloads travel twice,
//! plus routing headers), which is exactly the volume-for-latency trade
//! the paper describes (after Kalé, Kumar and Varadarajan).
//!
//! For non-square p the last grid row is partial; messages whose sender
//! column does not reach the destination's row take a third, within-column
//! cleanup hop. All three phases are sub-communicator `alltoallv`s, so the
//! O(√p) startup bound holds for every p.

use kamping::plugin::CommunicatorPlugin;
use kamping::types::{bytes_to_pods, pod_as_bytes, PodType};
use kamping::{Communicator, KResult, KampingError};

/// A communicator organized as a virtual 2D grid (√p × √p).
pub struct GridCommunicator {
    size: usize,
    /// Grid width (⌈√p⌉).
    width: usize,
    my_row: usize,
    my_col: usize,
    row_comm: Communicator,
    col_comm: Communicator,
}

/// The grid all-to-all plugin (extension trait, §III-F).
pub trait GridAlltoall: CommunicatorPlugin {
    /// Builds the grid (collective: two communicator splits). Reuse the
    /// returned object across exchanges — construction costs two splits.
    fn make_grid(&self) -> KResult<GridCommunicator> {
        let comm = self.comm();
        let p = comm.size();
        let width = (p as f64).sqrt().ceil() as usize;
        let my_row = comm.rank() / width;
        let my_col = comm.rank() % width;
        let row_comm = comm.split(my_row as u64, my_col as u64)?;
        let col_comm = comm.split(width as u64 + my_col as u64, my_row as u64)?;
        Ok(GridCommunicator {
            size: p,
            width,
            my_row,
            my_col,
            row_comm,
            col_comm,
        })
    }
}

impl GridAlltoall for Communicator {}

/// One routed message block on the wire: header (final destination,
/// original source, payload byte length) followed by the payload.
fn push_block(wire: &mut Vec<u8>, dest: usize, src: usize, payload: &[u8]) {
    wire.extend_from_slice(&(dest as u64).to_le_bytes());
    wire.extend_from_slice(&(src as u64).to_le_bytes());
    wire.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    wire.extend_from_slice(payload);
}

/// Iterates the blocks of a routed wire buffer.
fn for_each_block(wire: &[u8], mut f: impl FnMut(usize, usize, &[u8])) -> KResult<()> {
    let mut off = 0;
    while off < wire.len() {
        if off + 24 > wire.len() {
            return Err(KampingError::InvalidArgument(
                "grid: truncated block header",
            ));
        }
        let dest = u64::from_le_bytes(wire[off..off + 8].try_into().expect("8")) as usize;
        let src = u64::from_le_bytes(wire[off + 8..off + 16].try_into().expect("8")) as usize;
        let len = u64::from_le_bytes(wire[off + 16..off + 24].try_into().expect("8")) as usize;
        off += 24;
        if off + len > wire.len() {
            return Err(KampingError::InvalidArgument(
                "grid: truncated block payload",
            ));
        }
        f(dest, src, &wire[off..off + len]);
        off += len;
    }
    Ok(())
}

impl GridCommunicator {
    /// Number of ranks in the underlying communicator.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Grid width (⌈√p⌉).
    pub fn width(&self) -> usize {
        self.width
    }

    fn row_of(&self, rank: usize) -> usize {
        rank / self.width
    }

    fn col_of(&self, rank: usize) -> usize {
        rank % self.width
    }

    /// Number of ranks in column `col`.
    fn col_len(&self, col: usize) -> usize {
        // Ranks col, col+w, col+2w, … below `size`.
        if col >= self.size {
            0
        } else {
            (self.size - col).div_ceil(self.width)
        }
    }

    /// Routes one phase: exchanges per-member wire buffers on `comm` and
    /// returns the concatenation of everything received.
    fn exchange_phase(comm: &Communicator, outgoing: Vec<Vec<u8>>) -> KResult<Vec<u8>> {
        debug_assert_eq!(outgoing.len(), comm.size());
        let counts: Vec<usize> = outgoing.iter().map(Vec::len).collect();
        let data: Vec<u8> = outgoing.concat();
        comm.alltoallv_vec(&data, &counts)
    }

    /// Personalized all-to-all over the grid: `send_counts[d]` elements of
    /// `data` (back-to-back, in destination order) go to world rank `d`.
    /// Returns the received elements grouped by source rank plus the
    /// per-source receive counts.
    pub fn alltoallv<T: PodType>(
        &self,
        data: &[T],
        send_counts: &[usize],
    ) -> KResult<(Vec<T>, Vec<usize>)> {
        if send_counts.len() != self.size {
            return Err(KampingError::InvalidArgument(
                "grid alltoallv: send_counts length",
            ));
        }
        if send_counts.iter().sum::<usize>() != data.len() {
            return Err(KampingError::InvalidArgument(
                "grid alltoallv: send_counts do not sum to data length",
            ));
        }
        let me = self.my_row * self.width + self.my_col;

        // --- Phase A: within my column, towards the destination's row.
        let mut phase_a: Vec<Vec<u8>> = vec![Vec::new(); self.col_comm.size()];
        let mut offset = 0usize;
        for (dest, &count) in send_counts.iter().enumerate() {
            let payload = pod_as_bytes(&data[offset..offset + count]);
            offset += count;
            if count == 0 {
                continue; // nothing to route; receivers infer zero counts
            }
            let target_row = self.row_of(dest).min(self.col_len(self.my_col) - 1);
            push_block(&mut phase_a[target_row], dest, me, payload);
        }
        let after_a = Self::exchange_phase(&self.col_comm, phase_a)?;

        // --- Phase B: within my row, towards the destination's column.
        let mut phase_b: Vec<Vec<u8>> = vec![Vec::new(); self.row_comm.size()];
        for_each_block(&after_a, |dest, src, payload| {
            let target_col = self.col_of(dest);
            debug_assert!(target_col < self.row_comm.size());
            push_block(&mut phase_b[target_col], dest, src, payload);
        })?;
        let after_b = Self::exchange_phase(&self.row_comm, phase_b)?;

        // --- Phase C: within my column, cleanup hop for messages whose
        // sender column was shorter than the destination's row.
        let mut phase_c: Vec<Vec<u8>> = vec![Vec::new(); self.col_comm.size()];
        for_each_block(&after_b, |dest, src, payload| {
            let target_row = self.row_of(dest);
            debug_assert!(target_row < self.col_comm.size());
            push_block(&mut phase_c[target_row], dest, src, payload);
        })?;
        let after_c = Self::exchange_phase(&self.col_comm, phase_c)?;

        // --- Collect, grouped by original source.
        let mut by_source: Vec<Vec<u8>> = vec![Vec::new(); self.size];
        for_each_block(&after_c, |dest, src, payload| {
            debug_assert_eq!(dest, me);
            by_source[src].extend_from_slice(payload);
        })?;
        let mut out = Vec::new();
        let mut recv_counts = vec![0usize; self.size];
        for (src, bytes) in by_source.iter().enumerate() {
            let elems: Vec<T> = bytes_to_pods(bytes)?;
            recv_counts[src] = elems.len();
            out.extend(elems);
        }
        Ok((out, recv_counts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: dense alltoallv through the core library.
    fn reference(comm: &Communicator, data: &[u64], counts: &[usize]) -> Vec<u64> {
        comm.alltoallv_vec(data, counts).unwrap()
    }

    fn dense_pattern(comm: &Communicator) -> (Vec<u64>, Vec<usize>) {
        let me = comm.rank() as u64;
        let p = comm.size();
        let counts: Vec<usize> = (0..p).map(|d| (me as usize + d) % 3).collect();
        let data: Vec<u64> = (0..p)
            .flat_map(|d| vec![me * 1000 + d as u64; counts[d]])
            .collect();
        (data, counts)
    }

    #[test]
    fn matches_dense_alltoallv_various_p() {
        // Includes square (4, 9), non-square (2, 3, 5, 7), and 1.
        for p in [1, 2, 3, 4, 5, 7, 9] {
            kamping::run(p, |comm| {
                let grid = comm.make_grid().unwrap();
                let (data, counts) = dense_pattern(&comm);
                let (got, recv_counts) = grid.alltoallv(&data, &counts).unwrap();
                let want = reference(&comm, &data, &counts);
                assert_eq!(got, want, "p={p} rank={}", comm.rank());
                let expected_counts: Vec<usize> = (0..p).map(|s| (s + comm.rank()) % 3).collect();
                assert_eq!(recv_counts, expected_counts);
            });
        }
    }

    #[test]
    fn startups_scale_with_sqrt_p() {
        // At p = 16 a dense exchange posts 15 envelopes per rank; the grid
        // posts at most ~3 phases x (sqrt(p)-1 + counts-exchange) per rank.
        let p = 16;
        let (maxmsgs, _) = kamping::run_profiled(p, |comm| {
            let grid = comm.make_grid().unwrap();
            let before = comm.profile();
            // all-ones pattern: worst case for dense startup count
            let counts = vec![1usize; p];
            let data: Vec<u64> = (0..p as u64).collect();
            grid.alltoallv(&data, &counts).unwrap();
            let delta = comm.profile().since(&before);
            delta.ranks[comm.raw().my_global_rank()].messages_sent
        });
        // Each phase is an alltoallv (+ counts alltoall) on a 4-member
        // subcomm: <= 2 x 3 envelopes; 3 phases => <= 18... but crucially
        // the *world-size-linear* term is gone. Bound generously:
        let worst = *maxmsgs.iter().max().unwrap();
        assert!(
            worst <= 2 * 3 * (4 - 1) + 6,
            "grid posted {worst} envelopes per rank"
        );
    }

    #[test]
    fn self_message_roundtrips() {
        kamping::run(5, |comm| {
            let grid = comm.make_grid().unwrap();
            let mut counts = vec![0usize; 5];
            counts[comm.rank()] = 2;
            let data = vec![comm.rank() as u64; 2];
            let (got, rc) = grid.alltoallv(&data, &counts).unwrap();
            assert_eq!(got, vec![comm.rank() as u64; 2]);
            assert_eq!(rc[comm.rank()], 2);
        });
    }

    #[test]
    fn empty_exchange() {
        kamping::run(6, |comm| {
            let grid = comm.make_grid().unwrap();
            let counts = vec![0usize; 6];
            let (got, rc) = grid.alltoallv::<u32>(&[], &counts).unwrap();
            assert!(got.is_empty());
            assert_eq!(rc, vec![0; 6]);
        });
    }

    #[test]
    fn grid_reusable_across_rounds() {
        kamping::run(4, |comm| {
            let grid = comm.make_grid().unwrap();
            for round in 0..3u64 {
                let counts = vec![1usize; 4];
                let data = vec![round * 10 + comm.rank() as u64; 4];
                let (got, _) = grid.alltoallv(&data, &counts).unwrap();
                let want: Vec<u64> = (0..4).map(|s| round * 10 + s).collect();
                assert_eq!(got, want);
            }
        });
    }

    #[test]
    fn bad_counts_rejected() {
        kamping::run(1, |comm| {
            let grid = comm.make_grid().unwrap();
            assert!(grid.alltoallv(&[1u8], &[2]).is_err());
            assert!(grid.alltoallv(&[1u8], &[1, 1]).is_err());
        });
    }
}
