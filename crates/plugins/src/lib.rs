//! # kamping-plugins — the library extensions shipped with KaMPIng (§V)
//!
//! KaMPIng keeps its core small; functionality beyond the MPI feature set
//! ships as plugins (paper §III-F, §V). This crate reproduces the four
//! plugins the paper describes, each as an extension trait over
//! [`kamping::Communicator`]:
//!
//! * [`sparse::SparseAlltoall`] — personalized all-to-all for *sparse,
//!   dynamic* communication patterns using the NBX algorithm of Hoefler,
//!   Siebert and Lumsdaine (§V-A). Takes destination→message pairs; only
//!   actual communication partners exchange envelopes, so the cost is
//!   proportional to the pattern's degree, not to the communicator size.
//! * [`grid::GridAlltoall`] — two-dimensional grid routing (§V-A, after
//!   Kalé et al.): messages take two (rarely three) hops across a virtual
//!   √p × √p grid, trading communication volume for O(√p) message
//!   startups per rank instead of O(p).
//! * [`ulfm::UlfmPlugin`] — user-level failure mitigation (§V-B): process
//!   failures surface as `Result`s, and `revoke`/`shrink`/`agree` rebuild
//!   a working communicator from the survivors.
//! * [`repro_reduce::ReproducibleReduce`] — a reduction whose
//!   floating-point result is *bitwise identical for every communicator
//!   size* (§V-C, after Stelz): the combine order is a fixed binary tree
//!   over global element indices, decoupled from the process count, while
//!   still communicating only O(log n) partial results per rank.

pub mod grid;
pub mod repro_reduce;
pub mod sparse;
pub mod ulfm;

pub use grid::{GridAlltoall, GridCommunicator};
pub use repro_reduce::ReproducibleReduce;
pub use sparse::SparseAlltoall;
pub use ulfm::UlfmPlugin;
