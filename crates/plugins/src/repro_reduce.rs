//! Reproducible reduction (paper §V-C, Fig. 13).
//!
//! IEEE-754 addition is not associative, and the combine tree of an
//! ordinary `reduce`/`allreduce` depends on the number of ranks — so the
//! same data reduced on 3 and on 4 ranks can differ in the last bits,
//! breaking run-to-run reproducibility of scientific results.
//!
//! This plugin fixes the combine order to a **binary tree over global
//! element indices**: conceptually the n elements (concatenated in rank
//! order) are the leaves of a perfect binary tree, and the reduction value
//! is defined by that tree alone. Each rank locally evaluates the maximal
//! aligned subtrees inside its index range (no communication, and fully
//! order-fixed), sends those O(log n) partial results to rank 0, which
//! stitches them together along the very same tree edges and broadcasts
//! the result. That is faster than a gather + local reduce + bcast — the
//! gather moves O(log n) values per rank instead of O(n/p) — while being
//! bitwise independent of p (after Stelz; performance-tuned variants use
//! deeper message overlap, same order contract).

use kamping::plugin::CommunicatorPlugin;
use kamping::types::{bytes_to_pods, pod_as_bytes, PodType};
use kamping::{Communicator, KResult, KampingError};

/// The reproducible-reduce plugin (extension trait, §III-F).
pub trait ReproducibleReduce: CommunicatorPlugin {
    /// Reduces the distributed array (everyone's `local` concatenated in
    /// rank order) to a single value whose combine order — and therefore
    /// floating-point rounding — is **independent of the communicator
    /// size**. The result lands on every rank.
    ///
    /// Returns `None` when the global array is empty.
    fn reproducible_allreduce<T: PodType>(
        &self,
        local: &[T],
        op: impl Fn(T, T) -> T + Sync + Copy,
    ) -> KResult<Option<T>> {
        let comm = self.comm();
        // Global index range of my elements.
        let my_len = local.len();
        let offset = comm.exscan_single(my_len, 0, |a, b| a + b)?;
        let total = comm.allreduce_single(my_len, |a, b| a + b)?;
        if total == 0 {
            return Ok(None);
        }

        // Local pass: evaluate the maximal aligned subtrees (blocks) of
        // [offset, offset + my_len) with the fixed tree order.
        let partials = aligned_partials(local, offset, op);

        // Ship (start, size, value) triples to rank 0.
        let mut wire = Vec::with_capacity(partials.len() * (16 + T::SIZE));
        for &(start, size, ref value) in &partials {
            wire.extend_from_slice(&(start as u64).to_le_bytes());
            wire.extend_from_slice(&(size as u64).to_le_bytes());
            wire.extend_from_slice(pod_as_bytes(std::slice::from_ref(value)));
        }
        let counts = if comm.rank() == 0 {
            Some(gather_counts(comm, wire.len())?)
        } else {
            // Non-roots still participate in the counts gather.
            let _ = comm.raw().gather(&(wire.len() as u64).to_le_bytes(), 0)?;
            None
        };
        let gathered = comm.raw().gatherv(&wire, counts.as_deref(), 0)?;

        // Rank 0: stitch the global tiling together along tree edges.
        let mut result_wire = if let Some(bytes) = gathered {
            let mut blocks = decode_blocks::<T>(&bytes)?;
            blocks.sort_by_key(|b| b.0);
            let root = stitch(blocks, op)?;
            pod_as_bytes(std::slice::from_ref(&root)).to_vec()
        } else {
            Vec::new()
        };
        comm.raw().bcast(&mut result_wire, 0)?;
        let vals: Vec<T> = bytes_to_pods(&result_wire)?;
        Ok(Some(vals[0]))
    }

    /// Baseline for the benchmark comparison of §V-C: gather the whole
    /// array at rank 0, reduce it there left-to-right, broadcast. Also
    /// reproducible (single fixed order) but moves O(n) data.
    fn gather_reduce_bcast<T: PodType>(
        &self,
        local: &[T],
        op: impl Fn(T, T) -> T + Sync + Copy,
    ) -> KResult<Option<T>> {
        let comm = self.comm();
        let all: Vec<T> = comm.gatherv_vec(local, 0)?;
        let mut wire = if comm.rank() == 0 {
            match all.into_iter().reduce(op) {
                Some(v) => pod_as_bytes(std::slice::from_ref(&v)).to_vec(),
                None => Vec::new(),
            }
        } else {
            Vec::new()
        };
        comm.raw().bcast(&mut wire, 0)?;
        if wire.is_empty() {
            return Ok(None);
        }
        let vals: Vec<T> = bytes_to_pods(&wire)?;
        Ok(Some(vals[0]))
    }
}

impl ReproducibleReduce for Communicator {}

/// Exchanges the wire lengths so rank 0 can gatherv (one internal gather).
fn gather_counts(comm: &Communicator, my_len: usize) -> KResult<Vec<usize>> {
    let gathered = comm
        .raw()
        .gather(&(my_len as u64).to_le_bytes(), 0)?
        .ok_or(KampingError::InvalidArgument(
            "gather_counts called off-root",
        ))?;
    Ok(gathered
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")) as usize)
        .collect())
}

/// Decomposes `[offset, offset + len)` into maximal aligned power-of-two
/// blocks and evaluates each block's value with the fixed tree order.
fn aligned_partials<T: PodType>(
    local: &[T],
    offset: usize,
    op: impl Fn(T, T) -> T + Copy,
) -> Vec<(usize, usize, T)> {
    let mut out = Vec::new();
    let mut start = offset;
    let end = offset + local.len();
    while start < end {
        // Largest power-of-two block aligned at `start` and inside range.
        let align = if start == 0 {
            usize::MAX.count_ones() as usize
        } else {
            start.trailing_zeros() as usize
        };
        let mut size = 1usize;
        let mut level = 0usize;
        while level < align && start + size * 2 <= end {
            size *= 2;
            level += 1;
        }
        let value = tree_fold(&local[start - offset..start - offset + size], op);
        out.push((start, size, value));
        start += size;
    }
    out
}

/// Evaluates a block (power-of-two length) with the canonical binary
/// tree. Iterative pairwise fold: a stack of per-level partials realizes
/// exactly the recursive halving order at a linear-scan constant factor.
fn tree_fold<T: PodType>(block: &[T], op: impl Fn(T, T) -> T + Copy) -> T {
    debug_assert!(!block.is_empty() && block.len().is_power_of_two());
    // (level, value): a value at `level` is the fold of 2^level leaves.
    let mut stack: Vec<(u32, T)> = Vec::with_capacity(64);
    for &x in block {
        let mut node = (0u32, x);
        while let Some(&(level, value)) = stack.last() {
            if level != node.0 {
                break;
            }
            stack.pop();
            node = (level + 1, op(value, node.1));
        }
        stack.push(node);
    }
    debug_assert_eq!(stack.len(), 1, "power-of-two block folds to one node");
    stack.pop().expect("non-empty block").1
}

fn decode_blocks<T: PodType>(bytes: &[u8]) -> KResult<Vec<(usize, usize, T)>> {
    let rec = 16 + T::SIZE;
    if !bytes.len().is_multiple_of(rec) {
        return Err(KampingError::InvalidArgument(
            "repro reduce: malformed partials",
        ));
    }
    let mut out = Vec::with_capacity(bytes.len() / rec);
    for chunk in bytes.chunks_exact(rec) {
        let start = u64::from_le_bytes(chunk[..8].try_into().expect("8")) as usize;
        let size = u64::from_le_bytes(chunk[8..16].try_into().expect("8")) as usize;
        let vals: Vec<T> = bytes_to_pods(&chunk[16..])?;
        out.push((start, size, vals[0]));
    }
    Ok(out)
}

/// Merges the sorted block tiling bottom-up along tree edges: two adjacent
/// blocks of equal size whose union is aligned combine into their parent;
/// the final ragged chain (sizes strictly decreasing, the unique maximal
/// tiling of [0, n)) is folded left-to-right. Both steps are functions of
/// n alone, never of the rank partition.
fn stitch<T: PodType>(blocks: Vec<(usize, usize, T)>, op: impl Fn(T, T) -> T + Copy) -> KResult<T> {
    let mut stack: Vec<(usize, usize, T)> = Vec::new();
    for (start, size, value) in blocks {
        stack.push((start, size, value));
        // Combine while the two topmost blocks are sibling subtrees.
        while stack.len() >= 2 {
            let (s2, z2, v2) = stack[stack.len() - 1];
            let (s1, z1, v1) = stack[stack.len() - 2];
            let siblings = z1 == z2 && s1 + z1 == s2 && s1.is_multiple_of(2 * z1);
            if !siblings {
                break;
            }
            stack.truncate(stack.len() - 2);
            stack.push((s1, 2 * z1, op(v1, v2)));
        }
    }
    // Ragged right edge: left-to-right fold (canonical, p-independent).
    let mut iter = stack.into_iter();
    let (_, _, mut acc) = iter
        .next()
        .ok_or(KampingError::InvalidArgument("repro reduce: no blocks"))?;
    for (_, _, v) in iter {
        acc = op(acc, v);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Splits `data` into `p` chunks the way a distributed array would be.
    fn chunks(data: &[f64], p: usize) -> Vec<Vec<f64>> {
        let n = data.len();
        let base = n / p;
        let extra = n % p;
        let mut out = Vec::new();
        let mut off = 0;
        for r in 0..p {
            let len = base + usize::from(r < extra);
            out.push(data[off..off + len].to_vec());
            off += len;
        }
        out
    }

    fn run_repro(data: &[f64], p: usize) -> f64 {
        let parts = chunks(data, p);
        let results = kamping::run(p, |comm| {
            comm.reproducible_allreduce(&parts[comm.rank()], |a, b| a + b)
                .unwrap()
                .unwrap()
        });
        // All ranks agree.
        assert!(results.iter().all(|r| r.to_bits() == results[0].to_bits()));
        results[0]
    }

    #[test]
    fn bitwise_identical_across_rank_counts() {
        // Mixed magnitudes make float addition order-sensitive.
        let data: Vec<f64> = (0..57)
            .map(|i| {
                if i % 3 == 0 {
                    1e16
                } else {
                    3.25521 * (i as f64 + 1.0)
                }
            })
            .collect();
        let reference = run_repro(&data, 1);
        for p in [2, 3, 4, 5, 8] {
            let r = run_repro(&data, p);
            assert_eq!(
                r.to_bits(),
                reference.to_bits(),
                "p={p}: {r:?} != {reference:?} — reduction order leaked the rank count"
            );
        }
    }

    #[test]
    fn naive_allreduce_is_order_sensitive_on_this_data() {
        // Sanity check that the workload actually distinguishes orders:
        // a plain left-to-right sum differs from the tree sum.
        let data: Vec<f64> = (0..57)
            .map(|i| {
                if i % 3 == 0 {
                    1e16
                } else {
                    3.25521 * (i as f64 + 1.0)
                }
            })
            .collect();
        let linear: f64 = data.iter().sum();
        let tree = run_repro(&data, 1);
        // (Not a guarantee in general, but true for this data — documents
        // why bitwise comparison above is a meaningful test.)
        assert_ne!(linear.to_bits(), tree.to_bits());
    }

    #[test]
    fn matches_exact_sum_on_integers() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        for p in [1, 3, 7] {
            assert_eq!(run_repro(&data, p), 5050.0);
        }
    }

    #[test]
    fn empty_and_singleton() {
        kamping::run(3, |comm| {
            let r = comm
                .reproducible_allreduce::<f64>(&[], |a, b| a + b)
                .unwrap();
            assert!(r.is_none());
        });
        kamping::run(2, |comm| {
            let local = if comm.rank() == 0 {
                vec![42.0f64]
            } else {
                vec![]
            };
            let r = comm.reproducible_allreduce(&local, |a, b| a + b).unwrap();
            assert_eq!(r, Some(42.0));
        });
    }

    #[test]
    fn unbalanced_distribution() {
        // All data on the last rank: partials cross no boundary, but the
        // offsets must still line up with the global tree.
        let data: Vec<f64> = (0..31).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let reference = run_repro(&data, 1);
        let results = kamping::run(4, |comm| {
            let local: Vec<f64> = if comm.rank() == 3 {
                data.clone()
            } else {
                vec![]
            };
            comm.reproducible_allreduce(&local, |a, b| a + b)
                .unwrap()
                .unwrap()
        });
        assert!(results.iter().all(|r| r.to_bits() == reference.to_bits()));
    }

    #[test]
    fn gather_baseline_agrees_with_itself() {
        let data: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let parts = chunks(&data, 4);
        let results = kamping::run(4, |comm| {
            comm.gather_reduce_bcast(&parts[comm.rank()], |a, b| a + b)
                .unwrap()
                .unwrap()
        });
        assert!(results.iter().all(|r| r.to_bits() == results[0].to_bits()));
    }

    #[test]
    fn moves_less_data_than_gather_baseline() {
        let n = 1 << 12;
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let parts = chunks(&data, 4);
        let (_, profile) = kamping::run_profiled(4, |comm| {
            comm.reproducible_allreduce(&parts[comm.rank()], |a, b| a + b)
                .unwrap()
        });
        let repro_bytes = profile.total_bytes();
        let (_, profile) = kamping::run_profiled(4, |comm| {
            comm.gather_reduce_bcast(&parts[comm.rank()], |a, b| a + b)
                .unwrap()
        });
        let gather_bytes = profile.total_bytes();
        assert!(
            repro_bytes * 4 < gather_bytes,
            "repro moved {repro_bytes} bytes, gather {gather_bytes}"
        );
    }

    #[test]
    fn aligned_partials_tile_the_range() {
        let local = vec![1.0f64; 13];
        let parts = aligned_partials(&local, 5, |a, b| a + b);
        // Blocks tile [5, 18), aligned, power-of-two sizes.
        let mut pos = 5;
        for &(start, size, _) in &parts {
            assert_eq!(start, pos);
            assert!(size.is_power_of_two());
            assert!(start.is_multiple_of(size));
            pos += size;
        }
        assert_eq!(pos, 18);
    }

    #[test]
    fn stitch_reconstructs_tree_value() {
        // Hand-built: 4 leaves as two sibling pairs -> one root.
        let blocks = vec![(0usize, 2usize, 3.0f64), (2, 2, 7.0)];
        let v = stitch(blocks, |a, b| a + b).unwrap();
        assert_eq!(v, 10.0);
    }
}
