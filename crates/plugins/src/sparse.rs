//! Sparse all-to-all via the NBX algorithm (paper §V-A).
//!
//! `MPI_Alltoallv` needs a counts array with one entry *per rank* and posts
//! one message per peer — linear in the communicator size even when almost
//! all counts are zero. For sparse, rapidly changing communication patterns
//! (dynamic graph algorithms!) the paper's `SparseAlltoall` plugin accepts
//! a set of destination→message pairs and runs the NBX dynamic sparse data
//! exchange of Hoefler, Siebert and Lumsdaine (PPoPP'10):
//!
//! 1. issend every outgoing message (synchronous mode: the request
//!    completes only when the receiver matched it);
//! 2. loop: probe for incoming messages and receive them; once all own
//!    sends completed, enter a non-blocking barrier; once the barrier
//!    completes, every message in the system has been matched — stop.
//!
//! Cost: O(degree) messages per rank plus a barrier — no term linear in p.
//!
//! The NBX engine itself lives in the substrate
//! ([`kamping_mpi::RawComm::sparse_alltoallv`]) so it can participate in
//! the strategy-selected all-to-all dispatch
//! ([`kamping_mpi::RawComm::alltoallv_strategy`]); this plugin is the typed
//! convenience surface over it, exactly as the paper's plugin wraps its
//! C++ core.

use std::collections::HashMap;

use kamping::plugin::CommunicatorPlugin;
use kamping::types::{bytes_to_pods, pod_as_bytes, PodType};
use kamping::{Communicator, KResult};

/// First tag of the band reserved for NBX traffic (re-exported from the
/// substrate; applications should stay below it).
pub use kamping_mpi::coll::SPARSE_TAG_BASE;

/// A message received by [`SparseAlltoall::sparse_alltoall`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseMessage<T> {
    /// Sender's rank.
    pub source: usize,
    /// The payload.
    pub data: Vec<T>,
}

/// The sparse all-to-all plugin (extension trait, §III-F).
pub trait SparseAlltoall: CommunicatorPlugin {
    /// Exchanges destination→message pairs using NBX. Returns all received
    /// messages, sorted by source rank for determinism.
    ///
    /// Every rank of the communicator must call this (it contains a
    /// barrier), but ranks may pass empty message sets.
    fn sparse_alltoall<T: PodType>(
        &self,
        messages: HashMap<usize, Vec<T>>,
    ) -> KResult<Vec<SparseMessage<T>>> {
        let raw = self.comm().raw();
        let wire: Vec<(usize, Vec<u8>)> = messages
            .iter()
            .map(|(dest, data)| (*dest, pod_as_bytes(data).to_vec()))
            .collect();
        let received = raw.sparse_alltoallv(&wire)?;
        let mut out = Vec::with_capacity(received.len());
        for msg in received {
            out.push(SparseMessage {
                source: msg.source,
                data: bytes_to_pods(&msg.data)?,
            });
        }
        Ok(out)
    }
}

impl SparseAlltoall for Communicator {}

#[cfg(test)]
mod tests {
    use super::*;
    use kamping_mpi::{ChaosSpec, Op, Universe};

    #[test]
    fn ring_pattern_delivers_exactly_neighbors() {
        kamping::run(5, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let mut msgs = HashMap::new();
            msgs.insert(right, vec![comm.rank() as u64; 3]);
            let got = comm.sparse_alltoall(msgs).unwrap();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].source, left);
            assert_eq!(got[0].data, vec![left as u64; 3]);
        });
    }

    #[test]
    fn empty_pattern_terminates() {
        kamping::run(4, |comm| {
            let got = comm
                .sparse_alltoall(HashMap::<usize, Vec<u8>>::new())
                .unwrap();
            assert!(got.is_empty());
        });
    }

    #[test]
    fn asymmetric_pattern() {
        kamping::run(4, |comm| {
            // Only rank 0 sends, to everyone including itself.
            let mut msgs = HashMap::new();
            if comm.rank() == 0 {
                for d in 0..comm.size() {
                    msgs.insert(d, vec![d as u32 * 7]);
                }
            }
            let got = comm.sparse_alltoall(msgs).unwrap();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].source, 0);
            assert_eq!(got[0].data, vec![comm.rank() as u32 * 7]);
        });
    }

    #[test]
    fn repeated_rounds_do_not_interfere() {
        kamping::run(3, |comm| {
            for round in 0..5u64 {
                let mut msgs = HashMap::new();
                msgs.insert((comm.rank() + 1) % comm.size(), vec![round]);
                let got = comm.sparse_alltoall(msgs).unwrap();
                assert_eq!(got.len(), 1);
                assert_eq!(got[0].data, vec![round]);
            }
        });
    }

    #[test]
    fn message_cost_is_degree_not_p() {
        let (_, profile) = kamping::run_profiled(8, |comm| {
            let before = comm.profile();
            let mut msgs = HashMap::new();
            msgs.insert((comm.rank() + 1) % comm.size(), vec![1u8; 100]);
            comm.sparse_alltoall(msgs).unwrap();
            comm.profile().since(&before)
        });
        // Issend per rank: exactly 1 (its one destination) — not p-1.
        assert_eq!(profile.total_calls(Op::Issend), 8);
        // A dense alltoallv would have been 8 calls x 7 peers = 56 posts;
        // NBX posts 8 payload envelopes (the barrier is counter-based).
        assert_eq!(profile.total_calls(Op::Alltoallv), 0);
    }

    #[test]
    fn sorted_by_source() {
        kamping::run(6, |comm| {
            // Everyone sends to rank 0.
            let mut msgs = HashMap::new();
            if comm.rank() != 0 {
                msgs.insert(0, vec![comm.rank() as u16]);
            }
            let got = comm.sparse_alltoall(msgs).unwrap();
            if comm.rank() == 0 {
                let sources: Vec<usize> = got.iter().map(|m| m.source).collect();
                assert_eq!(sources, vec![1, 2, 3, 4, 5]);
            }
        });
    }

    /// Regression: a transport that duplicates envelopes (chaos `dup`
    /// faults) must not double-deliver sparse messages. The raw NBX engine
    /// stamps each message with a per-round sequence number and drops
    /// duplicate (source, sequence) deliveries; before that fix, every
    /// duplicated envelope surfaced as a phantom `SparseMessage`.
    ///
    /// The pattern sends *two* messages to rank 0 from the last rank (its
    /// ring neighbour is 0 too), so the test also proves the dedupe keeps
    /// distinct same-source messages apart from fault duplicates.
    #[test]
    fn chaos_dup_does_not_double_deliver() {
        let p = 6;
        let spec = ChaosSpec::parse("42:dup=100").unwrap();
        Universe::run_with_chaos(p, spec, |comm| {
            for round in 0..3u8 {
                let right = (comm.rank() + 1) % p;
                let msgs = vec![
                    (right, vec![round, comm.rank() as u8]),
                    (0, vec![0xA0 | comm.rank() as u8]),
                ];
                let got = comm.sparse_alltoallv(&msgs).unwrap();
                if comm.rank() == 0 {
                    // Ring message from p-1 plus one direct message from
                    // every rank: p + 1 in total, with BOTH messages from
                    // rank p-1 present exactly once each.
                    assert_eq!(got.len(), p + 1, "round {round}");
                    let from_last: Vec<&Vec<u8>> = got
                        .iter()
                        .filter(|m| m.source == p - 1)
                        .map(|m| &m.data)
                        .collect();
                    assert_eq!(
                        from_last,
                        vec![&vec![round, (p - 1) as u8], &vec![0xA0 | (p - 1) as u8]],
                        "round {round}"
                    );
                } else {
                    let left = (comm.rank() + p - 1) % p;
                    assert_eq!(got.len(), 1, "round {round}");
                    assert_eq!(got[0].source, left);
                    assert_eq!(got[0].data, vec![round, left as u8]);
                }
            }
        })
        .unwrap();
    }
}
