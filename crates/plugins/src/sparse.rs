//! Sparse all-to-all via the NBX algorithm (paper §V-A).
//!
//! `MPI_Alltoallv` needs a counts array with one entry *per rank* and posts
//! one message per peer — linear in the communicator size even when almost
//! all counts are zero. For sparse, rapidly changing communication patterns
//! (dynamic graph algorithms!) the paper's `SparseAlltoall` plugin accepts
//! a set of destination→message pairs and runs the NBX dynamic sparse data
//! exchange of Hoefler, Siebert and Lumsdaine (PPoPP'10):
//!
//! 1. issend every outgoing message (synchronous mode: the request
//!    completes only when the receiver matched it);
//! 2. loop: probe for incoming messages and receive them; once all own
//!    sends completed, enter a non-blocking barrier; once the barrier
//!    completes, every message in the system has been matched — stop.
//!
//! Cost: O(degree) messages per rank plus a barrier — no term linear in p.

use std::collections::HashMap;

use kamping::plugin::CommunicatorPlugin;
use kamping::types::{bytes_to_pods, pod_as_bytes, PodType};
use kamping::{Communicator, KResult};
use kamping_mpi::tag::MAX_USER_TAG;
use kamping_mpi::{RawRequest, ANY_SOURCE};

/// Number of tags in the rotation band.
const SPARSE_TAG_ROTATION: kamping_mpi::Tag = 4096;

/// First tag of the band reserved by this plugin for NBX traffic (the top
/// 4096 user tags; applications should stay below [`SPARSE_TAG_BASE`]).
/// Rotating the tag between rounds keeps a fast rank's next-round message
/// from being matched by a peer still draining the previous round.
pub const SPARSE_TAG_BASE: kamping_mpi::Tag = MAX_USER_TAG - (SPARSE_TAG_ROTATION - 1);

/// A message received by [`SparseAlltoall::sparse_alltoall`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseMessage<T> {
    /// Sender's rank.
    pub source: usize,
    /// The payload.
    pub data: Vec<T>,
}

/// The sparse all-to-all plugin (extension trait, §III-F).
pub trait SparseAlltoall: CommunicatorPlugin {
    /// Exchanges destination→message pairs using NBX. Returns all received
    /// messages, sorted by source rank for determinism.
    ///
    /// Every rank of the communicator must call this (it contains a
    /// barrier), but ranks may pass empty message sets.
    fn sparse_alltoall<T: PodType>(
        &self,
        messages: HashMap<usize, Vec<T>>,
    ) -> KResult<Vec<SparseMessage<T>>> {
        let comm = self.comm();
        let raw = comm.raw();
        // Per-round tag: rank-synchronized because sparse_alltoall is
        // collective (every rank calls it in the same order).
        let tag = SPARSE_TAG_BASE + (raw.next_operation_seq() % SPARSE_TAG_ROTATION);

        // 1. Post all sends in synchronous mode.
        let mut send_reqs: Vec<RawRequest> = Vec::with_capacity(messages.len());
        for (dest, data) in &messages {
            let wire = pod_as_bytes(data).to_vec();
            send_reqs.push(raw.issend(*dest, tag, wire)?);
        }

        let mut received: Vec<SparseMessage<T>> = Vec::new();
        let mut barrier: Option<RawRequest> = None;

        // 2. Probe/receive until the barrier certifies global quiescence.
        loop {
            // Drain all currently visible messages.
            while let Some(status) = raw.iprobe(ANY_SOURCE, tag)? {
                let (wire, st) = raw.recv(status.source, tag)?;
                received.push(SparseMessage {
                    source: st.source,
                    data: bytes_to_pods(&wire)?,
                });
            }

            match &mut barrier {
                None => {
                    // All own sends matched? Then join the barrier.
                    let all_done = {
                        let mut done = true;
                        for r in &mut send_reqs {
                            if !r.is_complete() && r.test()?.is_none() {
                                done = false;
                            }
                        }
                        done
                    };
                    if all_done {
                        barrier = Some(raw.ibarrier()?);
                    }
                }
                Some(req) => {
                    if req.test()?.is_some() {
                        break;
                    }
                }
            }
            std::thread::yield_now();
        }

        // No draining after barrier completion: synchronous-mode semantics
        // guarantee every message of this round was matched before any rank
        // entered the barrier, and a drain here could steal messages of a
        // *subsequent* NBX round from a fast peer.

        received.sort_by_key(|m| m.source);
        Ok(received)
    }
}

impl SparseAlltoall for Communicator {}

#[cfg(test)]
mod tests {
    use super::*;
    use kamping_mpi::Op;

    #[test]
    fn ring_pattern_delivers_exactly_neighbors() {
        kamping::run(5, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let mut msgs = HashMap::new();
            msgs.insert(right, vec![comm.rank() as u64; 3]);
            let got = comm.sparse_alltoall(msgs).unwrap();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].source, left);
            assert_eq!(got[0].data, vec![left as u64; 3]);
        });
    }

    #[test]
    fn empty_pattern_terminates() {
        kamping::run(4, |comm| {
            let got = comm
                .sparse_alltoall(HashMap::<usize, Vec<u8>>::new())
                .unwrap();
            assert!(got.is_empty());
        });
    }

    #[test]
    fn asymmetric_pattern() {
        kamping::run(4, |comm| {
            // Only rank 0 sends, to everyone including itself.
            let mut msgs = HashMap::new();
            if comm.rank() == 0 {
                for d in 0..comm.size() {
                    msgs.insert(d, vec![d as u32 * 7]);
                }
            }
            let got = comm.sparse_alltoall(msgs).unwrap();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].source, 0);
            assert_eq!(got[0].data, vec![comm.rank() as u32 * 7]);
        });
    }

    #[test]
    fn repeated_rounds_do_not_interfere() {
        kamping::run(3, |comm| {
            for round in 0..5u64 {
                let mut msgs = HashMap::new();
                msgs.insert((comm.rank() + 1) % comm.size(), vec![round]);
                let got = comm.sparse_alltoall(msgs).unwrap();
                assert_eq!(got.len(), 1);
                assert_eq!(got[0].data, vec![round]);
            }
        });
    }

    #[test]
    fn message_cost_is_degree_not_p() {
        let (_, profile) = kamping::run_profiled(8, |comm| {
            let before = comm.profile();
            let mut msgs = HashMap::new();
            msgs.insert((comm.rank() + 1) % comm.size(), vec![1u8; 100]);
            comm.sparse_alltoall(msgs).unwrap();
            comm.profile().since(&before)
        });
        // Issend per rank: exactly 1 (its one destination) — not p-1.
        assert_eq!(profile.total_calls(Op::Issend), 8);
        // A dense alltoallv would have been 8 calls x 7 peers = 56 posts;
        // NBX posts 8 payload envelopes (the barrier is counter-based).
        assert_eq!(profile.total_calls(Op::Alltoallv), 0);
    }

    #[test]
    fn sorted_by_source() {
        kamping::run(6, |comm| {
            // Everyone sends to rank 0.
            let mut msgs = HashMap::new();
            if comm.rank() != 0 {
                msgs.insert(0, vec![comm.rank() as u16]);
            }
            let got = comm.sparse_alltoall(msgs).unwrap();
            if comm.rank() == 0 {
                let sources: Vec<usize> = got.iter().map(|m| m.source).collect();
                assert_eq!(sources, vec![1, 2, 3, 4, 5]);
            }
        });
    }
}
