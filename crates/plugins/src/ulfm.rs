//! User-level failure mitigation plugin (paper §V-B, Fig. 12).
//!
//! The upcoming MPI 5.0 standard lets applications recover from process
//! failures (ULFM): a failure surfaces as an error, the application
//! *revokes* the communicator so every rank learns about it, *shrinks* it
//! to the survivors and continues. KaMPIng's plugin wraps this in
//! idiomatic error handling — exceptions there, `Result`s here — instead
//! of C return-code checking:
//!
//! ```
//! use kamping::prelude::*;
//! use kamping_plugins::UlfmPlugin;
//!
//! kamping::run(4, |mut comm| {
//!     if comm.rank() == 3 {
//!         comm.simulate_failure();
//!         return 0;
//!     }
//!     // Fig. 12: catch the failure, revoke, shrink, continue.
//!     let sum = loop {
//!         match comm.allreduce_single(1u64, |a, b| a + b) {
//!             Ok(v) => break v,
//!             Err(e) if e.is_process_failure() => {
//!                 if !comm.is_revoked() {
//!                     comm.revoke();
//!                 }
//!                 comm = comm.shrink().unwrap();
//!             }
//!             Err(e) => panic!("unexpected: {e}"),
//!         }
//!     };
//!     assert_eq!(sum, 3);
//!     sum
//! });
//! ```

use kamping::plugin::CommunicatorPlugin;
use kamping::{Communicator, KResult};

/// The fault-tolerance plugin (extension trait, §III-F).
pub trait UlfmPlugin: CommunicatorPlugin {
    /// Marks this rank as failed (failure injection for testing recovery
    /// paths; a panicking rank is marked automatically).
    fn simulate_failure(&self) {
        self.comm().raw().simulate_failure();
    }

    /// Revokes the communicator on every rank: all pending and future
    /// operations on it fail, except [`shrink`](Self::shrink) and
    /// [`agree`](Self::agree).
    fn revoke(&self) {
        self.comm().raw().revoke();
    }

    /// True once the communicator has been revoked by any rank.
    fn is_revoked(&self) -> bool {
        self.comm().raw().is_revoked()
    }

    /// Communicator-local ranks of the surviving members.
    fn survivors(&self) -> Vec<usize> {
        self.comm().raw().survivors()
    }

    /// Creates a new communicator containing only the surviving processes
    /// (collective over the survivors; works on revoked communicators).
    fn shrink(&self) -> KResult<Communicator> {
        Ok(Communicator::new(self.comm().raw().shrink()?))
    }

    /// Fault-tolerant agreement: logical AND of `flag` over the survivors
    /// (works on revoked communicators).
    fn agree(&self, flag: bool) -> KResult<bool> {
        Ok(self.comm().raw().agree(flag)?)
    }
}

impl UlfmPlugin for Communicator {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_surfaces_as_process_failure_error() {
        kamping::run(3, |comm| {
            if comm.rank() == 2 {
                comm.simulate_failure();
                return;
            }
            let err = comm.allreduce_single(1u64, |a, b| a + b).unwrap_err();
            assert!(err.is_process_failure());
        });
    }

    #[test]
    fn fig12_recovery_loop() {
        let sums = kamping::run(5, |mut comm| {
            if comm.rank() == 1 {
                comm.simulate_failure();
                return 0;
            }
            loop {
                match comm.allreduce_single(1u64, |a, b| a + b) {
                    Ok(v) => break v,
                    Err(e) if e.is_process_failure() => {
                        if !comm.is_revoked() {
                            comm.revoke();
                        }
                        comm = comm.shrink().unwrap();
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        });
        // The four survivors agree on the post-recovery reduction.
        let survivors: Vec<u64> = sums
            .iter()
            .enumerate()
            .filter(|&(r, _)| r != 1)
            .map(|(_, &v)| v)
            .collect();
        assert_eq!(survivors, vec![4, 4, 4, 4]);
    }

    #[test]
    fn agreement_over_survivors() {
        kamping::run(4, |comm| {
            if comm.rank() == 0 {
                comm.simulate_failure();
                return;
            }
            while comm.survivors().len() == 4 {
                std::thread::yield_now();
            }
            let ok = comm.agree(true).unwrap();
            assert!(ok);
            let not_ok = comm.agree(comm.rank() != 2).unwrap();
            assert!(!not_ok);
        });
    }

    #[test]
    fn shrink_twice_survives_cascading_failures() {
        kamping::run(5, |comm| {
            match comm.rank() {
                4 => {
                    comm.simulate_failure();
                }
                3 => {
                    // Fail only after the first shrink completed elsewhere:
                    // keep it simple and fail immediately too — a cascade.
                    comm.simulate_failure();
                }
                _ => {
                    while comm.survivors().len() > 3 {
                        std::thread::yield_now();
                    }
                    let shrunk = comm.shrink().unwrap();
                    assert_eq!(shrunk.size(), 3);
                    let v = shrunk.allreduce_single(1u64, |a, b| a + b).unwrap();
                    assert_eq!(v, 3);
                }
            }
        });
    }
}
