//! Deserialization errors.

use std::fmt;

/// Errors raised while decoding an archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerialError {
    /// The archive ended before the value was complete.
    UnexpectedEof {
        /// Bytes the decoder wanted.
        wanted: usize,
        /// Bytes that were left.
        left: usize,
    },
    /// Decoding finished but bytes remained.
    TrailingBytes {
        /// Number of unconsumed bytes.
        left: usize,
    },
    /// The bytes were structurally invalid for the target type.
    Invalid(&'static str),
}

impl fmt::Display for SerialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerialError::UnexpectedEof { wanted, left } => {
                write!(
                    f,
                    "unexpected end of archive: wanted {wanted} bytes, {left} left"
                )
            }
            SerialError::TrailingBytes { left } => {
                write!(f, "archive has {left} trailing bytes after the value")
            }
            SerialError::Invalid(what) => write!(f, "invalid archive contents: {what}"),
        }
    }
}

impl std::error::Error for SerialError {}
