//! [`Serialize`]/[`Deserialize`] implementations for standard types —
//! the "STL coverage" Cereal ships and the paper relies on (strings, maps,
//! vectors, options, tuples).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hash};

use crate::{Deserialize, Reader, SerialError, Serialize, Writer};

macro_rules! impl_num {
    ($($ty:ty),+) => {
        $(
            impl Serialize for $ty {
                fn serialize(&self, w: &mut Writer) {
                    w.put_bytes(&self.to_le_bytes());
                }
            }
            impl Deserialize for $ty {
                fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
                    let raw = r.take(std::mem::size_of::<$ty>())?;
                    Ok(<$ty>::from_le_bytes(raw.try_into().expect("sized take")))
                }
            }
        )+
    };
}

impl_num!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

impl Serialize for usize {
    fn serialize(&self, w: &mut Writer) {
        (*self as u64).serialize(w);
    }
}
impl Deserialize for usize {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        Ok(u64::deserialize(r)? as usize)
    }
}

impl Serialize for isize {
    fn serialize(&self, w: &mut Writer) {
        (*self as i64).serialize(w);
    }
}
impl Deserialize for isize {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        Ok(i64::deserialize(r)? as isize)
    }
}

impl Serialize for bool {
    fn serialize(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
}
impl Deserialize for bool {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SerialError::Invalid("bool byte not 0/1")),
        }
    }
}

impl Serialize for char {
    fn serialize(&self, w: &mut Writer) {
        (*self as u32).serialize(w);
    }
}
impl Deserialize for char {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        char::from_u32(u32::deserialize(r)?).ok_or(SerialError::Invalid("invalid char scalar"))
    }
}

impl Serialize for String {
    fn serialize(&self, w: &mut Writer) {
        w.put_len(self.len());
        w.put_bytes(self.as_bytes());
    }
}
impl Serialize for str {
    fn serialize(&self, w: &mut Writer) {
        w.put_len(self.len());
        w.put_bytes(self.as_bytes());
    }
}
impl Deserialize for String {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        let len = r.take_len(1)?;
        let raw = r.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| SerialError::Invalid("string not UTF-8"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, w: &mut Writer) {
        self.as_slice().serialize(w);
    }
}
impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, w: &mut Writer) {
        w.put_len(self.len());
        for item in self {
            item.serialize(w);
        }
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        let len = r.take_len(std::mem::size_of::<T>().min(1))?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::deserialize(r)?);
        }
        Ok(out)
    }
}

/// Byte vectors take a bulk path: one length prefix plus one memcpy,
/// instead of a per-element loop (the hot case for packed payloads).
pub mod bytes_fast {
    use super::*;

    /// Serializes a byte slice in bulk.
    pub fn put(w: &mut Writer, bytes: &[u8]) {
        w.put_len(bytes.len());
        w.put_bytes(bytes);
    }

    /// Deserializes a byte vector in bulk.
    pub fn take(r: &mut Reader<'_>) -> Result<Vec<u8>, SerialError> {
        let len = r.take_len(1)?;
        Ok(r.take(len)?.to_vec())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self, w: &mut Writer) {
        w.put_len(self.len());
        for item in self {
            item.serialize(w);
        }
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        let len = r.take_len(std::mem::size_of::<T>().min(1))?;
        let mut out = VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::deserialize(r)?);
        }
        Ok(out)
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize(&self, w: &mut Writer) {
        match self {
            Ok(v) => {
                w.put_u8(0);
                v.serialize(w);
            }
            Err(e) => {
                w.put_u8(1);
                e.serialize(w);
            }
        }
    }
}
impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        match r.take_u8()? {
            0 => Ok(Ok(T::deserialize(r)?)),
            1 => Ok(Err(E::deserialize(r)?)),
            _ => Err(SerialError::Invalid("result discriminant not 0/1")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, w: &mut Writer) {
        for item in self {
            item.serialize(w);
        }
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        // Decode into a Vec first; arrays of non-Copy types cannot be
        // built elementwise without unsafe.
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::deserialize(r)?);
        }
        items
            .try_into()
            .map_err(|_| SerialError::Invalid("array length"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.serialize(w);
            }
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(r)?)),
            _ => Err(SerialError::Invalid("option discriminant not 0/1")),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self, w: &mut Writer) {
                $(self.$idx.serialize(w);)+
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
                Ok(($($name::deserialize(r)?,)+))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl Serialize for () {
    fn serialize(&self, _w: &mut Writer) {}
}
impl Deserialize for () {
    fn deserialize(_r: &mut Reader<'_>) -> Result<Self, SerialError> {
        Ok(())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self, w: &mut Writer) {
        w.put_len(self.len());
        for (k, v) in self {
            k.serialize(w);
            v.serialize(w);
        }
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        let len = r.take_len(1)?;
        let mut out = HashMap::with_capacity_and_hasher(len, S::default());
        for _ in 0..len {
            let k = K::deserialize(r)?;
            let v = V::deserialize(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, w: &mut Writer) {
        w.put_len(self.len());
        for (k, v) in self {
            k.serialize(w);
            v.serialize(w);
        }
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        let len = r.take_len(1)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::deserialize(r)?;
            let v = V::deserialize(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn serialize(&self, w: &mut Writer) {
        w.put_len(self.len());
        for item in self {
            item.serialize(w);
        }
    }
}
impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        let len = r.take_len(1)?;
        let mut out = HashSet::with_capacity_and_hasher(len, S::default());
        for _ in 0..len {
            out.insert(T::deserialize(r)?);
        }
        Ok(out)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self, w: &mut Writer) {
        w.put_len(self.len());
        for item in self {
            item.serialize(w);
        }
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        let len = r.take_len(1)?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::deserialize(r)?);
        }
        Ok(out)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, w: &mut Writer) {
        (**self).serialize(w);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self, w: &mut Writer) {
        (**self).serialize(w);
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError> {
        Ok(Box::new(T::deserialize(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let back: T = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn numbers_roundtrip() {
        roundtrip(0u8);
        roundtrip(u16::MAX);
        roundtrip(-5i32);
        roundtrip(u64::MAX);
        roundtrip(i128::MIN);
        roundtrip(3.25f32);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(usize::MAX);
        roundtrip(-1isize);
    }

    #[test]
    fn float_nan_bits_preserved() {
        let v = f64::from_bits(0x7ff8_dead_beef_0001);
        let back: f64 = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn bool_char_string() {
        roundtrip(true);
        roundtrip(false);
        roundtrip('ß');
        roundtrip(String::from("grüße from Karlsruhe 🎓"));
        roundtrip(String::new());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
        roundtrip(Some(vec![1u64]));
        roundtrip(Option::<u8>::None);
        roundtrip((1u8, String::from("two"), 3.0f64));
        roundtrip([1u16, 2, 3]);
    }

    #[test]
    fn maps_and_sets_roundtrip() {
        let mut hm = HashMap::new();
        hm.insert("a".to_string(), vec![1u32]);
        hm.insert("b".to_string(), vec![2, 3]);
        roundtrip(hm);

        let mut bt = BTreeMap::new();
        bt.insert(1u8, "one".to_string());
        roundtrip(bt);

        let hs: HashSet<u32> = [5, 6, 7].into_iter().collect();
        roundtrip(hs);

        let bs: BTreeSet<String> = ["x".to_string()].into_iter().collect();
        roundtrip(bs);
    }

    #[test]
    fn boxed_values() {
        roundtrip(Box::new(42u64));
    }

    #[test]
    fn vecdeque_and_result() {
        let dq: VecDeque<u32> = [1, 2, 3].into_iter().collect();
        roundtrip(dq);
        roundtrip(Result::<u8, String>::Ok(7));
        roundtrip(Result::<u8, String>::Err("boom".into()));
        assert!(from_bytes::<Result<u8, u8>>(&[9]).is_err());
    }

    #[test]
    fn bytes_fast_path_roundtrips() {
        let mut w = crate::Writer::new();
        bytes_fast::put(&mut w, b"raw payload");
        let wire = w.into_bytes();
        let mut r = crate::Reader::new(&wire);
        assert_eq!(bytes_fast::take(&mut r).unwrap(), b"raw payload");
        r.finish().unwrap();
    }

    #[test]
    fn corrupt_inputs_error_not_panic() {
        assert!(from_bytes::<bool>(&[2]).is_err());
        assert!(from_bytes::<char>(&0xD800u32.to_le_bytes()).is_err());
        assert!(from_bytes::<Option<u8>>(&[7]).is_err());
        // Non-UTF8 string payload
        let mut wire = Vec::new();
        wire.extend_from_slice(&2u64.to_le_bytes());
        wire.extend_from_slice(&[0xFF, 0xFE]);
        assert!(from_bytes::<String>(&wire).is_err());
    }

    #[test]
    fn vec_of_unit_cannot_allocation_bomb() {
        // Vec<()> has zero-size elements: huge length prefixes are legal
        // in principle but must not OOM the decoder via with_capacity.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(1u64 << 20).to_le_bytes());
        // Decoding either succeeds (all elements are ()) or errors; it must
        // not crash or OOM. We only require termination here.
        let _ = from_bytes::<Vec<()>>(&wire);
    }
}
