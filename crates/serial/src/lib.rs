//! # kamping-serial — binary archive serialization
//!
//! The KaMPIng paper (§III-D3) supports communicating non-contiguous,
//! heap-backed data (`std::unordered_map<std::string, …>`-like payloads) via
//! *opt-in, transparent* serialization built on the C++ Cereal library.
//! This crate is the Rust substitute: a small, dependency-light binary
//! archive with the same design goals —
//!
//! * **opt-in**: nothing is serialized implicitly; the binding layer only
//!   engages this crate through the explicit `as_serialized` /
//!   `as_deserializable` adapters, because hidden serialization means
//!   hidden allocation and copy costs (the paper's critique of Boost.MPI);
//! * **transparent**: the user never sees the wire bytes;
//! * **extensible**: custom types implement [`Serialize`]/[`Deserialize`]
//!   by hand or through the [`serial_struct!`] macro (the no-proc-macro
//!   analog of Cereal's member-listing archives).
//!
//! The wire format is little-endian, fixed-width, length-prefixed — chosen
//! for determinism and speed, not compactness (Cereal's binary archive
//! makes the same trade).
//!
//! ```
//! use kamping_serial::{from_bytes, to_bytes};
//! use std::collections::HashMap;
//!
//! let mut dict = HashMap::new();
//! dict.insert("model".to_string(), "GTR+G".to_string());
//! let wire = to_bytes(&dict);
//! let back: HashMap<String, String> = from_bytes(&wire).unwrap();
//! assert_eq!(back, dict);
//! ```

mod error;
mod impls;
mod reader;
mod writer;

pub use impls::bytes_fast;

pub use error::SerialError;
pub use reader::Reader;
pub use writer::Writer;

/// Types that can be written to a binary archive.
pub trait Serialize {
    /// Appends this value's encoding to the writer.
    fn serialize(&self, w: &mut Writer);
}

/// Types that can be read back from a binary archive.
pub trait Deserialize: Sized {
    /// Decodes one value from the reader.
    fn deserialize(r: &mut Reader<'_>) -> Result<Self, SerialError>;
}

/// Serializes `value` into a fresh byte buffer.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.serialize(&mut w);
    w.into_bytes()
}

/// Deserializes a `T` from `bytes`, requiring that all bytes are consumed.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, SerialError> {
    let mut r = Reader::new(bytes);
    let value = T::deserialize(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// Implements [`Serialize`] and [`Deserialize`] for a struct by listing its
/// fields — the moral equivalent of a Cereal `serialize(Archive&)` member
/// that names every field.
///
/// ```
/// use kamping_serial::{from_bytes, serial_struct, to_bytes};
///
/// #[derive(Debug, PartialEq)]
/// struct Model {
///     name: String,
///     rates: Vec<f64>,
/// }
/// serial_struct!(Model { name, rates });
///
/// let m = Model { name: "GTR".into(), rates: vec![0.25; 4] };
/// let back: Model = from_bytes(&to_bytes(&m)).unwrap();
/// assert_eq!(back, m);
/// ```
#[macro_export]
macro_rules! serial_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn serialize(&self, w: &mut $crate::Writer) {
                $($crate::Serialize::serialize(&self.$field, w);)+
            }
        }
        impl $crate::Deserialize for $ty {
            fn deserialize(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::SerialError> {
                Ok(Self {
                    $($field: $crate::Deserialize::deserialize(r)?,)+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_top_level_helpers() {
        let v = vec![1u32, 2, 3];
        let back: Vec<u32> = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut wire = to_bytes(&7u32);
        wire.push(0xFF);
        assert_eq!(
            from_bytes::<u32>(&wire),
            Err(SerialError::TrailingBytes { left: 1 })
        );
    }

    #[derive(Debug, PartialEq)]
    struct Nested {
        id: u64,
        tags: Vec<String>,
        blob: Option<Vec<u8>>,
    }
    serial_struct!(Nested { id, tags, blob });

    #[test]
    fn serial_struct_macro_roundtrips() {
        let n = Nested {
            id: 42,
            tags: vec!["a".into(), "bc".into()],
            blob: Some(vec![9, 9, 9]),
        };
        let back: Nested = from_bytes(&to_bytes(&n)).unwrap();
        assert_eq!(back, n);
    }
}
