//! Archive reader.

use crate::SerialError;

/// Cursor over an archive's bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SerialError> {
        if self.remaining() < n {
            return Err(SerialError::UnexpectedEof {
                wanted: n,
                left: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Takes a `u64` length prefix, validating it against the remaining
    /// bytes (`min_elem_size` guards against absurd lengths from corrupt
    /// archives before any allocation happens).
    pub fn take_len(&mut self, min_elem_size: usize) -> Result<usize, SerialError> {
        let raw = self.take(8)?;
        let len = u64::from_le_bytes(raw.try_into().expect("8 bytes")) as usize;
        if min_elem_size > 0 && len > self.remaining() / min_elem_size {
            return Err(SerialError::Invalid("length prefix exceeds archive size"));
        }
        Ok(len)
    }

    /// Takes one byte.
    pub fn take_u8(&mut self) -> Result<u8, SerialError> {
        Ok(self.take(1)?[0])
    }

    /// Asserts that the archive has been fully consumed.
    pub fn finish(&self) -> Result<(), SerialError> {
        if self.remaining() != 0 {
            return Err(SerialError::TrailingBytes {
                left: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_advances_cursor() {
        let mut r = Reader::new(&[1, 2, 3, 4]);
        assert_eq!(r.take(2).unwrap(), &[1, 2]);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.take_u8().unwrap(), 3);
        assert!(r.finish().is_err());
        r.take(1).unwrap();
        assert!(r.finish().is_ok());
    }

    #[test]
    fn eof_detected() {
        let mut r = Reader::new(&[1]);
        assert_eq!(
            r.take(2),
            Err(SerialError::UnexpectedEof { wanted: 2, left: 1 })
        );
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocation() {
        // Claims 2^60 elements with only 0 bytes of payload behind it.
        let wire = (1u64 << 60).to_le_bytes();
        let mut r = Reader::new(&wire);
        assert_eq!(
            r.take_len(1),
            Err(SerialError::Invalid("length prefix exceeds archive size"))
        );
    }

    #[test]
    fn zero_min_elem_size_skips_plausibility_check() {
        // Zero-sized element types can legitimately claim huge lengths.
        let wire = 10u64.to_le_bytes();
        let mut r = Reader::new(&wire);
        assert_eq!(r.take_len(0).unwrap(), 10);
    }
}
