//! Archive writer.

/// Append-only binary archive writer (little-endian, fixed-width).
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64` length prefix (collection sizes).
    pub fn put_len(&mut self, len: usize) {
        self.buf.extend_from_slice(&(len as u64).to_le_bytes());
    }

    /// Appends one `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Finalizes the archive.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_appends_in_order() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_bytes(&[2, 3]);
        w.put_len(4);
        let bytes = w.into_bytes();
        assert_eq!(&bytes[..3], &[1, 2, 3]);
        assert_eq!(&bytes[3..], &4u64.to_le_bytes());
    }

    #[test]
    fn with_capacity_is_empty() {
        let w = Writer::with_capacity(128);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }
}
