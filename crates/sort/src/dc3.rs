//! Distributed DC3/DCX suffix-array construction (paper §IV-A).
//!
//! DCX (Kärkkäinen–Sanders–Burkhardt) is the paper's second suffix-array
//! algorithm: its KaMPIng port is 1 264 LoC against pDCX's 1 396 LoC of
//! plain MPI, with the savings coming from exactly the boilerplate this
//! crate's binding layer eliminates (send-count distribution for
//! `MPI_Alltoallv`, type construction).
//!
//! This is the X = 3 member (the skew algorithm), fully distributed,
//! including the **distributed recursion**:
//!
//! 1. build the (t[i], t[i+1], t[i+2]) triples of the *sample* suffixes
//!    (i mod 3 ≠ 0) — the shifted characters come from neighbour blocks
//!    via one personalized exchange per shift;
//! 2. sort the triples with the distributed sample sort and name them
//!    densely; if names are not unique, recurse on the two-thirds-length
//!    text of names (distributed again);
//! 3. the recursion yields the total order of the sample suffixes; every
//!    suffix then gets a constant-size comparison key — (char, char,
//!    sample-rank, sample-rank, own-rank) — under which *suffix order is a
//!    total order computable per pair*, so one final distributed sort of
//!    all n keyed records produces the suffix array. (Sequential DC3
//!    merges two sequences instead; a comparison-based global sort is the
//!    natural distributed formulation and what pDCX's merge amounts to.)
//!
//! Small subproblems bottom out in a sequential prefix-doubling sort at
//! rank 0.

use std::cmp::Ordering;
use std::collections::HashMap;

use kamping::prelude::*;

use crate::sample_sort::sample_sort_kamping;
use crate::suffix::Blocks;

/// Below this size, gather the values to rank 0 and finish sequentially.
const SEQ_BASE: u64 = 2048;

/// A named sample triple: (c0, c1, c2) with its position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Triple {
    c0: u64,
    c1: u64,
    c2: u64,
    idx: u64,
}
kamping::impl_pod!(Triple: u64, u64, u64, u64);

/// The merge record of one suffix: everything any pairwise suffix
/// comparison can need (§ module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MergeRec {
    /// Suffix start position.
    idx: u64,
    /// t[idx], t[idx + 1] (0 past the end).
    c0: u64,
    c1: u64,
    /// Sample ranks of idx, idx + 1, idx + 2 (0 where not a sample / past
    /// the end).
    r0: u64,
    r1: u64,
    r2: u64,
}
kamping::impl_pod!(MergeRec: u64, u64, u64, u64, u64, u64);

impl MergeRec {
    /// Suffix-order comparison via the DC3 case analysis.
    fn suffix_cmp(&self, other: &Self) -> Ordering {
        let (a, b) = (self, other);
        let am = a.idx % 3;
        let bm = b.idx % 3;
        let semantic = if am != 0 && bm != 0 {
            // two sample suffixes: total order by sample rank
            a.r0.cmp(&b.r0)
        } else if am == 0 && bm == 0 {
            (a.c0, a.r1).cmp(&(b.c0, b.r1))
        } else if am == 0 {
            // a ≡ 0 vs sample b
            if bm == 1 {
                (a.c0, a.r1).cmp(&(b.c0, b.r1))
            } else {
                (a.c0, a.c1, a.r2).cmp(&(b.c0, b.c1, b.r2))
            }
        } else {
            // sample a vs b ≡ 0: mirror
            other.suffix_cmp(self).reverse()
        };
        // Distinct suffixes never tie semantically; the index fallback
        // keeps Ord total (and consistent with Eq) regardless.
        semantic.then_with(|| a.idx.cmp(&b.idx))
    }
}

impl PartialOrd for MergeRec {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeRec {
    fn cmp(&self, other: &Self) -> Ordering {
        self.suffix_cmp(other)
    }
}

/// Computes the suffix array of the distributed text with DC3.
/// Same interface as [`crate::suffix::suffix_array_prefix_doubling`].
pub fn suffix_array_dc3(comm: &Communicator, text_local: &[u8], n: u64) -> KResult<Vec<u64>> {
    let vals: Vec<u64> = text_local.iter().map(|&c| c as u64 + 1).collect();
    dc3_rec(comm, vals, n)
}

/// One level of the distributed recursion over a value text (values >= 1).
fn dc3_rec(comm: &Communicator, vals: Vec<u64>, n: u64) -> KResult<Vec<u64>> {
    let p = comm.size();
    let blocks = Blocks { n, p };
    let lo = blocks.start(comm.rank());
    let hi = blocks.start(comm.rank() + 1);
    debug_assert_eq!(vals.len() as u64, hi - lo);
    if n == 0 {
        return Ok(Vec::new());
    }
    if n <= SEQ_BASE {
        return sequential_base(comm, &vals, n);
    }

    // --- 1. sample triples ------------------------------------------------
    let t1 = fetch_shifted(comm, &vals, blocks, 1)?;
    let t2 = fetch_shifted(comm, &vals, blocks, 2)?;
    let mut triples: Vec<Triple> = (lo..hi)
        .filter(|i| i % 3 != 0)
        .map(|i| {
            let k = (i - lo) as usize;
            Triple {
                c0: vals[k],
                c1: t1[k],
                c2: t2[k],
                idx: i,
            }
        })
        .collect();
    sample_sort_kamping(comm, &mut triples, 0xDC3 ^ n)?;

    // --- 2. dense naming ---------------------------------------------------
    let prev = previous_last_triple(comm, &triples)?;
    let mut flags = vec![0u64; triples.len()];
    for (t, w) in triples.iter().enumerate() {
        let differs = if t == 0 {
            match prev {
                Some((a, b, c)) => (w.c0, w.c1, w.c2) != (a, b, c),
                None => true,
            }
        } else {
            let q = &triples[t - 1];
            (w.c0, w.c1, w.c2) != (q.c0, q.c1, q.c2)
        };
        flags[t] = differs as u64;
    }
    let local_distinct: u64 = flags.iter().sum();
    let name_offset = comm.exscan_single(local_distinct, 0, |a, b| a + b)?;
    let total_names = comm.allreduce_single(local_distinct, |a, b| a + b)?;

    let n1 = (n + 1) / 3; // #positions ≡ 1 (mod 3)
    let n2 = n / 3; // #positions ≡ 2 (mod 3)
    let m_real = n1 + n2;
    // Canonical skew sentinel: when n ≡ 1 (mod 3) the reduced text gets a
    // dummy mod-1 position (conceptually i = n with a 0-triple); without
    // it, a mod-1 suffix of R can run into the mod-2 block and compare
    // incorrectly. The dummy's value is strictly smaller than every real
    // name, acting as a separator at the 1/2 boundary.
    let has_dummy = n % 3 == 1;
    let n1_pad = n1 + u64::from(has_dummy);
    let m = n1_pad + n2;

    // R-position of sample position i (dummy occupies slot n1_pad - 1).
    let r_pos = |i: u64| {
        if i % 3 == 1 {
            (i - 1) / 3
        } else {
            n1_pad + (i - 2) / 3
        }
    };
    // Original position of R-position q (the dummy maps to i = n).
    let orig_pos = |q: u64| {
        if q < n1_pad {
            3 * q + 1
        } else {
            3 * (q - n1_pad) + 2
        }
    };

    let sample_rank_by_rpos: Vec<u64>;
    let r_blocks;
    if total_names == m_real {
        // Names already unique: they are the sample ranks; no reduced
        // text, no dummy needed.
        r_blocks = Blocks { n: m, p };
        let mut names_acc = name_offset;
        let mut to_r: HashMap<usize, Vec<u64>> = HashMap::new();
        for (w, &f) in triples.iter().zip(&flags) {
            names_acc += f;
            to_r.entry(r_blocks.owner(r_pos(w.idx)))
                .or_default()
                .extend([r_pos(w.idx), names_acc]);
        }
        sample_rank_by_rpos = deliver_indexed(comm, to_r, r_blocks)?;
    } else {
        // Recurse on the text of names (length m, distributed). Real names
        // are shifted by 1 past the dummy's value.
        r_blocks = Blocks { n: m, p };
        let shift = u64::from(has_dummy);
        let mut names_acc = name_offset;
        let mut to_r: HashMap<usize, Vec<u64>> = HashMap::new();
        for (w, &f) in triples.iter().zip(&flags) {
            names_acc += f;
            to_r.entry(r_blocks.owner(r_pos(w.idx)))
                .or_default()
                .extend([r_pos(w.idx), names_acc + shift]);
        }
        if has_dummy && comm.rank() == 0 {
            // Exactly one rank contributes the sentinel (value 1).
            let q_d = n1_pad - 1;
            to_r.entry(r_blocks.owner(q_d))
                .or_default()
                .extend([q_d, 1]);
        }
        let r_local = deliver_indexed(comm, to_r, r_blocks)?;
        let sa_r = dc3_rec(comm, r_local, m)?;
        // Invert: R-position sa_r[q] has rank q + 1 (the dummy absorbs the
        // smallest rank; real ranks only need to be order-correct).
        let r_lo = r_blocks.start(comm.rank());
        let mut inv: HashMap<usize, Vec<u64>> = HashMap::new();
        for (off, &rpos) in sa_r.iter().enumerate() {
            let global_pos = r_lo + off as u64;
            inv.entry(r_blocks.owner(rpos))
                .or_default()
                .extend([rpos, global_pos + 1]);
        }
        sample_rank_by_rpos = deliver_indexed(comm, inv, r_blocks)?;
    }

    // --- 3. distribute sample ranks onto original positions ---------------
    // S[i] = sample rank of i (0 for i ≡ 0 mod 3), block-distributed by i.
    let r_lo = r_blocks.start(comm.rank());
    let mut to_orig: HashMap<usize, Vec<u64>> = HashMap::new();
    for (off, &rank) in sample_rank_by_rpos.iter().enumerate() {
        let i = orig_pos(r_lo + off as u64);
        if i >= n {
            continue; // the dummy position has no original suffix
        }
        to_orig
            .entry(blocks.owner(i))
            .or_default()
            .extend([i, rank]);
    }
    let s_local = deliver_indexed(comm, to_orig, blocks)?;
    let s1 = fetch_shifted(comm, &s_local, blocks, 1)?;
    let s2 = fetch_shifted(comm, &s_local, blocks, 2)?;

    // --- 4. one global sort of keyed records = the suffix array -----------
    let mut records: Vec<MergeRec> = (lo..hi)
        .map(|i| {
            let k = (i - lo) as usize;
            MergeRec {
                idx: i,
                c0: vals[k],
                c1: t1[k],
                r0: s_local[k],
                r1: s1[k],
                r2: s2[k],
            }
        })
        .collect();
    sample_sort_kamping(comm, &mut records, 0xDC3F ^ n)?;

    // Convert sorted records to the block-distributed suffix array.
    let my_count = records.len() as u64;
    let pos_offset = comm.exscan_single(my_count, 0, |a, b| a + b)?;
    let mut out: HashMap<usize, Vec<u64>> = HashMap::new();
    for (off, w) in records.iter().enumerate() {
        let pos = pos_offset + off as u64;
        out.entry(blocks.owner(pos))
            .or_default()
            .extend([pos, w.idx]);
    }
    deliver_indexed(comm, out, blocks)
}

/// Values of the distributed array at positions `i + d` for this rank's
/// `i` range (0 past the end): the owner of `j` ships `arr[j]` to the
/// owner of `j - d`.
fn fetch_shifted(comm: &Communicator, local: &[u64], blocks: Blocks, d: u64) -> KResult<Vec<u64>> {
    let lo = blocks.start(comm.rank());
    let hi = blocks.start(comm.rank() + 1);
    let mut buckets: HashMap<usize, Vec<u64>> = HashMap::new();
    for j in lo.max(d)..hi {
        buckets
            .entry(blocks.owner(j - d))
            .or_default()
            .extend([j, local[(j - lo) as usize]]);
    }
    let flat = with_flattened(buckets, comm.size());
    let received = comm.alltoallv_vec(&flat.data, &flat.counts)?;
    let mut out = vec![0u64; (hi - lo) as usize];
    for pair in received.chunks_exact(2) {
        out[(pair[0] - d - lo) as usize] = pair[1];
    }
    Ok(out)
}

/// Routes `(global index, value)` pairs to the index's owner under
/// `blocks` and materializes this rank's dense local block.
fn deliver_indexed(
    comm: &Communicator,
    buckets: HashMap<usize, Vec<u64>>,
    blocks: Blocks,
) -> KResult<Vec<u64>> {
    let lo = blocks.start(comm.rank());
    let hi = blocks.start(comm.rank() + 1);
    let flat = with_flattened(buckets, comm.size());
    let received = comm.alltoallv_vec(&flat.data, &flat.counts)?;
    let mut out = vec![0u64; (hi - lo) as usize];
    for pair in received.chunks_exact(2) {
        out[(pair[0] - lo) as usize] = pair[1];
    }
    Ok(out)
}

/// Last triple key of the nearest non-empty predecessor rank.
fn previous_last_triple(
    comm: &Communicator,
    triples: &[Triple],
) -> KResult<Option<(u64, u64, u64)>> {
    let mine: [u64; 4] = match triples.last() {
        Some(t) => [1, t.c0, t.c1, t.c2],
        None => [0, 0, 0, 0],
    };
    let all = comm.allgather_vec(&mine)?;
    for r in (0..comm.rank()).rev() {
        if all[4 * r] == 1 {
            return Ok(Some((all[4 * r + 1], all[4 * r + 2], all[4 * r + 3])));
        }
    }
    Ok(None)
}

/// Base case: gather everything at rank 0, sort sequentially (prefix
/// doubling, O(n log² n)), scatter the suffix-array blocks back.
fn sequential_base(comm: &Communicator, vals: &[u64], n: u64) -> KResult<Vec<u64>> {
    let all = comm.gatherv_vec(vals, 0)?;
    let p = comm.size();
    let blocks = Blocks { n, p };
    let parts: Option<Vec<Vec<u64>>> = if comm.rank() == 0 {
        let sa = sequential_suffix_array(&all);
        Some(
            (0..p)
                .map(|r| sa[blocks.start(r) as usize..blocks.start(r + 1) as usize].to_vec())
                .collect(),
        )
    } else {
        None
    };
    // scatterv needs the parts flattened at the root
    let (flat, counts): (Vec<u64>, Vec<usize>) = match &parts {
        Some(parts) => (parts.concat(), parts.iter().map(Vec::len).collect()),
        None => (Vec::new(), Vec::new()),
    };
    Ok(comm
        .scatterv(send_buf(&flat))
        .send_counts(&counts)
        .call()?
        .into_recv_buf())
}

/// Sequential suffix array over a u64 alphabet (values >= 1), by prefix
/// doubling — the recursion's base-case workhorse.
pub fn sequential_suffix_array(vals: &[u64]) -> Vec<u64> {
    let n = vals.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rank: Vec<u64> = vals.to_vec();
    let mut idx: Vec<u64> = (0..n as u64).collect();
    let mut tmp = vec![0u64; n];
    let mut k = 1usize;
    loop {
        let key = |i: u64| {
            let i = i as usize;
            (rank[i], if i + k < n { rank[i + k] } else { 0 })
        };
        idx.sort_unstable_by_key(|&i| key(i));
        // dense re-rank
        tmp[idx[0] as usize] = 1;
        let mut distinct = 1u64;
        for w in 1..n {
            if key(idx[w]) != key(idx[w - 1]) {
                distinct += 1;
            }
            tmp[idx[w] as usize] = distinct;
        }
        rank.copy_from_slice(&tmp);
        if distinct == n as u64 || k >= n {
            break;
        }
        k *= 2;
    }
    let mut sa = vec![0u64; n];
    for (i, &r) in rank.iter().enumerate() {
        sa[(r - 1) as usize] = i as u64;
    }
    sa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suffix::{naive_suffix_array, text_block};

    fn check(text: &[u8], p: usize) {
        let want = naive_suffix_array(text);
        let got: Vec<u64> = kamping::run(p, |comm| {
            let local = text_block(text, p, comm.rank());
            suffix_array_dc3(&comm, &local, text.len() as u64).unwrap()
        })
        .into_iter()
        .flatten()
        .collect();
        assert_eq!(got, want, "text len {} p={p}", text.len());
    }

    #[test]
    fn sequential_base_is_correct() {
        for text in [&b"banana"[..], b"mississippi", b"aaaaaaa", b"abcabcabc"] {
            let vals: Vec<u64> = text.iter().map(|&c| c as u64 + 1).collect();
            let want = naive_suffix_array(text);
            assert_eq!(sequential_suffix_array(&vals), want);
        }
    }

    #[test]
    fn small_texts_hit_base_case() {
        for p in [1, 2, 3] {
            check(b"banana", p);
            check(b"the quick brown fox", p);
        }
    }

    /// Builds a text long enough to force at least one distributed level.
    fn long_text(len: usize, period: usize) -> Vec<u8> {
        (0..len)
            .map(|i| b'a' + ((i / period + i) % 4) as u8)
            .collect()
    }

    #[test]
    fn distributed_level_no_recursion() {
        // Random-ish text: triples unique at the first level.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let text: Vec<u8> = (0..4000).map(|_| rng.gen_range(b'a'..=b'z')).collect();
        for p in [1, 3, 4] {
            check(&text, p);
        }
    }

    #[test]
    fn distributed_level_with_recursion() {
        // Highly repetitive text: naming collides, forcing recursion.
        let text = long_text(4000, 100);
        for p in [2, 4] {
            check(&text, p);
        }
    }

    #[test]
    fn worst_case_all_equal() {
        let text = vec![b'x'; 3000];
        check(&text, 3);
    }

    #[test]
    fn dc3_agrees_with_prefix_doubling() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
        let text: Vec<u8> = (0..5000).map(|_| rng.gen_range(b'a'..=b'c')).collect();
        kamping::run(4, |comm| {
            let local = text_block(&text, comm.size(), comm.rank());
            let a = suffix_array_dc3(&comm, &local, text.len() as u64).unwrap();
            let b = crate::suffix::suffix_array_prefix_doubling(&comm, &local, text.len() as u64)
                .unwrap();
            assert_eq!(a, b);
        });
    }
}
