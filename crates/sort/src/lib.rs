//! # kamping-sort — distributed sorting and suffix arrays
//!
//! The paper's §IV-A applications:
//!
//! * [`sample_sort`] — the textbook distributed sample sort of Fig. 7, in
//!   three variants: through the kamping binding layer
//!   ([`sample_sort_kamping`]), against the raw substrate with all the
//!   hand-rolled boilerplate ([`sample_sort_plain`] — the "plain MPI"
//!   column of Table I / Fig. 8), and an **MPL-like ablation**
//!   ([`sample_sort_mpl_like`]) that lowers the data exchange to
//!   `alltoallw` with per-peer derived datatypes — the lowering §II blames
//!   for MPL's slowdown on v-collectives, reproduced measurably.
//! * [`suffix`] — suffix-array construction by prefix doubling
//!   (Manber–Myers), the §IV-A text-processing application (163 vs. 426
//!   lines of code in the paper), with the hand-rolled plain-substrate
//!   edition in [`suffix_plain`] for the LoC comparison;
//! * [`dc3`] — the DCX/DC3 (skew) suffix-array construction, the paper's
//!   other §IV-A algorithm (1264 LoC KaMPIng vs. 1396 LoC pDCX there),
//!   including distributed recursion;
//! * [`sorter`] — the STL-like distributed sorter plugin of §V
//!   (`comm.sort_distributed(&mut v)`).

pub mod dc3;
pub mod sample_sort;
pub mod sorter;
pub mod suffix;
pub mod suffix_plain;

pub use dc3::suffix_array_dc3;
pub use sample_sort::{sample_sort_kamping, sample_sort_mpl_like, sample_sort_plain};
pub use sorter::DistributedSorter;
pub use suffix::suffix_array_prefix_doubling;
pub use suffix_plain::suffix_array_prefix_doubling_plain;
