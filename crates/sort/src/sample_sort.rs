//! Distributed sample sort (paper §IV-A, Fig. 7, Fig. 8, Table I).
//!
//! Textbook algorithm (Sanders et al.): every rank samples
//! `16 log2(p) + 1` local elements, the samples are allgathered and
//! sorted, `p - 1` splitters partition the data into per-destination
//! buckets, one `alltoallv` redistributes, and a local sort finishes.
//!
//! The three variants here differ **only** in how they talk to the
//! message-passing layer — the algorithmic code is shared — which is
//! exactly the setup of the paper's Fig. 8 comparison. The `LOC` markers
//! delimit the communication code counted by the `table1_loc` harness.

use kamping::prelude::*;
use kamping_mpi::coll::excl_prefix_sum;
use kamping_mpi::dtype::TypeDesc;
use kamping_mpi::RawComm;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of local samples for a communicator of `p` ranks (paper Fig. 7).
fn num_samples(p: usize) -> usize {
    16 * (usize::BITS - p.leading_zeros() - 1) as usize + 1
}

/// Draws `k` samples (with replacement) from `data`; empty input yields no
/// samples. Deterministic per (seed, rank).
fn local_samples<T: Copy>(data: &[T], k: usize, seed: u64, rank: usize) -> Vec<T> {
    if data.is_empty() {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0x9e3779b97f4a7c15));
    (0..k).map(|_| data[rng.gen_range(0..data.len())]).collect()
}

/// Chooses `p - 1` splitters from the sorted global sample.
fn splitters<T: Copy>(gsamples: &[T], p: usize) -> Vec<T> {
    (1..p).map(|i| gsamples[i * gsamples.len() / p]).collect()
}

/// Partitions `data` (sorted) into `p` buckets by `splitters`; returns the
/// bucket sizes. `data` is sorted in place first so buckets are ranges.
fn partition<T: PodType + Ord>(data: &mut [T], splits: &[T]) -> Vec<usize> {
    data.sort_unstable();
    let mut counts = Vec::with_capacity(splits.len() + 1);
    let mut prev = 0usize;
    for s in splits {
        let idx = data.partition_point(|x| x <= s);
        counts.push(idx - prev);
        prev = idx;
    }
    counts.push(data.len() - prev);
    counts
}

// LOC-BEGIN samplesort_kamping
/// Sample sort through the kamping binding layer (paper Fig. 7).
pub fn sample_sort_kamping<T: PodType + Ord>(
    comm: &Communicator,
    data: &mut Vec<T>,
    seed: u64,
) -> KResult<()> {
    let p = comm.size();
    if p == 1 {
        data.sort_unstable();
        return Ok(());
    }
    let lsamples = local_samples(data, num_samples(p), seed, comm.rank());
    let mut gsamples = comm.allgatherv_vec(&lsamples)?;
    gsamples.sort_unstable();
    let splits = splitters(&gsamples, p);
    let scounts = partition(data, &splits);
    *data = comm.alltoallv_vec(data, &scounts)?;
    data.sort_unstable();
    Ok(())
}
// LOC-END samplesort_kamping

// LOC-BEGIN samplesort_plain
/// Sample sort against the raw substrate: every count exchange,
/// displacement computation and byte conversion by hand (the paper's
/// "plain MPI" implementation, 32 LoC of communication there).
pub fn sample_sort_plain<T: PodType + Ord>(comm: &RawComm, data: &mut Vec<T>, seed: u64) {
    let p = comm.size();
    if p == 1 {
        data.sort_unstable();
        return;
    }
    // allgatherv of the samples: exchange counts, then payload
    let lsamples = local_samples(data, num_samples(p), seed, comm.rank());
    let mut sample_count_wire = vec![0u8; 8];
    sample_count_wire.copy_from_slice(&(lsamples.len() as u64 * T::SIZE as u64).to_le_bytes());
    let counts_wire = comm.allgather(&sample_count_wire).expect("allgather");
    let recv_counts: Vec<usize> = counts_wire
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
        .collect();
    let gathered = comm
        .allgatherv(kamping::types::pod_as_bytes(&lsamples), &recv_counts)
        .expect("allgatherv");
    let mut gsamples: Vec<T> = kamping::types::bytes_to_pods(&gathered).expect("decode");
    gsamples.sort_unstable();
    let splits = splitters(&gsamples, p);
    // alltoallv of the buckets: counts, displacements, then payload
    let scounts_elems = partition(data, &splits);
    let scounts: Vec<usize> = scounts_elems.iter().map(|&c| c * T::SIZE).collect();
    let mut scount_wire = Vec::with_capacity(p * 8);
    for &c in &scounts {
        scount_wire.extend_from_slice(&(c as u64).to_le_bytes());
    }
    let rcount_wire = comm.alltoall(&scount_wire).expect("alltoall");
    let rcounts: Vec<usize> = rcount_wire
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
        .collect();
    let sdispls = excl_prefix_sum(&scounts);
    let rdispls = excl_prefix_sum(&rcounts);
    let recv = comm
        .alltoallv(
            kamping::types::pod_as_bytes(data),
            &scounts,
            &sdispls,
            &rcounts,
            &rdispls,
        )
        .expect("alltoallv");
    *data = kamping::types::bytes_to_pods(&recv).expect("decode");
    data.sort_unstable();
}
// LOC-END samplesort_plain

// LOC-BEGIN samplesort_overlapped
/// Sample sort with compute/communication overlap: the local input is
/// partitioned in two halves, and the first half's bucket exchange is
/// already in flight (a nonblocking `ialltoallv`) while the second half
/// is still being sorted and partitioned. Both requests own their buffers
/// (§III-E), so the borrow checker — not discipline — keeps the halves
/// apart; the blocked-wait saved by the overlap is what the `icoll`
/// benchmark measures.
pub fn sample_sort_overlapped<T: PodType + Ord>(
    comm: &Communicator,
    data: &mut Vec<T>,
    seed: u64,
) -> KResult<()> {
    let p = comm.size();
    if p == 1 {
        data.sort_unstable();
        return Ok(());
    }
    let lsamples = local_samples(data, num_samples(p), seed, comm.rank());
    let mut gsamples = comm.allgatherv_vec(&lsamples)?;
    gsamples.sort_unstable();
    let splits = splitters(&gsamples, p);
    let mut second = data.split_off(data.len() / 2);
    let first_counts = partition(data, &splits);
    let first_req = comm.ialltoallv_vec(std::mem::take(data), &first_counts)?;
    // ... the first exchange is on the wire while this partition runs ...
    let second_counts = partition(&mut second, &splits);
    let second_req = comm.ialltoallv_vec(second, &second_counts)?;
    *data = first_req.wait()?;
    data.extend(second_req.wait()?);
    data.sort_unstable();
    Ok(())
}
// LOC-END samplesort_overlapped

// LOC-BEGIN samplesort_mpl_like
/// Sample sort with the MPL-style lowering (§II): the bucket exchange goes
/// through `alltoallw` with one *derived datatype per peer* instead of a
/// plain `alltoallv` — per-peer type construction plus type-driven
/// pack/unpack loops on both sides. Same result, measurably slower; this
/// is the ablation behind the MPL curve of Fig. 8.
pub fn sample_sort_mpl_like<T: PodType + Ord>(
    comm: &Communicator,
    data: &mut Vec<T>,
    seed: u64,
) -> KResult<()> {
    let p = comm.size();
    if p == 1 {
        data.sort_unstable();
        return Ok(());
    }
    let lsamples = local_samples(data, num_samples(p), seed, comm.rank());
    let mut gsamples = comm.allgatherv_vec(&lsamples)?;
    gsamples.sort_unstable();
    let splits = splitters(&gsamples, p);
    let scounts = partition(data, &splits);
    // counts still travel ahead of time (MPL exchanges them too) ...
    let rcounts = comm.alltoallv_vec(
        &scounts.iter().map(|&c| c as u64).collect::<Vec<_>>(),
        &vec![1usize; p],
    )?;
    // ... but the payload is lowered to alltoallw with per-peer
    // single-block indexed datatypes over the send/recv buffers.
    let sdispls = excl_prefix_sum(&scounts);
    let send_types: Vec<TypeDesc> = (0..p)
        .map(|i| TypeDesc::Indexed {
            blocks: vec![(sdispls[i] * T::SIZE, scounts[i] * T::SIZE)],
            extent: data.len() * T::SIZE,
        })
        .collect();
    let rcounts: Vec<usize> = rcounts.iter().map(|&c| c as usize).collect();
    let rdispls = excl_prefix_sum(&rcounts);
    let total: usize = rcounts.iter().sum();
    let recv_types: Vec<TypeDesc> = (0..p)
        .map(|i| TypeDesc::Indexed {
            blocks: vec![(rdispls[i] * T::SIZE, rcounts[i] * T::SIZE)],
            extent: total * T::SIZE,
        })
        .collect();
    let mut recv_bytes = vec![0u8; total * T::SIZE];
    comm.raw().alltoallw(
        kamping::types::pod_as_bytes(data),
        &send_types,
        &mut recv_bytes,
        &recv_types,
    )?;
    *data = kamping::types::bytes_to_pods(&recv_bytes)?;
    data.sort_unstable();
    Ok(())
}
// LOC-END samplesort_mpl_like

/// Checks global sortedness: locally sorted and boundary order across
/// ranks (used by tests and the Fig. 8 harness).
pub fn is_globally_sorted<T: PodType + Ord>(comm: &Communicator, data: &[T]) -> KResult<bool> {
    let locally = data.windows(2).all(|w| w[0] <= w[1]);
    // Boundary check: allgather (first, last, len) triples.
    let mine: Vec<T> = match (data.first(), data.last()) {
        (Some(&f), Some(&l)) => vec![f, l],
        _ => vec![],
    };
    let borders = comm.allgatherv_vec(&mine)?;
    let cross = borders.windows(2).all(|w| w[0] <= w[1]);
    Ok(comm.allreduce_single((locally && cross) as u8, |a, b| a & b)? == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    fn random_data(rank: usize, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(rank as u64 * 77));
        (0..n).map(|_| rng.next_u64() % 10_000).collect()
    }

    fn check_variant(p: usize, n: usize, f: impl Fn(&Communicator, &mut Vec<u64>) + Sync) {
        let outputs = kamping::run(p, |comm| {
            let mut data = random_data(comm.rank(), n, 42);
            let reference_input = comm.allgatherv_vec(&data).unwrap();
            f(&comm, &mut data);
            assert!(is_globally_sorted(&comm, &data).unwrap());
            (data, reference_input)
        });
        // Concatenated outputs must be a permutation-preserving sort of
        // the concatenated inputs.
        let mut want = outputs[0].1.clone();
        want.sort_unstable();
        let got: Vec<u64> = outputs.into_iter().flat_map(|(d, _)| d).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn kamping_variant_sorts() {
        for p in [1, 2, 4, 5] {
            check_variant(p, 200, |comm, data| {
                sample_sort_kamping(comm, data, 1).unwrap();
            });
        }
    }

    #[test]
    fn plain_variant_sorts() {
        for p in [1, 3, 4] {
            check_variant(p, 150, |comm, data| {
                sample_sort_plain(comm.raw(), data, 1);
            });
        }
    }

    #[test]
    fn overlapped_variant_sorts() {
        for p in [1, 2, 3, 5] {
            check_variant(p, 200, |comm, data| {
                sample_sort_overlapped(comm, data, 1).unwrap();
            });
        }
    }

    #[test]
    fn mpl_like_variant_sorts() {
        for p in [1, 2, 4] {
            check_variant(p, 150, |comm, data| {
                sample_sort_mpl_like(comm, data, 1).unwrap();
            });
        }
    }

    #[test]
    fn variants_agree_elementwise() {
        kamping::run(4, |comm| {
            let mut a = random_data(comm.rank(), 300, 9);
            let mut b = a.clone();
            let mut c = a.clone();
            let mut d = a.clone();
            sample_sort_kamping(&comm, &mut a, 5).unwrap();
            sample_sort_plain(comm.raw(), &mut b, 5);
            sample_sort_mpl_like(&comm, &mut c, 5).unwrap();
            sample_sort_overlapped(&comm, &mut d, 5).unwrap();
            assert_eq!(a, b, "kamping vs plain");
            assert_eq!(a, c, "kamping vs mpl-like");
            assert_eq!(a, d, "kamping vs overlapped");
        });
    }

    #[test]
    fn skewed_and_duplicate_heavy_input() {
        kamping::run(4, |comm| {
            // All ranks hold mostly the same value: splitter degeneracy.
            let mut data = vec![7u64; 100];
            if comm.rank() == 0 {
                data.extend(0..50u64);
            }
            sample_sort_kamping(&comm, &mut data, 3).unwrap();
            assert!(is_globally_sorted(&comm, &data).unwrap());
            let total: u64 = comm
                .allreduce_single(data.len() as u64, |a, b| a + b)
                .unwrap();
            assert_eq!(total, 4 * 100 + 50);
        });
    }

    #[test]
    fn empty_rank_input() {
        kamping::run(3, |comm| {
            let mut data: Vec<u64> = if comm.rank() == 1 {
                vec![5, 3, 1]
            } else {
                vec![]
            };
            sample_sort_kamping(&comm, &mut data, 2).unwrap();
            assert!(is_globally_sorted(&comm, &data).unwrap());
        });
    }

    #[test]
    fn single_rank_is_local_sort() {
        kamping::run(1, |comm| {
            let mut data = vec![3u64, 1, 2];
            sample_sort_kamping(&comm, &mut data, 0).unwrap();
            assert_eq!(data, vec![1, 2, 3]);
        });
    }

    #[test]
    fn num_samples_matches_paper_formula() {
        assert_eq!(num_samples(2), 17); // 16 * log2(2) + 1
        assert_eq!(num_samples(4), 33);
        assert_eq!(num_samples(256), 129);
    }
}
