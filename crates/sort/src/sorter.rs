//! The STL-like distributed sorter plugin (paper §V: "With KaMPIng we
//! ship multiple library extensions (plugins) including an STL-like
//! distributed sorter").
//!
//! ```
//! use kamping_sort::DistributedSorter;
//!
//! kamping::run(4, |comm| {
//!     let mut data = vec![comm.rank() as u64 * 7 % 5, 3, 1];
//!     comm.sort_distributed(&mut data).unwrap();
//! });
//! ```

use kamping::plugin::CommunicatorPlugin;
use kamping::{Communicator, KResult, PodType};

use crate::sample_sort::sample_sort_kamping;

/// Extension trait adding `sort_distributed` to the communicator
/// (§III-F plugin architecture, applied to §V's sorter).
pub trait DistributedSorter: CommunicatorPlugin {
    /// Globally sorts the distributed array formed by everyone's `data`:
    /// afterwards each rank's block is sorted and block boundaries respect
    /// the order (rank r's largest element <= rank r+1's smallest).
    /// Element counts per rank may change (they follow the partition).
    fn sort_distributed<T: PodType + Ord>(&self, data: &mut Vec<T>) -> KResult<()> {
        sample_sort_kamping(self.comm(), data, 0x50FF)
    }

    /// Like [`sort_distributed`](Self::sort_distributed) with a caller
    /// seed for the splitter sampling (reproducible partitions).
    fn sort_distributed_seeded<T: PodType + Ord>(
        &self,
        data: &mut Vec<T>,
        seed: u64,
    ) -> KResult<()> {
        sample_sort_kamping(self.comm(), data, seed)
    }
}

impl DistributedSorter for Communicator {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_sort::is_globally_sorted;

    #[test]
    fn plugin_sorts_through_the_communicator() {
        kamping::run(4, |comm| {
            let mut data: Vec<u64> = (0..100)
                .map(|i| (i * 2654435761u64 + comm.rank() as u64) % 1000)
                .collect();
            comm.sort_distributed(&mut data).unwrap();
            assert!(is_globally_sorted(&comm, &data).unwrap());
        });
    }

    #[test]
    fn seeded_variant_is_deterministic() {
        let a = kamping::run(3, |comm| {
            let mut data = vec![comm.rank() as u32 * 11 % 7; 20];
            comm.sort_distributed_seeded(&mut data, 42).unwrap();
            data
        });
        let b = kamping::run(3, |comm| {
            let mut data = vec![comm.rank() as u32 * 11 % 7; 20];
            comm.sort_distributed_seeded(&mut data, 42).unwrap();
            data
        });
        assert_eq!(a, b);
    }
}
