//! Distributed suffix-array construction by prefix doubling
//! (Manber–Myers; paper §IV-A "Suffix Array Construction").
//!
//! The text is block-distributed; the algorithm maintains a distributed
//! rank array over suffix start positions and doubles the compared prefix
//! length every round: fetch the rank `k` positions ahead, sort the
//! (rank, rank+k, index) tuples with the distributed sample sort, re-rank
//! densely, and repeat until all ranks are distinct. This is the
//! application for which the paper reports its starkest LoC collapse
//! (163 LoC with KaMPIng vs. 426 LoC plain, §IV-A) — our implementation is
//! in the same ballpark because every counts/displacement exchange is a
//! one-liner.

use std::collections::HashMap;

use kamping::prelude::*;

use crate::sample_sort::sample_sort_kamping;

/// (rank, rank-at-offset-k, suffix index) — the sort key of one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Tup {
    key1: u64,
    key2: u64,
    idx: u64,
}

kamping::impl_pod!(Tup: u64, u64, u64);

/// Balanced contiguous block distribution of `n` items over `p` ranks.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Blocks {
    pub(crate) n: u64,
    pub(crate) p: usize,
}

impl Blocks {
    pub(crate) fn start(&self, rank: usize) -> u64 {
        let base = self.n / self.p as u64;
        let extra = self.n % self.p as u64;
        let r = rank as u64;
        r * base + r.min(extra)
    }

    pub(crate) fn owner(&self, i: u64) -> usize {
        debug_assert!(i < self.n);
        let base = self.n / self.p as u64;
        let extra = self.n % self.p as u64;
        let boundary = extra * (base + 1);
        if i < boundary {
            (i / (base + 1)) as usize
        } else {
            (extra + (i - boundary) / base) as usize
        }
    }
}

/// Computes the suffix array of the distributed text. `text_local` is this
/// rank's contiguous block of the global text of length `n`; the returned
/// vector is this rank's contiguous block of the suffix array (the suffix
/// start positions in lexicographic order). Collective.
pub fn suffix_array_prefix_doubling(
    comm: &Communicator,
    text_local: &[u8],
    n: u64,
) -> KResult<Vec<u64>> {
    let p = comm.size();
    let blocks = Blocks { n, p };
    let lo = blocks.start(comm.rank());
    let hi = blocks.start(comm.rank() + 1);
    assert_eq!(text_local.len() as u64, hi - lo, "text block size mismatch");
    if n == 0 {
        return Ok(Vec::new());
    }

    // Initial ranks: the characters themselves, 1-based (0 = past the end).
    let mut rank_arr: Vec<u64> = text_local.iter().map(|&c| c as u64 + 1).collect();
    let mut k = 1u64;
    loop {
        // rank2[i] = rank_arr[i + k], or 0 beyond the text: the owner of
        // position j ships rank_arr[j] to the owner of j - k.
        let mut buckets: HashMap<usize, Vec<u64>> = HashMap::new();
        for j in lo.max(k)..hi {
            let dest = blocks.owner(j - k);
            buckets
                .entry(dest)
                .or_default()
                .extend([j, rank_arr[(j - lo) as usize]]);
        }
        let flat = with_flattened(buckets, p);
        let received = comm.alltoallv_vec(&flat.data, &flat.counts)?;
        let mut rank2 = vec![0u64; (hi - lo) as usize];
        for pair in received.chunks_exact(2) {
            rank2[(pair[0] - k - lo) as usize] = pair[1];
        }

        // Sort the (rank, rank2, index) tuples globally.
        let mut tuples: Vec<Tup> = (lo..hi)
            .map(|i| Tup {
                key1: rank_arr[(i - lo) as usize],
                key2: rank2[(i - lo) as usize],
                idx: i,
            })
            .collect();
        sample_sort_kamping(comm, &mut tuples, 0xA5A5 ^ k)?;

        // Dense re-ranking: each tuple's new rank is the number of
        // distinct key pairs up to and including it.
        let prev_keys = previous_rank_last_keys(comm, &tuples)?;
        let mut flags = vec![0u64; tuples.len()];
        for (t, w) in tuples.iter().enumerate() {
            let differs = if t == 0 {
                match prev_keys {
                    Some((k1, k2)) => (w.key1, w.key2) != (k1, k2),
                    None => true,
                }
            } else {
                (w.key1, w.key2) != (tuples[t - 1].key1, tuples[t - 1].key2)
            };
            flags[t] = differs as u64;
        }
        let local_distinct: u64 = flags.iter().sum();
        let offset = comm.exscan_single(local_distinct, 0, |a, b| a + b)?;
        let mut acc = offset;
        let mut new_ranks = Vec::with_capacity(tuples.len());
        for &f in &flags {
            acc += f;
            new_ranks.push(acc);
        }

        // Ship (index, new rank) back to the index's owner.
        let mut back: HashMap<usize, Vec<u64>> = HashMap::new();
        for (w, &r) in tuples.iter().zip(&new_ranks) {
            back.entry(blocks.owner(w.idx))
                .or_default()
                .extend([w.idx, r]);
        }
        let flat = with_flattened(back, p);
        let received = comm.alltoallv_vec(&flat.data, &flat.counts)?;
        for pair in received.chunks_exact(2) {
            rank_arr[(pair[0] - lo) as usize] = pair[1];
        }

        let total_distinct = comm.allreduce_single(local_distinct, |a, b| a + b)?;
        if total_distinct == n || k >= n {
            break;
        }
        k *= 2;
    }

    // All ranks distinct: suffix at position i sorts to SA[rank - 1].
    // Ship (position, index) to the position's owner.
    let mut out_buckets: HashMap<usize, Vec<u64>> = HashMap::new();
    for i in lo..hi {
        let pos = rank_arr[(i - lo) as usize] - 1;
        out_buckets
            .entry(blocks.owner(pos))
            .or_default()
            .extend([pos, i]);
    }
    let flat = with_flattened(out_buckets, p);
    let received = comm.alltoallv_vec(&flat.data, &flat.counts)?;
    let mut sa = vec![0u64; (hi - lo) as usize];
    for pair in received.chunks_exact(2) {
        sa[(pair[0] - lo) as usize] = pair[1];
    }
    Ok(sa)
}

/// Last (key1, key2) of the nearest non-empty predecessor rank, if any —
/// the cross-rank seam of the dense re-ranking step.
fn previous_rank_last_keys(comm: &Communicator, tuples: &[Tup]) -> KResult<Option<(u64, u64)>> {
    // Everyone contributes (has_data, key1, key2).
    let mine: [u64; 3] = match tuples.last() {
        Some(t) => [1, t.key1, t.key2],
        None => [0, 0, 0],
    };
    let all = comm.allgather_vec(&mine)?;
    let mut prev = None;
    for r in (0..comm.rank()).rev() {
        if all[3 * r] == 1 {
            prev = Some((all[3 * r + 1], all[3 * r + 2]));
            break;
        }
    }
    Ok(prev)
}

/// Sequential reference suffix array (for tests and the harness).
pub fn naive_suffix_array(text: &[u8]) -> Vec<u64> {
    let mut sa: Vec<u64> = (0..text.len() as u64).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

/// Splits a global text into this rank's block (test/harness helper).
pub fn text_block(text: &[u8], p: usize, rank: usize) -> Vec<u8> {
    let blocks = Blocks {
        n: text.len() as u64,
        p,
    };
    text[blocks.start(rank) as usize..blocks.start(rank + 1) as usize].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(text: &[u8], p: usize) {
        let want = naive_suffix_array(text);
        let got: Vec<u64> = kamping::run(p, |comm| {
            let local = text_block(text, p, comm.rank());
            suffix_array_prefix_doubling(&comm, &local, text.len() as u64).unwrap()
        })
        .into_iter()
        .flatten()
        .collect();
        assert_eq!(got, want, "text {:?} p={p}", String::from_utf8_lossy(text));
    }

    #[test]
    fn banana() {
        for p in [1, 2, 3] {
            check(b"banana", p);
        }
    }

    #[test]
    fn mississippi() {
        check(b"mississippi", 4);
    }

    #[test]
    fn repetitive_worst_case() {
        // All-equal text: maximal number of doubling rounds.
        check(&[b'a'; 37], 3);
    }

    #[test]
    fn abracadabra_like_periodic() {
        check(b"abcabcabcabcabcabcab", 4);
    }

    #[test]
    fn random_bytes() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let text: Vec<u8> = (0..200).map(|_| rng.gen_range(b'a'..=b'd')).collect();
        for p in [1, 4] {
            check(&text, p);
        }
    }

    #[test]
    fn tiny_texts() {
        check(b"a", 1);
        check(b"ab", 2);
        check(b"ba", 2);
        kamping::run(2, |comm| {
            let sa = suffix_array_prefix_doubling(&comm, &[], 0).unwrap();
            assert!(sa.is_empty());
        });
    }

    #[test]
    fn naive_reference_is_correct_on_known_case() {
        // banana: suffixes sorted = a(5), ana(3), anana(1), banana(0),
        // na(4), nana(2)
        assert_eq!(naive_suffix_array(b"banana"), vec![5, 3, 1, 0, 4, 2]);
    }
}
