//! Prefix-doubling suffix arrays against the **raw substrate** — the
//! "plain MPI" counterpart of [`crate::suffix`] for the §IV-A LoC
//! comparison (paper: 426 LoC plain vs 163 LoC KaMPIng).
//!
//! The algorithm is identical; every piece of communication is spelled
//! out: byte packing/unpacking of `(index, value)` pairs, explicit count
//! exchanges, hand-computed displacements, hand-rolled reductions and
//! scans. Reading this module next to `suffix.rs` *is* the paper's
//! argument.

use std::collections::HashMap;

use kamping_mpi::coll::excl_prefix_sum;
use kamping_mpi::RawComm;

// LOC-BEGIN suffix_plain
/// Balanced block distribution (duplicated here: plain code has no shared
/// library to lean on).
fn block_start(n: u64, p: usize, rank: usize) -> u64 {
    let base = n / p as u64;
    let extra = n % p as u64;
    let r = rank as u64;
    r * base + r.min(extra)
}

fn block_owner(n: u64, p: usize, i: u64) -> usize {
    let base = n / p as u64;
    let extra = n % p as u64;
    let boundary = extra * (base + 1);
    if i < boundary {
        (i / (base + 1)) as usize
    } else {
        (extra + (i - boundary) / base) as usize
    }
}

/// Hand-rolled alltoallv of u64 payloads bucketed by destination rank.
fn exchange_u64(comm: &RawComm, buckets: HashMap<usize, Vec<u64>>) -> Vec<u64> {
    let p = comm.size();
    let mut send_counts = vec![0usize; p];
    for (&d, v) in &buckets {
        send_counts[d] = v.len() * 8;
    }
    let mut ordered: Vec<(usize, Vec<u64>)> = buckets.into_iter().collect();
    ordered.sort_by_key(|&(d, _)| d);
    let mut send = Vec::new();
    for (_, vals) in ordered {
        for v in vals {
            send.extend_from_slice(&v.to_le_bytes());
        }
    }
    let mut count_wire = Vec::with_capacity(p * 8);
    for &c in &send_counts {
        count_wire.extend_from_slice(&(c as u64).to_le_bytes());
    }
    let rcw = comm.alltoall(&count_wire).expect("alltoall");
    let recv_counts: Vec<usize> = rcw
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
        .collect();
    let send_displs = excl_prefix_sum(&send_counts);
    let recv_displs = excl_prefix_sum(&recv_counts);
    let recv = comm
        .alltoallv(
            &send,
            &send_counts,
            &send_displs,
            &recv_counts,
            &recv_displs,
        )
        .expect("alltoallv");
    recv.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Hand-rolled allreduce(sum) of a single u64.
fn allreduce_sum(comm: &RawComm, value: u64) -> u64 {
    let mut wire = value.to_le_bytes().to_vec();
    let add = |a: &mut [u8], b: &[u8]| {
        let x = u64::from_le_bytes(a.try_into().unwrap());
        let y = u64::from_le_bytes(b.try_into().unwrap());
        a.copy_from_slice(&(x + y).to_le_bytes());
    };
    comm.allreduce(&mut wire, &add, 8).expect("allreduce");
    u64::from_le_bytes(wire.try_into().unwrap())
}

/// Hand-rolled exscan(sum) of a single u64 (0 on rank 0).
fn exscan_sum(comm: &RawComm, value: u64) -> u64 {
    let wire = value.to_le_bytes();
    let add = |a: &mut [u8], b: &[u8]| {
        let x = u64::from_le_bytes(a.try_into().unwrap());
        let y = u64::from_le_bytes(b.try_into().unwrap());
        a.copy_from_slice(&(x + y).to_le_bytes());
    };
    match comm.exscan(&wire, &add, 8).expect("exscan") {
        Some(bytes) => u64::from_le_bytes(bytes.try_into().unwrap()),
        None => 0,
    }
}

/// Hand-rolled allgather of (has_data, key1, key2) boundary triples.
fn boundary_prev(comm: &RawComm, last: Option<(u64, u64)>) -> Option<(u64, u64)> {
    let mine: [u64; 3] = match last {
        Some((a, b)) => [1, a, b],
        None => [0, 0, 0],
    };
    let mut wire = Vec::with_capacity(24);
    for v in mine {
        wire.extend_from_slice(&v.to_le_bytes());
    }
    let all = comm.allgather(&wire).expect("allgather");
    let vals: Vec<u64> = all
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    for r in (0..comm.rank()).rev() {
        if vals[3 * r] == 1 {
            return Some((vals[3 * r + 1], vals[3 * r + 2]));
        }
    }
    None
}

/// The distributed prefix-doubling suffix array, plain-substrate edition.
/// Semantics identical to [`crate::suffix::suffix_array_prefix_doubling`].
pub fn suffix_array_prefix_doubling_plain(comm: &RawComm, text_local: &[u8], n: u64) -> Vec<u64> {
    let p = comm.size();
    let lo = block_start(n, p, comm.rank());
    let hi = block_start(n, p, comm.rank() + 1);
    assert_eq!(text_local.len() as u64, hi - lo);
    if n == 0 {
        return Vec::new();
    }
    let mut rank_arr: Vec<u64> = text_local.iter().map(|&c| c as u64 + 1).collect();
    let mut k = 1u64;
    loop {
        // fetch rank[i + k] by shipping rank[j] to owner(j - k)
        let mut buckets: HashMap<usize, Vec<u64>> = HashMap::new();
        for j in lo.max(k)..hi {
            buckets
                .entry(block_owner(n, p, j - k))
                .or_default()
                .extend([j, rank_arr[(j - lo) as usize]]);
        }
        let received = exchange_u64(comm, buckets);
        let mut rank2 = vec![0u64; (hi - lo) as usize];
        for pair in received.chunks_exact(2) {
            rank2[(pair[0] - k - lo) as usize] = pair[1];
        }
        // sort (rank, rank2, idx) tuples globally
        let mut tuples: Vec<(u64, u64, u64)> = (lo..hi)
            .map(|i| (rank_arr[(i - lo) as usize], rank2[(i - lo) as usize], i))
            .collect();
        sample_sort_tuples_plain(comm, &mut tuples, 0xA5A5 ^ k);
        // dense re-rank with hand-rolled boundary/exscan plumbing
        let prev = boundary_prev(comm, tuples.last().map(|t| (t.0, t.1)));
        let mut flags = vec![0u64; tuples.len()];
        for (t, w) in tuples.iter().enumerate() {
            flags[t] = if t == 0 {
                match prev {
                    Some(pk) => u64::from((w.0, w.1) != pk),
                    None => 1,
                }
            } else {
                u64::from((w.0, w.1) != (tuples[t - 1].0, tuples[t - 1].1))
            };
        }
        let local_distinct: u64 = flags.iter().sum();
        let offset = exscan_sum(comm, local_distinct);
        let mut acc = offset;
        let mut back: HashMap<usize, Vec<u64>> = HashMap::new();
        for (w, &f) in tuples.iter().zip(&flags) {
            acc += f;
            back.entry(block_owner(n, p, w.2))
                .or_default()
                .extend([w.2, acc]);
        }
        let received = exchange_u64(comm, back);
        for pair in received.chunks_exact(2) {
            rank_arr[(pair[0] - lo) as usize] = pair[1];
        }
        if allreduce_sum(comm, local_distinct) == n || k >= n {
            break;
        }
        k *= 2;
    }
    // invert: position rank-1 holds suffix i
    let mut out_buckets: HashMap<usize, Vec<u64>> = HashMap::new();
    for i in lo..hi {
        let pos = rank_arr[(i - lo) as usize] - 1;
        out_buckets
            .entry(block_owner(n, p, pos))
            .or_default()
            .extend([pos, i]);
    }
    let received = exchange_u64(comm, out_buckets);
    let mut sa = vec![0u64; (hi - lo) as usize];
    for pair in received.chunks_exact(2) {
        sa[(pair[0] - lo) as usize] = pair[1];
    }
    sa
}

/// Plain-substrate sample sort of `(u64, u64, u64)` tuples — the inner
/// sorter the plain suffix construction needs; all count exchanges and
/// conversions written out.
fn sample_sort_tuples_plain(comm: &RawComm, data: &mut Vec<(u64, u64, u64)>, seed: u64) {
    let p = comm.size();
    if p == 1 {
        data.sort_unstable();
        return;
    }
    // local samples (with replacement)
    let want = 16 * (usize::BITS - p.leading_zeros() - 1) as usize + 1;
    let mut samples: Vec<(u64, u64, u64)> = Vec::with_capacity(want);
    if !data.is_empty() {
        let mut state = seed ^ (comm.rank() as u64).wrapping_mul(0x9e3779b97f4a7c15);
        for _ in 0..want {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            samples.push(data[(state >> 33) as usize % data.len()]);
        }
    }
    // allgatherv of the samples (counts first)
    let my_bytes = samples.len() * 24;
    let wire_count = (my_bytes as u64).to_le_bytes();
    let counts_wire = comm.allgather(&wire_count).expect("allgather");
    let counts: Vec<usize> = counts_wire
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
        .collect();
    let mut sample_wire = Vec::with_capacity(my_bytes);
    for &(a, b, c) in &samples {
        sample_wire.extend_from_slice(&a.to_le_bytes());
        sample_wire.extend_from_slice(&b.to_le_bytes());
        sample_wire.extend_from_slice(&c.to_le_bytes());
    }
    let gathered = comm.allgatherv(&sample_wire, &counts).expect("allgatherv");
    let mut gsamples: Vec<(u64, u64, u64)> = gathered
        .chunks_exact(24)
        .map(|c| {
            (
                u64::from_le_bytes(c[..8].try_into().unwrap()),
                u64::from_le_bytes(c[8..16].try_into().unwrap()),
                u64::from_le_bytes(c[16..].try_into().unwrap()),
            )
        })
        .collect();
    gsamples.sort_unstable();
    let splitters: Vec<(u64, u64, u64)> =
        (1..p).map(|i| gsamples[i * gsamples.len() / p]).collect();
    // partition and exchange
    data.sort_unstable();
    let mut scounts = Vec::with_capacity(p);
    let mut prev = 0usize;
    for s in &splitters {
        let idx = data.partition_point(|x| x <= s);
        scounts.push((idx - prev) * 24);
        prev = idx;
    }
    scounts.push((data.len() - prev) * 24);
    let mut scount_wire = Vec::with_capacity(p * 8);
    for &c in &scounts {
        scount_wire.extend_from_slice(&(c as u64).to_le_bytes());
    }
    let rcw = comm.alltoall(&scount_wire).expect("alltoall");
    let rcounts: Vec<usize> = rcw
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
        .collect();
    let sdispls = excl_prefix_sum(&scounts);
    let rdispls = excl_prefix_sum(&rcounts);
    let mut send = Vec::with_capacity(data.len() * 24);
    for &(a, b, c) in data.iter() {
        send.extend_from_slice(&a.to_le_bytes());
        send.extend_from_slice(&b.to_le_bytes());
        send.extend_from_slice(&c.to_le_bytes());
    }
    let recv = comm
        .alltoallv(&send, &scounts, &sdispls, &rcounts, &rdispls)
        .expect("alltoallv");
    *data = recv
        .chunks_exact(24)
        .map(|c| {
            (
                u64::from_le_bytes(c[..8].try_into().unwrap()),
                u64::from_le_bytes(c[8..16].try_into().unwrap()),
                u64::from_le_bytes(c[16..].try_into().unwrap()),
            )
        })
        .collect();
    data.sort_unstable();
}
// LOC-END suffix_plain

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suffix::{naive_suffix_array, suffix_array_prefix_doubling, text_block};

    fn check(text: &[u8], p: usize) {
        let want = naive_suffix_array(text);
        let got: Vec<u64> = kamping::run(p, |comm| {
            let local = text_block(text, p, comm.rank());
            suffix_array_prefix_doubling_plain(comm.raw(), &local, text.len() as u64)
        })
        .into_iter()
        .flatten()
        .collect();
        assert_eq!(got, want, "text {:?} p={p}", String::from_utf8_lossy(text));
    }

    #[test]
    fn plain_matches_naive() {
        for p in [1, 2, 4] {
            check(b"banana", p);
            check(b"mississippi river delta", p);
        }
    }

    #[test]
    fn plain_and_kamping_agree() {
        let text = b"the quick brown fox jumps over the lazy dog";
        kamping::run(3, |comm| {
            let local = text_block(text, comm.size(), comm.rank());
            let a = suffix_array_prefix_doubling_plain(comm.raw(), &local, text.len() as u64);
            let b = suffix_array_prefix_doubling(&comm, &local, text.len() as u64).unwrap();
            assert_eq!(a, b);
        });
    }

    #[test]
    fn plain_repetitive_text() {
        check(&[b'z'; 33], 3);
    }
}
