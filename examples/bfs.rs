//! Distributed BFS over the three graph families of Fig. 10, comparing
//! all frontier-exchange strategies (paper §IV-B, §V-A).
//!
//! Run with `cargo run --release --example bfs -- [ranks] [vertices_per_rank]`.

use kamping_graphs::bfs::{bfs_with_strategy, ExchangeStrategy};
use kamping_graphs::gen::{gnm, rgg2d, rhg, rhg_radius};
use kamping_graphs::UNREACHED;

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let per_rank: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1 << 10);
    let n = per_rank * ranks as u64;

    kamping::run(ranks, |comm| {
        let families: Vec<(&str, kamping_graphs::DistGraph)> = vec![
            ("GNM", gnm(&comm, n, 8 * n, 1).unwrap()),
            (
                "RGG-2D",
                rgg2d(&comm, n, (16.0 / n as f64).sqrt(), 2).unwrap(),
            ),
            ("RHG", rhg(&comm, n, rhg_radius(n, 16.0), 3).unwrap()),
        ];
        for (name, g) in &families {
            for strategy in ExchangeStrategy::ALL {
                let before = comm.profile();
                let t = std::time::Instant::now();
                let dist = bfs_with_strategy(&comm, g, 0, strategy).unwrap();
                let elapsed = t.elapsed();
                let delta = comm.profile().since(&before);
                let reached = dist.iter().filter(|&&d| d != UNREACHED).count() as u64;
                let total = comm.allreduce_single(reached, |a, b| a + b).unwrap();
                let depth = comm
                    .allreduce_single(
                        dist.iter()
                            .copied()
                            .filter(|&d| d != UNREACHED)
                            .max()
                            .unwrap_or(0),
                        |a, b| a.max(b),
                    )
                    .unwrap();
                if comm.rank() == 0 {
                    println!(
                        "{name:7} {:22} reached {total:6} depth {depth:3} time {elapsed:9.3?} msgs/rank {}",
                        strategy.label(),
                        delta.max_messages_per_rank(),
                    );
                }
            }
            if comm.rank() == 0 {
                println!();
            }
        }
    });
}
