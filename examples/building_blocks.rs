//! The "general building blocks for distributed computing" of paper §V in
//! one program: the STL-like distributed sorter plugin, connected
//! components, triangle counting (the §V-A-cited application of sparse
//! exchange), and the cross-rank measurement module timing it all.
//!
//! Run with `cargo run --release --example building_blocks -- [ranks]`.

use kamping::measurements::Timer;
use kamping_graphs::components::{component_count, connected_components};
use kamping_graphs::gen::{gnm, rhg, rhg_radius};
use kamping_graphs::triangles::count_triangles;
use kamping_sort::DistributedSorter;

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    kamping::run(ranks, |comm| {
        let mut timer = Timer::new();

        // STL-like distributed sort (the §V sorter plugin).
        let mut data: Vec<u64> = (0..20_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) ^ comm.rank() as u64)
            .collect();
        timer.time("sort", || comm.sort_distributed(&mut data).unwrap());
        assert!(kamping_sort::sample_sort::is_globally_sorted(&comm, &data).unwrap());

        // Connected components on a sparse random graph.
        let g = timer.time("gen_gnm", || gnm(&comm, 4000, 3000, 7).unwrap());
        let labels = timer.time("components", || connected_components(&comm, &g).unwrap());
        let k = component_count(&comm, &labels).unwrap();

        // Triangles of a hyperbolic graph (hubs make them plentiful).
        let h = timer.time("gen_rhg", || {
            rhg(&comm, 1500, rhg_radius(1500, 10.0), 5).unwrap()
        });
        let triangles = timer.time("triangles", || count_triangles(&comm, &h).unwrap());

        // Aggregate timings across ranks (the measurements module).
        let agg = timer.aggregate(&comm).unwrap();
        if comm.rank() == 0 {
            println!("building_blocks OK on {ranks} ranks");
            println!("  components of G(4000, 3000): {k}");
            println!("  triangles of RHG(1500):      {triangles}");
            println!(
                "  {:<12} {:>10} {:>10} {:>10}",
                "region", "min ms", "mean ms", "max ms"
            );
            for (name, a) in &agg {
                println!(
                    "  {:<12} {:>10.3} {:>10.3} {:>10.3}",
                    name,
                    a.min * 1e3,
                    a.mean * 1e3,
                    a.max * 1e3
                );
            }
        }
    });
}
