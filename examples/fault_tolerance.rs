//! User-level failure mitigation (paper §V-B, Fig. 12): a rank dies in
//! the middle of an iterative computation; the survivors catch the
//! failure as a `Result`, revoke the communicator, shrink it, and keep
//! computing.
//!
//! Run with `cargo run --example fault_tolerance`.

use kamping_plugins::UlfmPlugin;

fn main() {
    let results = kamping::run(6, |mut comm| {
        let me = comm.rank();
        // Iteratively sum "work contributions"; rank 4 crashes at step 3.
        let mut total = 0u64;
        let mut step = 0u64;
        while step < 8 {
            if me == 4 && step == 3 {
                eprintln!("rank 4: simulating hardware failure");
                comm.simulate_failure();
                return (me, total, comm.size());
            }
            match comm.allreduce_single(step + me as u64, |a, b| a + b) {
                Ok(v) => {
                    total += v;
                    step += 1;
                }
                // Fig. 12's recovery block, with Results instead of
                // exceptions:
                Err(e) if e.is_process_failure() => {
                    if !comm.is_revoked() {
                        comm.revoke();
                    }
                    let survivors = comm.survivors().len();
                    comm = comm.shrink().unwrap();
                    eprintln!("rank {me}: recovered, {survivors} survivors, retrying step {step}");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        (me, total, comm.size())
    });

    // All five survivors completed 8 steps on the shrunk communicator.
    let survivors: Vec<_> = results.iter().filter(|&&(r, _, _)| r != 4).collect();
    assert_eq!(survivors.len(), 5);
    for &&(rank, total, final_size) in &survivors {
        assert_eq!(
            final_size, 5,
            "rank {rank} ended on the shrunk communicator"
        );
        assert!(total > 0);
    }
    println!("fault_tolerance OK: 5 survivors completed after losing rank 4");
}
