//! Graph clustering with size-constrained label propagation — the
//! dKaMinPar component of paper §IV-B, run end-to-end: generate a graph
//! with planted communities, cluster it with both abstraction-layer
//! variants, and report agreement and quality.
//!
//! Run with `cargo run --release --example partition -- [ranks]`.

use std::collections::HashMap;

use kamping_graphs::label_propagation::{label_propagation, LpImpl};
use kamping_graphs::DistGraph;

/// A ring of dense 16-vertex communities with sparse bridges.
fn community_graph(comm: &kamping::Communicator, communities: u64) -> DistGraph {
    let size = 16u64;
    let n = communities * size;
    let mut edges = Vec::new();
    for c in 0..communities {
        let base = c * size;
        for a in 0..size {
            for b in 0..size {
                if a != b && (a + b) % 3 != 0 {
                    edges.push((base + a, base + b));
                }
            }
        }
        // one bridge to the next community
        let next = ((c + 1) % communities) * size;
        edges.push((base, next));
        edges.push((next, base));
    }
    DistGraph::from_scattered_edges(comm, n, edges).expect("graph build")
}

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    kamping::run(ranks, |comm| {
        let g = community_graph(&comm, 8);
        let t = std::time::Instant::now();
        let plain = label_propagation(&comm, &g, 20, 8, LpImpl::Plain).unwrap();
        let t_plain = t.elapsed();
        let t = std::time::Instant::now();
        let kamp = label_propagation(&comm, &g, 20, 8, LpImpl::Kamping).unwrap();
        let t_kamping = t.elapsed();
        assert_eq!(
            plain, kamp,
            "both layers must produce identical clusterings"
        );

        // Quality: most vertices should share a label with their community.
        let all = comm.allgatherv_vec(&kamp).unwrap();
        let mut clusters: HashMap<u64, u64> = HashMap::new();
        for &l in &all {
            *clusters.entry(l).or_insert(0) += 1;
        }
        if comm.rank() == 0 {
            let biggest = clusters.values().max().copied().unwrap_or(0);
            println!(
                "partition OK: {} clusters over {} vertices (largest {biggest})",
                clusters.len(),
                all.len()
            );
            println!("  plain layer  : {t_plain:?}");
            println!("  kamping layer: {t_kamping:?}");
            assert!(clusters.len() <= 16, "communities should collapse");
        }
    });
}
