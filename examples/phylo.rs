//! The RAxML-NG-like inference kernel (paper §IV-C, Fig. 11): the same
//! likelihood loop through the hand-written abstraction layer and through
//! kamping, with identical results and comparable call rates.
//!
//! Run with `cargo run --release --example phylo -- [ranks] [iterations]`.

use kamping_phylo::{run_inference, Layer};

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let iterations: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);

    kamping::run(ranks, |comm| {
        let t = std::time::Instant::now();
        let plain = run_inference(&comm, Layer::Plain, iterations, 200, 4, 10).unwrap();
        let t_plain = t.elapsed();

        let t = std::time::Instant::now();
        let kamp = run_inference(&comm, Layer::Kamping, iterations, 200, 4, 10).unwrap();
        let t_kamping = t.elapsed();

        assert_eq!(plain.final_score.to_bits(), kamp.final_score.to_bits());

        if comm.rank() == 0 {
            let rate_plain = plain.comm_calls as f64 / t_plain.as_secs_f64();
            let rate_kamp = kamp.comm_calls as f64 / t_kamping.as_secs_f64();
            println!(
                "phylo OK: identical final log-likelihood {:.6}",
                plain.final_score
            );
            println!("  plain layer  : {t_plain:9.3?} ({rate_plain:9.0} comm calls/s)");
            println!("  kamping layer: {t_kamping:9.3?} ({rate_kamp:9.0} comm calls/s)");
            println!(
                "  overhead     : {:+.1}%",
                (t_kamping.as_secs_f64() / t_plain.as_secs_f64() - 1.0) * 100.0
            );
        }
    });
}
