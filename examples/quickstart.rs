//! Quickstart: the three abstraction levels of kamping-rs (paper Fig. 1).
//!
//! Run with `cargo run --example quickstart`.

use kamping::prelude::*;

fn main() {
    // `kamping::run` plays the role of `mpirun -n 4`: four ranks execute
    // the closure, each with its own communicator.
    kamping::run(4, |comm| {
        let me = comm.rank();
        let v: Vec<f64> = vec![me as f64; me + 1];

        // ----- Level 1: concise code with sensible defaults (Fig. 1 (1)).
        // Receive counts are exchanged internally, displacements computed,
        // the result is returned by value.
        let v_global = comm.allgatherv_vec(&v).unwrap();
        assert_eq!(v_global.len(), 1 + 2 + 3 + 4);

        // ----- Level 2: detailed control of each parameter (Fig. 1 (2)).
        // Named parameters in any order; out-parameters change the result
        // type; resize policies control the memory management.
        let mut rc: Vec<usize> = Vec::new();
        comm.allgatherv(send_buf(&v))
            .recv_buf_resize::<ResizeToFit, f64>(&mut Vec::new())
            .recv_counts_out()
            .call()
            .map(|mut r| rc = r.extract_recv_counts())
            .unwrap();
        assert_eq!(rc, vec![1, 2, 3, 4]);

        // Or with everything pre-allocated and checked (no hidden allocation):
        let mut out = vec![0.0f64; 10];
        let counts = [1usize, 2, 3, 4];
        comm.allgatherv(send_buf(&v))
            .recv_buf(&mut out) // NoResize: errors instead of allocating
            .recv_counts(&counts) // no counts exchange happens
            .call()
            .unwrap();
        assert_eq!(out, v_global);

        // ----- Level 3: the raw substrate, for plain-MPI-style code.
        let mut bytes = if me == 0 {
            b"hello".to_vec()
        } else {
            Vec::new()
        };
        comm.raw().bcast(&mut bytes, 0).unwrap();
        assert_eq!(bytes, b"hello");

        // A reduction with a lambda, and one with a standard functor.
        let sum = comm.allreduce_single(me as u64 + 1, |a, b| a + b).unwrap();
        assert_eq!(sum, 10);

        if me == 0 {
            println!(
                "quickstart OK: gathered {} elements on {} ranks",
                v_global.len(),
                comm.size()
            );
        }
    });
}
