//! Reproducible reduction (paper §V-C, Fig. 13): the same data summed on
//! different numbers of ranks gives *bitwise identical* results, while a
//! naive reduction's rounding depends on the communicator size.
//!
//! Run with `cargo run --example reproducible_reduce`.

use kamping_plugins::ReproducibleReduce;

fn chunks(data: &[f64], p: usize) -> Vec<Vec<f64>> {
    let base = data.len() / p;
    let extra = data.len() % p;
    let mut out = Vec::new();
    let mut off = 0;
    for r in 0..p {
        let len = base + usize::from(r < extra);
        out.push(data[off..off + len].to_vec());
        off += len;
    }
    out
}

fn main() {
    // Mixed magnitudes: float addition order visibly matters.
    let data: Vec<f64> = (0..1013)
        .map(|i| {
            if i % 5 == 0 {
                1e15
            } else {
                (i as f64).sin() * 1e-3
            }
        })
        .collect();

    println!(
        "{:>6} {:>24} {:>24}",
        "ranks", "naive allreduce", "reproducible_allreduce"
    );
    let mut naive_results = Vec::new();
    let mut repro_results = Vec::new();
    for p in [1usize, 2, 3, 4, 6, 8] {
        let parts = chunks(&data, p);
        let (naive, repro) = kamping::run(p, |comm| {
            let local = &parts[comm.rank()];
            let local_sum: f64 = local.iter().sum();
            let naive = comm.allreduce_single(local_sum, |a, b| a + b).unwrap();
            let repro = comm
                .reproducible_allreduce(local, |a, b| a + b)
                .unwrap()
                .unwrap();
            (naive, repro)
        })
        .into_iter()
        .next()
        .unwrap();
        println!(
            "{p:>6} {:>24} {:>24}",
            format!("{naive:.6e}"),
            format!("{repro:.6e}")
        );
        naive_results.push(naive.to_bits());
        repro_results.push(repro.to_bits());
    }

    let repro_identical = repro_results.iter().all(|&b| b == repro_results[0]);
    let naive_identical = naive_results.iter().all(|&b| b == naive_results[0]);
    assert!(repro_identical, "reproducible reduce must not depend on p");
    println!();
    println!("reproducible results bitwise identical across rank counts: {repro_identical}");
    println!("naive results bitwise identical across rank counts:        {naive_identical}");
}
