//! Distributed sample sort (paper §IV-A, Fig. 7).
//!
//! Sorts a distributed array of random integers with all three
//! implementations (kamping / plain / MPL-like lowering) and verifies they
//! produce identical globally sorted output.
//!
//! Run with `cargo run --release --example sample_sort -- [ranks] [n_per_rank]`.

use kamping_sort::{sample_sort_kamping, sample_sort_mpl_like, sample_sort_plain};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);

    kamping::run(ranks, |comm| {
        let mut rng = SmallRng::seed_from_u64(1234 + comm.rank() as u64);
        let data: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();

        let mut a = data.clone();
        let t = std::time::Instant::now();
        sample_sort_kamping(&comm, &mut a, 7).unwrap();
        let t_kamping = t.elapsed();

        let mut b = data.clone();
        let t = std::time::Instant::now();
        sample_sort_plain(comm.raw(), &mut b, 7);
        let t_plain = t.elapsed();

        let mut c = data.clone();
        let t = std::time::Instant::now();
        sample_sort_mpl_like(&comm, &mut c, 7).unwrap();
        let t_mpl = t.elapsed();

        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(kamping_sort::sample_sort::is_globally_sorted(&comm, &a).unwrap());

        if comm.rank() == 0 {
            println!("sample_sort OK on {ranks} ranks x {n} elements");
            println!("  kamping : {t_kamping:?}");
            println!("  plain   : {t_plain:?}");
            println!("  mpl-like: {t_mpl:?}");
        }
    });
}
