//! Distributed sample sort (paper §IV-A, Fig. 7).
//!
//! Sorts a distributed array of random integers with all three
//! implementations (kamping / plain / MPL-like lowering) and verifies they
//! produce identical globally sorted output. Per-implementation timings
//! are collected in a [`TimerTree`] and printed as a cross-rank
//! min/mean/max aggregate (the `kamping::measurements` workflow).
//!
//! Run with `cargo run --release --example sample_sort -- [ranks] [n_per_rank]`.

use kamping_mpi::measurements::TimerTree;
use kamping_sort::{sample_sort_kamping, sample_sort_mpl_like, sample_sort_plain};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);

    kamping::run(ranks, |comm| {
        let mut rng = SmallRng::seed_from_u64(1234 + comm.rank() as u64);
        let data: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let mut timers = TimerTree::new();
        timers.counter_put("elements_per_rank", n as f64);

        let mut a = data.clone();
        timers.start("kamping");
        sample_sort_kamping(&comm, &mut a, 7).unwrap();
        timers.synchronized_stop(comm.raw()).unwrap();

        let mut b = data.clone();
        timers.start("plain");
        sample_sort_plain(comm.raw(), &mut b, 7);
        timers.synchronized_stop(comm.raw()).unwrap();

        let mut c = data.clone();
        timers.start("mpl_like");
        sample_sort_mpl_like(&comm, &mut c, 7).unwrap();
        timers.synchronized_stop(comm.raw()).unwrap();

        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(kamping_sort::sample_sort::is_globally_sorted(&comm, &a).unwrap());

        // Every rank participates in the aggregation; rank 0 prints the
        // min/mean/max tree (the slowest rank dominates `max`).
        let agg = timers.aggregate(comm.raw()).unwrap();
        if comm.rank() == 0 {
            println!("sample_sort OK on {ranks} ranks x {n} elements");
            print!("{}", agg.render());
        }
    });
}
