//! Transparent, opt-in serialization (paper §III-D3, Fig. 5) and safe
//! non-blocking communication (§III-E, Fig. 6).
//!
//! Run with `cargo run --example serialization`.

use std::collections::HashMap;

use kamping::prelude::*;
use kamping_serial::serial_struct;

#[derive(Debug, Clone, PartialEq)]
struct Alignment {
    taxa: Vec<String>,
    sites: Vec<Vec<u8>>,
    metadata: HashMap<String, String>,
}
serial_struct!(Alignment {
    taxa,
    sites,
    metadata
});

fn main() {
    kamping::run(3, |comm| {
        type Dict = HashMap<String, String>;

        // ---- Fig. 5: sending an unordered_map through serialization.
        if comm.rank() == 0 {
            let mut data: Dict = HashMap::new();
            data.insert("species".into(), "Pan troglodytes".into());
            data.insert("gene".into(), "cytb".into());
            comm.send_object(as_serialized(&data), destination(1))
                .unwrap();
        } else if comm.rank() == 1 {
            let dict = comm
                .recv_object(as_deserializable::<Dict>(), source(0))
                .unwrap();
            assert_eq!(dict["gene"], "cytb");
        }

        // ---- Custom nested struct with the serial_struct! macro.
        let mut aln = if comm.rank() == 0 {
            Alignment {
                taxa: vec!["human".into(), "chimp".into()],
                sites: vec![vec![0, 1, 2, 3], vec![3, 2, 1, 0]],
                metadata: [("source".to_string(), "example".to_string())].into(),
            }
        } else {
            Alignment {
                taxa: vec![],
                sites: vec![],
                metadata: HashMap::new(),
            }
        };
        comm.bcast_object(&mut aln, 0).unwrap();
        assert_eq!(aln.taxa.len(), 2);

        // ---- Fig. 6: ownership-safe non-blocking communication. The
        // buffer is *moved* into isend — Rust will not compile a use of
        // `v` before `wait()` hands it back.
        if comm.rank() == 0 {
            let v: Vec<u64> = (0..100).collect();
            let r1 = comm
                .isend(send_buf_owned(v), destination(1))
                .call()
                .unwrap();
            // ... v is inaccessible here (moved) ...
            let v = r1.wait().unwrap(); // moved back after completion
            assert_eq!(v.len(), 100);
        } else if comm.rank() == 1 {
            let r2 = comm.irecv::<u64>(source(0)).recv_count(100).call().unwrap();
            let data = r2.wait().unwrap(); // data only returned once complete
            assert_eq!(data[99], 99);
        }

        comm.barrier().unwrap();
        if comm.rank() == 0 {
            println!("serialization OK: dict, nested struct and safe isend/irecv round-tripped");
        }
    });
}
