//! Distributed suffix-array construction by prefix doubling
//! (paper §IV-A).
//!
//! Run with `cargo run --release --example suffix_array -- [ranks] [text_len]`.

use kamping_sort::suffix::{naive_suffix_array, suffix_array_prefix_doubling, text_block};
use kamping_sort::suffix_array_dc3;
use kamping_sort::suffix_plain::suffix_array_prefix_doubling_plain;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let len: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);

    // A DNA-like text with repetitions (suffix sorting's hard case).
    let mut rng = SmallRng::seed_from_u64(4242);
    let mut text: Vec<u8> = Vec::with_capacity(len);
    while text.len() < len {
        if rng.gen_bool(0.3) {
            text.extend_from_slice(b"ACGTACGT"); // planted repeats
        } else {
            text.push(*b"ACGT".get(rng.gen_range(0..4)).unwrap());
        }
    }
    text.truncate(len);

    let sa_distributed: Vec<u64> = kamping::run(ranks, |comm| {
        let local = text_block(&text, comm.size(), comm.rank());
        let t = std::time::Instant::now();
        let sa = suffix_array_prefix_doubling(&comm, &local, text.len() as u64).unwrap();
        let t_pd = t.elapsed();
        let t = std::time::Instant::now();
        let sa_plain = suffix_array_prefix_doubling_plain(comm.raw(), &local, text.len() as u64);
        let t_plain = t.elapsed();
        let t = std::time::Instant::now();
        let sa_dc3 = suffix_array_dc3(&comm, &local, text.len() as u64).unwrap();
        let t_dc3 = t.elapsed();
        assert_eq!(sa, sa_plain, "plain agrees");
        assert_eq!(sa, sa_dc3, "DC3 agrees");
        if comm.rank() == 0 {
            println!("prefix doubling (kamping): {t_pd:?} on {ranks} ranks");
            println!("prefix doubling (plain)  : {t_plain:?}");
            println!("DC3 (kamping)            : {t_dc3:?}");
        }
        sa
    })
    .into_iter()
    .flatten()
    .collect();

    let t = std::time::Instant::now();
    let sa_naive = naive_suffix_array(&text);
    println!("sequential reference       : {:?}", t.elapsed());

    assert_eq!(sa_distributed, sa_naive, "suffix arrays agree");
    println!(
        "suffix_array OK: n = {len}, SA starts with {:?}",
        &sa_distributed[..8.min(len)]
    );
}
