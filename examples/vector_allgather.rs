//! The vector-allgather running example of the paper (Fig. 2 / Fig. 3 /
//! Table I, row "vector allgather"): concatenate everyone's
//! variable-length vector on every rank.
//!
//! The two delimited implementations below are what the `table1_loc`
//! harness counts: `plain` is the paper's Fig. 2 (14 LoC of MPI there),
//! `kamping` the Fig. 1 one-liner. The gradual migration of Fig. 3 is
//! shown as well.
//!
//! Run with `cargo run --example vector_allgather`.

use kamping::prelude::*;
use kamping_mpi::coll::excl_prefix_sum;
use kamping_mpi::RawComm;

// LOC-BEGIN allgather_plain
/// Fig. 2: allgathering a vector using the raw (plain-MPI-style) API.
fn vector_allgather_plain(comm: &RawComm, v: &[u64]) -> Vec<u64> {
    let size = comm.size();
    let rank = comm.rank();
    let mut rc = vec![0usize; size];
    rc[rank] = v.len() * 8;
    // exchange counts
    let mut wire = vec![0u8; 8];
    wire.copy_from_slice(&(rc[rank] as u64).to_le_bytes());
    let all = comm.allgather(&wire).expect("allgather");
    for (i, c) in all.chunks_exact(8).enumerate() {
        rc[i] = u64::from_le_bytes(c.try_into().unwrap()) as usize;
    }
    // compute displacements
    let rd = excl_prefix_sum(&rc);
    let n_glob = rc[size - 1] + rd[size - 1];
    // allocate receive buffer and exchange
    let mut send = Vec::with_capacity(v.len() * 8);
    for x in v {
        send.extend_from_slice(&x.to_le_bytes());
    }
    let bytes = comm.allgatherv(&send, &rc).expect("allgatherv");
    assert_eq!(bytes.len(), n_glob);
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}
// LOC-END allgather_plain

// LOC-BEGIN allgather_kamping
/// Fig. 1 (1): the same operation through kamping.
fn vector_allgather_kamping(comm: &Communicator, v: &[u64]) -> Vec<u64> {
    comm.allgatherv_vec(v).unwrap()
}
// LOC-END allgather_kamping

/// Fig. 3: the migration path — each version is semantically identical.
fn migration_demo(comm: &Communicator, v: &[u64]) -> KResult<()> {
    // Version 1: kamping's interface, everything explicit.
    let mut rc = vec![0usize; comm.size()];
    rc[comm.rank()] = v.len();
    comm.allgather_inplace(send_recv_buf(&mut rc)).call()?;
    let rd = {
        let mut acc = 0;
        rc.iter()
            .map(|&c| {
                let d = acc;
                acc += c;
                d
            })
            .collect::<Vec<_>>()
    };
    let mut v_glob = vec![0u64; rc.iter().sum()];
    comm.allgatherv(send_buf(v))
        .recv_buf(&mut v_glob)
        .recv_counts(&rc)
        .recv_displs(&rd)
        .call()?;

    // Version 2: displacements computed implicitly, buffer resized to fit.
    let mut v_glob2: Vec<u64> = Vec::new();
    comm.allgatherv(send_buf(v))
        .recv_buf_resize::<ResizeToFit, u64>(&mut v_glob2)
        .recv_counts(&rc)
        .call()?;

    // Version 3: counts exchanged automatically, result returned by value.
    let v_glob3 = comm.allgatherv_vec(v)?;

    assert_eq!(v_glob, v_glob2);
    assert_eq!(v_glob, v_glob3);
    Ok(())
}

fn main() {
    kamping::run(4, |comm| {
        let v: Vec<u64> = (0..=comm.rank() as u64).collect();

        let plain = vector_allgather_plain(comm.raw(), &v);
        let kamp = vector_allgather_kamping(&comm, &v);
        assert_eq!(plain, kamp, "both implementations agree");

        migration_demo(&comm, &v).unwrap();

        if comm.rank() == 0 {
            println!("vector_allgather OK: {:?}", kamp);
        }
    });
}
