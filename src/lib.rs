//! # kamping-repro — umbrella crate of the kamping-rs workspace
//!
//! Re-exports the public surface of every workspace crate so that the
//! examples (`examples/`) and the cross-crate integration tests (`tests/`)
//! can use a single dependency. Library users should depend on the
//! individual crates instead:
//!
//! * [`kamping`] — the binding layer (the paper's contribution)
//! * [`kamping_mpi`] — the message-passing substrate
//! * [`kamping_plugins`] — grid/sparse all-to-all, ULFM, reproducible reduce
//! * [`kamping_serial`] — binary serialization
//! * [`kamping_graphs`] — graph generators, BFS, label propagation
//! * [`kamping_sort`] — sample sort and suffix arrays
//! * [`kamping_phylo`] — the RAxML-NG-like mini application

pub use kamping;
pub use kamping_graphs;
pub use kamping_mpi;
pub use kamping_phylo;
pub use kamping_plugins;
pub use kamping_serial;
pub use kamping_sort;
