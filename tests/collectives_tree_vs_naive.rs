//! The logarithmic collective algorithms must be *observationally
//! equivalent* to the retained linear/naive baselines: same bytes on every
//! rank, for every communicator size from 1 to 16 — in particular the
//! non-power-of-two sizes where recursive doubling hands over to Bruck and
//! binomial trees go ragged.
//!
//! The naive variants (`bcast_naive`, `reduce_naive`, `allgather_naive`,
//! `alltoall_linear`, `barrier_naive`) are always compiled, so both sides
//! run in the same process on the same data.

use kamping_mpi::Universe;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

const SIZES: [usize; 10] = [1, 2, 3, 4, 5, 7, 8, 13, 16, 64];

fn rank_bytes(seed: u64, rank: usize, len: usize) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ (rank as u64) << 32);
    (0..len).map(|_| rng.next_u32() as u8).collect()
}

#[test]
fn bcast_tree_matches_naive() {
    for p in SIZES {
        for len in [0usize, 1, 31, 32, 33, 1000] {
            let data = rank_bytes(0xB0, 0, len);
            let outs = Universe::run(p, |comm| {
                let root = p / 2;
                let seed = if comm.rank() == root {
                    data.clone()
                } else {
                    Vec::new()
                };
                let mut tree = seed.clone();
                comm.bcast(&mut tree, root).unwrap();
                let mut naive = seed;
                comm.bcast_naive(&mut naive, root).unwrap();
                assert_eq!(tree, naive, "p={p} len={len} rank={}", comm.rank());
                tree
            });
            for o in outs {
                assert_eq!(o, data, "p={p} len={len}");
            }
        }
    }
}

#[test]
fn reduce_tree_matches_naive() {
    let sum: kamping_mpi::ByteOp<'_> = &|acc, x| {
        for (a, b) in acc.chunks_exact_mut(8).zip(x.chunks_exact(8)) {
            let s = u64::from_le_bytes(a.try_into().unwrap())
                .wrapping_add(u64::from_le_bytes(b.try_into().unwrap()));
            a.copy_from_slice(&s.to_le_bytes());
        }
    };
    for p in SIZES {
        for elems in [1usize, 4, 17] {
            let outs = Universe::run(p, |comm| {
                let mine: Vec<u8> = (0..elems)
                    .flat_map(|e| ((comm.rank() * 1000 + e) as u64).to_le_bytes())
                    .collect();
                let mut tree = mine.clone();
                comm.reduce(&mut tree, sum, 8, 0).unwrap();
                let mut naive = mine;
                comm.reduce_naive(&mut naive, sum, 8, 0).unwrap();
                if comm.rank() == 0 {
                    assert_eq!(tree, naive, "p={p} elems={elems}");
                }
                tree
            });
            // Independent sequential reference at the root.
            let want: Vec<u8> = (0..elems)
                .flat_map(|e| {
                    (0..p)
                        .map(|r| (r * 1000 + e) as u64)
                        .fold(0u64, u64::wrapping_add)
                        .to_le_bytes()
                })
                .collect();
            assert_eq!(outs[0], want, "p={p} elems={elems}");
        }
    }
}

#[test]
fn allgather_log_matches_naive() {
    for p in SIZES {
        for len in [0usize, 1, 9, 257] {
            let outs = Universe::run(p, |comm| {
                let mine = rank_bytes(0xA6, comm.rank(), len);
                let log = comm.allgather(&mine).unwrap();
                let naive = comm.allgather_naive(&mine).unwrap();
                assert_eq!(log, naive, "p={p} len={len} rank={}", comm.rank());
                log
            });
            let want: Vec<u8> = (0..p).flat_map(|r| rank_bytes(0xA6, r, len)).collect();
            for o in outs {
                assert_eq!(o, want, "p={p} len={len}");
            }
        }
    }
}

#[test]
fn allgatherv_log_matches_naive_ragged_counts() {
    for p in SIZES {
        let counts: Vec<usize> = (0..p).map(|r| (r * 5 + 3) % 7).collect();
        let outs = Universe::run(p, |comm| {
            let mine = rank_bytes(0xA7, comm.rank(), counts[comm.rank()]);
            let log = comm.allgatherv(&mine, &counts).unwrap();
            let naive = comm.allgatherv_naive(&mine, &counts).unwrap();
            assert_eq!(log, naive, "p={p} rank={}", comm.rank());
            log
        });
        let want: Vec<u8> = (0..p)
            .flat_map(|r| rank_bytes(0xA7, r, counts[r]))
            .collect();
        for o in outs {
            assert_eq!(o, want, "p={p}");
        }
    }
}

#[test]
fn alltoall_bruck_matches_linear() {
    for p in SIZES {
        // Below and above the Bruck dispatch threshold, plus zero blocks.
        for block in [0usize, 1, 8, 300] {
            let outs = Universe::run(p, |comm| {
                let mut rng = SmallRng::seed_from_u64(0xA2A ^ comm.rank() as u64);
                let send: Vec<u8> = (0..p * block).map(|_| rng.next_u32() as u8).collect();
                let bruck = comm.alltoall_bruck(&send).unwrap();
                let linear = comm.alltoall_linear(&send).unwrap();
                assert_eq!(bruck, linear, "p={p} block={block} rank={}", comm.rank());
                let auto = comm.alltoall(&send).unwrap();
                assert_eq!(auto, linear, "p={p} block={block} rank={}", comm.rank());
                auto
            });
            // Cross-rank reference: rank d's slot s == rank s's slot d.
            for (d, out) in outs.iter().enumerate() {
                for s in 0..p {
                    let mut rng = SmallRng::seed_from_u64(0xA2A ^ s as u64);
                    let sent: Vec<u8> = (0..p * block).map(|_| rng.next_u32() as u8).collect();
                    assert_eq!(
                        &out[s * block..(s + 1) * block],
                        &sent[d * block..(d + 1) * block],
                        "p={p} block={block} {s}->{d}"
                    );
                }
            }
        }
    }
}

#[test]
fn barriers_synchronize_for_all_sizes() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    for p in SIZES {
        let before = AtomicUsize::new(0);
        Universe::run(p, |comm| {
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            assert_eq!(before.load(Ordering::SeqCst), p, "dissemination p={p}");
            comm.barrier_naive().unwrap();
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            assert_eq!(before.load(Ordering::SeqCst), 2 * p, "naive p={p}");
        });
    }
}

#[test]
fn hier_strategy_matches_naive_at_p64() {
    // Force the two-level (node-leader + intra-node) algorithms on a
    // synthetic 4-host topology and check them against the naive
    // baselines at a production-ish rank count.
    use kamping_mpi::CollStrategy;
    let sum: kamping_mpi::ByteOp<'_> = &|acc, x| {
        for (a, b) in acc.chunks_exact_mut(8).zip(x.chunks_exact(8)) {
            let s = u64::from_le_bytes(a.try_into().unwrap())
                .wrapping_add(u64::from_le_bytes(b.try_into().unwrap()));
            a.copy_from_slice(&s.to_le_bytes());
        }
    };
    let p = 64;
    for root in [0usize, 17, 63] {
        let data = rank_bytes(0xB1 ^ root as u64, 0, 777);
        let outs = Universe::run(p, |comm| {
            comm.set_fake_hosts(4);
            comm.set_coll_strategy(CollStrategy::Hier);
            // bcast
            let mut tree = if comm.rank() == root {
                data.clone()
            } else {
                Vec::new()
            };
            comm.bcast(&mut tree, root).unwrap();
            let mut naive = if comm.rank() == root {
                data.clone()
            } else {
                Vec::new()
            };
            comm.bcast_naive(&mut naive, root).unwrap();
            assert_eq!(tree, naive, "bcast root={root} rank={}", comm.rank());
            // reduce + allreduce
            let mine: Vec<u8> = (0..9)
                .flat_map(|e| ((comm.rank() * 1000 + e) as u64).to_le_bytes())
                .collect();
            let mut red = mine.clone();
            comm.reduce(&mut red, sum, 8, root).unwrap();
            let mut red_naive = mine.clone();
            comm.reduce_naive(&mut red_naive, sum, 8, root).unwrap();
            if comm.rank() == root {
                assert_eq!(red, red_naive, "reduce root={root}");
            }
            let mut all = mine.clone();
            comm.allreduce(&mut all, sum, 8).unwrap();
            let mut all_naive = red_naive;
            comm.bcast_naive(&mut all_naive, root).unwrap();
            assert_eq!(all, all_naive, "allreduce root={root} rank={}", comm.rank());
            tree
        });
        for o in outs {
            assert_eq!(o, data, "root={root}");
        }
    }
}

#[test]
fn rabenseifner_auto_kicks_in_and_matches_at_p64() {
    // A >=32 KiB payload at p=64 on one host takes the Rabenseifner
    // reduce-scatter + allgather path under Auto; equivalence vs naive.
    let sum: kamping_mpi::ByteOp<'_> = &|acc, x| {
        for (a, b) in acc.chunks_exact_mut(8).zip(x.chunks_exact(8)) {
            let s = u64::from_le_bytes(a.try_into().unwrap())
                .wrapping_add(u64::from_le_bytes(b.try_into().unwrap()));
            a.copy_from_slice(&s.to_le_bytes());
        }
    };
    let p = 64;
    let elems = 8 * 1024; // 64 KiB
    Universe::run(p, |comm| {
        let mine: Vec<u8> = (0..elems)
            .flat_map(|e| ((comm.rank() * 1_000_003 + e) as u64).to_le_bytes())
            .collect();
        let mut fast = mine.clone();
        comm.allreduce(&mut fast, sum, 8).unwrap();
        let mut naive = mine;
        comm.reduce_naive(&mut naive, sum, 8, 0).unwrap();
        comm.bcast_naive(&mut naive, 0).unwrap();
        assert_eq!(fast, naive, "rank={}", comm.rank());
    });
}

#[test]
fn mixed_sequence_stays_consistent_across_algorithms() {
    // Interleaving tree and naive collectives on one communicator must not
    // desynchronize the collective sequence numbers.
    for p in [3usize, 5, 8] {
        Universe::run(p, |comm| {
            let mut rng = SmallRng::seed_from_u64(99 + comm.rank() as u64);
            for round in 0..10 {
                let mine = vec![rng.gen_range(0u32..=255) as u8; round % 4 + 1];
                let a = comm.allgather(&mine).unwrap();
                let b = comm.allgather_naive(&mine).unwrap();
                assert_eq!(a, b, "p={p} round={round}");
                comm.barrier_naive().unwrap();
                let c = comm.allgather(&mine).unwrap();
                assert_eq!(a, c, "p={p} round={round}");
            }
        });
    }
}
