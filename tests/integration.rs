//! Cross-crate integration tests: scenarios that exercise several layers
//! of the stack together through the public API only.

use std::collections::HashMap;

use kamping::prelude::*;
use kamping_graphs::bfs::{bfs_with_strategy, ExchangeStrategy};
use kamping_graphs::gen::{gnm, rhg, rhg_radius};
use kamping_graphs::UNREACHED;
use kamping_plugins::{GridAlltoall, ReproducibleReduce, SparseAlltoall, UlfmPlugin};
use kamping_serial::serial_struct;
use kamping_sort::{sample_sort_kamping, suffix_array_prefix_doubling};

#[test]
fn bfs_through_every_plugin_on_generated_graph() {
    kamping::run(4, |comm| {
        let g = gnm(&comm, 256, 1024, 5).unwrap();
        let baseline = bfs_with_strategy(&comm, &g, 0, ExchangeStrategy::BuiltinAlltoallv).unwrap();
        for s in [
            ExchangeStrategy::Sparse,
            ExchangeStrategy::Grid,
            ExchangeStrategy::Neighbor,
        ] {
            let d = bfs_with_strategy(&comm, &g, 0, s).unwrap();
            assert_eq!(d, baseline, "{s:?}");
        }
    });
}

#[test]
fn sort_then_suffix_pipeline() {
    // Sample-sort a text's characters to build a histogram, then build the
    // suffix array of the text — two different distributed algorithms over
    // the same communicator.
    kamping::run(3, |comm| {
        let text = b"the quick brown fox jumps over the lazy dog".to_vec();
        let local = kamping_sort::suffix::text_block(&text, comm.size(), comm.rank());

        let mut chars: Vec<u64> = local.iter().map(|&c| c as u64).collect();
        sample_sort_kamping(&comm, &mut chars, 1).unwrap();
        assert!(kamping_sort::sample_sort::is_globally_sorted(&comm, &chars).unwrap());

        let sa = suffix_array_prefix_doubling(&comm, &local, text.len() as u64).unwrap();
        let gathered: Vec<u64> = comm.allgatherv_vec(&sa).unwrap();
        assert_eq!(gathered, kamping_sort::suffix::naive_suffix_array(&text));
    });
}

#[test]
fn ulfm_recovery_then_full_application_continues() {
    kamping::run(5, |mut comm| {
        if comm.rank() == 2 {
            comm.simulate_failure();
            return;
        }
        // Break the communicator, recover...
        let err = loop {
            match comm.allreduce_single(1u64, |a, b| a + b) {
                Err(e) => break e,
                Ok(_) => std::thread::yield_now(), // failure not yet visible
            }
        };
        assert!(err.is_process_failure());
        if !comm.is_revoked() {
            comm.revoke();
        }
        comm = comm.shrink().unwrap();
        assert_eq!(comm.size(), 4);
        // ...then run a whole BFS on the shrunk communicator.
        let g = gnm(&comm, 64, 256, 3).unwrap();
        let d = bfs_with_strategy(&comm, &g, 0, ExchangeStrategy::Sparse).unwrap();
        let reached = d.iter().filter(|&&x| x != UNREACHED).count() as u64;
        let total = comm.allreduce_single(reached, |a, b| a + b).unwrap();
        assert!(total > 0);
    });
}

#[test]
fn serialization_across_subcommunicators() {
    #[derive(Debug, Clone, PartialEq)]
    struct Payload {
        tag: String,
        values: Vec<i64>,
    }
    serial_struct!(Payload { tag, values });

    kamping::run(6, |comm| {
        let sub = comm.split((comm.rank() % 2) as u64, 0).unwrap();
        let mut payload = if sub.rank() == 0 {
            Payload {
                tag: format!("group-{}", comm.rank() % 2),
                values: vec![1, 2, 3],
            }
        } else {
            Payload {
                tag: String::new(),
                values: vec![],
            }
        };
        sub.bcast_object(&mut payload, 0).unwrap();
        assert_eq!(payload.tag, format!("group-{}", comm.rank() % 2));
        assert_eq!(payload.values, vec![1, 2, 3]);
    });
}

#[test]
fn grid_and_sparse_agree_with_dense_on_random_pattern() {
    kamping::run(5, |comm| {
        let p = comm.size();
        let me = comm.rank() as u64;
        let grid = comm.make_grid().unwrap();

        // Sparse pattern: send to (rank*rank) % p only.
        let dest = ((me * me) as usize) % p;
        let msg = vec![me * 100, me * 100 + 1];

        let mut counts = vec![0usize; p];
        counts[dest] = msg.len();
        let dense = comm.alltoallv_vec(&msg, &counts).unwrap();
        let (gridded, _) = grid.alltoallv(&msg, &counts).unwrap();
        let mut buckets = HashMap::new();
        buckets.insert(dest, msg.clone());
        let sparse: Vec<u64> = comm
            .sparse_alltoall(buckets)
            .unwrap()
            .into_iter()
            .flat_map(|m| m.data)
            .collect();

        assert_eq!(dense, gridded);
        assert_eq!(dense, sparse);
    });
}

#[test]
fn reproducible_reduce_over_rhg_degrees() {
    // Reduce a quantity computed from a generated graph: the average
    // inverse degree, reproducibly.
    let reference: Vec<f64> = kamping::run(1, |comm| {
        let g = rhg(&comm, 200, rhg_radius(200, 8.0), 17).unwrap();
        let vals: Vec<f64> = (0..g.local_size())
            .map(|v| 1.0 / (1.0 + (g.offsets[v + 1] - g.offsets[v]) as f64))
            .collect();
        comm.reproducible_allreduce(&vals, |a, b| a + b)
            .unwrap()
            .unwrap()
    });
    for p in [2, 3, 4] {
        let got = kamping::run(p, |comm| {
            let g = rhg(&comm, 200, rhg_radius(200, 8.0), 17).unwrap();
            let vals: Vec<f64> = (0..g.local_size())
                .map(|v| 1.0 / (1.0 + (g.offsets[v + 1] - g.offsets[v]) as f64))
                .collect();
            comm.reproducible_allreduce(&vals, |a, b| a + b)
                .unwrap()
                .unwrap()
        });
        assert!(
            got.iter().all(|x| x.to_bits() == reference[0].to_bits()),
            "p={p}"
        );
    }
}

#[test]
fn nonblocking_pipeline_with_request_pool() {
    kamping::run(4, |comm| {
        // Ring pipeline: isend to the right, irecv from the left, three
        // rounds in flight simultaneously through a pool.
        let right = (comm.rank() + 1) % comm.size();
        let left = (comm.rank() + comm.size() - 1) % comm.size();
        let mut pool = kamping::RequestPool::new();
        let mut sends = Vec::new();
        for round in 0..3u64 {
            let payload = vec![comm.rank() as u64 * 10 + round];
            sends.push(
                comm.isend(send_buf_owned(payload), destination(right))
                    .tag(round as u32)
                    .call()
                    .unwrap(),
            );
            pool.push(
                comm.irecv::<u64>(source(left))
                    .tag(round as u32)
                    .call()
                    .unwrap(),
            );
        }
        let received = pool.wait_all().unwrap();
        for (round, data) in received.iter().enumerate() {
            assert_eq!(data, &vec![left as u64 * 10 + round as u64]);
        }
        for s in sends {
            s.wait().unwrap();
        }
    });
}

#[test]
fn profile_counters_span_the_whole_stack() {
    let (_, profile) = kamping::run_profiled(4, |comm| {
        let g = gnm(&comm, 64, 128, 2).unwrap();
        bfs_with_strategy(&comm, &g, 0, ExchangeStrategy::Sparse).unwrap();
    });
    // The sparse BFS must have used issend + ibarrier, never alltoallv
    // (the graph build uses one alltoallv per rank, though).
    assert!(profile.total_calls(kamping_mpi::Op::Issend) > 0);
    assert!(profile.total_calls(kamping_mpi::Op::Ibarrier) > 0);
}

#[test]
fn communication_level_assertions_catch_bad_counts() {
    use kamping::assertions::{set_assertion_level, AssertionLevel};
    // NOTE: the level is process-global; restore it afterwards.
    kamping::run(2, |comm| {
        set_assertion_level(AssertionLevel::Communication);
        // Counts consistent per-rank lengths but inconsistent across ranks:
        // each rank claims *its own* length for everyone.
        let mine = vec![1u8; comm.rank() + 1];
        let bad = vec![comm.rank() + 1; 2];
        let r = comm.allgatherv(send_buf(&mine)).recv_counts(&bad).call();
        if comm.rank() == 0 {
            // Rank 0's counts [1, 1] disagree with rank 1's actual 2 elems.
            assert!(r.is_err(), "communication assertion must fire");
        }
        set_assertion_level(AssertionLevel::Light);
    });
}

#[test]
fn mixed_collective_stress_matches_reference() {
    // A pseudo-random sequence of collectives over the same communicator,
    // checked against locally computed references — guards against tag or
    // sequence-number confusion between back-to-back operations.
    kamping::run(4, |comm| {
        let p = comm.size() as u64;
        let me = comm.rank() as u64;
        let mut state = 9u64;
        for round in 0..30u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(round);
            match state % 5 {
                0 => {
                    let v = comm.allreduce_single(me + round, |a, b| a + b).unwrap();
                    assert_eq!(v, p * round + p * (p - 1) / 2);
                }
                1 => {
                    let v = comm.allgather_single(me * 10 + round).unwrap();
                    let want: Vec<u64> = (0..p).map(|r| r * 10 + round).collect();
                    assert_eq!(v, want);
                }
                2 => {
                    let data = vec![me + round; me as usize % 3];
                    let all = comm.allgatherv_vec(&data).unwrap();
                    let want: Vec<u64> = (0..p)
                        .flat_map(|r| vec![r + round; r as usize % 3])
                        .collect();
                    assert_eq!(all, want);
                }
                3 => {
                    let v = comm.scan_single(1u64, |a, b| a + b).unwrap();
                    assert_eq!(v, me + 1);
                }
                _ => {
                    let root = (round % p) as usize;
                    let v = comm.bcast_single(me + round, root).unwrap();
                    assert_eq!(v, root as u64 + round);
                }
            }
        }
    });
}

#[test]
fn reduce_scatter_and_sendrecv_replace_roundtrip() {
    kamping::run(3, |comm| {
        // reduce_scatter_block through the raw layer with typed data
        let vals: Vec<u64> = (0..3).map(|b| comm.rank() as u64 * 100 + b).collect();
        let wire = kamping::types::pod_as_bytes(&vals);
        let add = |a: &mut [u8], b: &[u8]| {
            let x = u64::from_le_bytes(a.try_into().unwrap());
            let y = u64::from_le_bytes(b.try_into().unwrap());
            a.copy_from_slice(&(x + y).to_le_bytes());
        };
        let block = comm.raw().reduce_scatter_block(wire, &add, 8).unwrap();
        let got: Vec<u64> = kamping::types::bytes_to_pods(&block).unwrap();
        assert_eq!(got, vec![300 + 3 * comm.rank() as u64]);

        // ring rotation with sendrecv_replace
        let p = comm.size();
        let mut buf = kamping::types::pod_as_bytes(&[comm.rank() as u64]).to_vec();
        comm.raw()
            .sendrecv_replace(
                &mut buf,
                (comm.rank() + 1) % p,
                1,
                (comm.rank() + p - 1) % p,
                1,
            )
            .unwrap();
        let got: Vec<u64> = kamping::types::bytes_to_pods(&buf).unwrap();
        assert_eq!(got, vec![((comm.rank() + p - 1) % p) as u64]);
    });
}
