//! Randomized property tests on the core invariants of the stack:
//! collectives against sequential references, serialization round-trips,
//! sorting permutation/sortedness, reproducible-reduce p-independence and
//! suffix arrays against the naive construction.
//!
//! Each property is driven by a deterministic seeded RNG loop (the vendored
//! `rand` stand-in): every case derives its RNG from a fixed seed and the
//! case index, so failures reproduce exactly. Each case spins up its own
//! universe, so case counts are kept moderate.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use kamping_plugins::ReproducibleReduce;
use kamping_sort::sample_sort_kamping;

const CASES: u64 = 24;

/// Per-case RNG: deterministic in (property seed, case index).
fn case_rng(property_seed: u64, case: u64) -> SmallRng {
    SmallRng::seed_from_u64(property_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ case)
}

fn gen_vec<T>(
    rng: &mut SmallRng,
    len_lo: usize,
    len_hi: usize,
    mut f: impl FnMut(&mut SmallRng) -> T,
) -> Vec<T> {
    let len = rng.gen_range(len_lo..len_hi);
    (0..len).map(|_| f(rng)).collect()
}

fn chunks<T: Clone>(data: &[T], p: usize) -> Vec<Vec<T>> {
    let base = data.len() / p;
    let extra = data.len() % p;
    let mut out = Vec::new();
    let mut off = 0;
    for r in 0..p {
        let len = base + usize::from(r < extra);
        out.push(data[off..off + len].to_vec());
        off += len;
    }
    out
}

#[test]
fn allgatherv_is_concatenation() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let data: Vec<Vec<u32>> = gen_vec(&mut rng, 1, 5, |r| gen_vec(r, 0, 8, |r| r.next_u32()));
        let p = data.len();
        let outs = kamping::run(p, |comm| comm.allgatherv_vec(&data[comm.rank()]).unwrap());
        let want: Vec<u32> = data.concat();
        for o in outs {
            assert_eq!(o, want, "case {case}");
        }
    }
}

#[test]
fn allreduce_equals_fold() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let data: Vec<u32> = gen_vec(&mut rng, 1, 5, |r| r.next_u32());
        let p = data.len();
        let outs = kamping::run(p, |comm| {
            comm.allreduce_single(data[comm.rank()] as u64, |a, b| a.wrapping_add(b))
                .unwrap()
        });
        let want: u64 = data
            .iter()
            .map(|&x| x as u64)
            .fold(0, |a, b| a.wrapping_add(b));
        for o in outs {
            assert_eq!(o, want, "case {case}");
        }
    }
}

#[test]
fn scan_equals_prefix_fold() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let data: Vec<u16> = gen_vec(&mut rng, 1, 6, |r| r.next_u32() as u16);
        let p = data.len();
        let outs = kamping::run(p, |comm| {
            comm.scan_single(data[comm.rank()] as u64, |a, b| a + b)
                .unwrap()
        });
        let mut acc = 0u64;
        for (r, &x) in data.iter().enumerate() {
            acc += x as u64;
            assert_eq!(outs[r], acc, "case {case} rank {r}");
        }
    }
}

#[test]
fn alltoallv_routes_every_element() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        // matrix[s][d] = elements rank s sends to rank d (p = 3 fixed).
        let p = 3;
        let matrix: Vec<Vec<Vec<u16>>> = (0..p)
            .map(|_| {
                (0..p)
                    .map(|_| gen_vec(&mut rng, 0, 4, |r| r.next_u32() as u16))
                    .collect()
            })
            .collect();
        let outs = kamping::run(p, |comm| {
            let me = comm.rank();
            let counts: Vec<usize> = matrix[me].iter().map(Vec::len).collect();
            let data: Vec<u16> = matrix[me].concat();
            comm.alltoallv_vec(&data, &counts).unwrap()
        });
        for d in 0..p {
            let want: Vec<u16> = (0..p).flat_map(|s| matrix[s][d].clone()).collect();
            assert_eq!(outs[d], want, "case {case} dest {d}");
        }
    }
}

#[test]
fn sample_sort_sorts_any_distribution() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let data: Vec<Vec<u64>> = gen_vec(&mut rng, 1, 5, |r| gen_vec(r, 0, 40, |r| r.next_u64()));
        let p = data.len();
        let outs = kamping::run(p, |comm| {
            let mut local = data[comm.rank()].clone();
            sample_sort_kamping(&comm, &mut local, 3).unwrap();
            local
        });
        let got: Vec<u64> = outs.concat();
        let mut want: Vec<u64> = data.concat();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn reproducible_reduce_independent_of_p() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        // Finite f64 inputs spanning magnitudes so summation order matters.
        let data: Vec<f64> = gen_vec(&mut rng, 1, 64, |r| {
            let mag = r.gen_range(0u32..49) as f64 - 24.0;
            (r.next_u32() as f64 / u32::MAX as f64 - 0.5) * mag.exp2()
        });
        let mut bits = Vec::new();
        for p in [1usize, 2, 3] {
            let parts = chunks(&data, p);
            let outs = kamping::run(p, |comm| {
                comm.reproducible_allreduce(&parts[comm.rank()], |a, b| a + b)
                    .unwrap()
                    .unwrap()
            });
            for o in &outs {
                assert_eq!(o.to_bits(), outs[0].to_bits(), "case {case}");
            }
            bits.push(outs[0].to_bits());
        }
        assert!(
            bits.iter().all(|&b| b == bits[0]),
            "case {case}: results differ across p: {bits:?}"
        );
    }
}

#[test]
fn serialization_roundtrips() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let entries = rng.gen_range(0usize..6);
        let mut map = std::collections::HashMap::new();
        for _ in 0..entries {
            let key: String = {
                let len = rng.gen_range(0usize..9);
                (0..len)
                    .map(|_| rng.gen_range(b' '..=b'~') as char)
                    .collect()
            };
            let vals: Vec<i64> = gen_vec(&mut rng, 0, 5, |r| r.next_u64() as i64);
            map.insert(key, vals);
        }
        let wire = kamping_serial::to_bytes(&map);
        let back: std::collections::HashMap<String, Vec<i64>> =
            kamping_serial::from_bytes(&wire).unwrap();
        assert_eq!(back, map, "case {case}");
    }
}

#[test]
fn serializer_never_panics_on_corrupt_input() {
    for case in 0..4 * CASES {
        let mut rng = case_rng(8, case);
        let wire: Vec<u8> = gen_vec(&mut rng, 0, 64, |r| r.next_u32() as u8);
        // Decoding arbitrary bytes must fail gracefully, never panic/OOM.
        let _ = kamping_serial::from_bytes::<std::collections::HashMap<String, Vec<u64>>>(&wire);
        let _ = kamping_serial::from_bytes::<Vec<String>>(&wire);
        let _ = kamping_serial::from_bytes::<(u64, Option<String>, bool)>(&wire);
    }
}

#[test]
fn typedesc_pack_unpack_roundtrip() {
    use kamping_mpi::dtype::TypeDesc;
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        let blocks: Vec<(usize, usize)> = gen_vec(&mut rng, 1, 4, |r| {
            (r.gen_range(0usize..16), r.gen_range(1usize..4))
        });
        let count = rng.gen_range(1usize..3);
        // Normalize to non-overlapping ascending blocks within the extent.
        let mut displ = 0usize;
        let mut norm = Vec::new();
        for (gap, len) in blocks {
            norm.push((displ + gap, len));
            displ += gap + len;
        }
        let extent = displ + 3;
        let desc = TypeDesc::Indexed {
            blocks: norm.clone(),
            extent,
        };
        let src: Vec<u8> = (0..extent * count).map(|i| i as u8).collect();
        let wire = desc.pack_n(&src, count).unwrap();
        assert_eq!(wire.len(), desc.packed_size() * count, "case {case}");
        let mut dst = vec![0xAAu8; extent * count];
        desc.unpack_n(&wire, &mut dst, count).unwrap();
        for e in 0..count {
            for &(d, l) in &norm {
                let a = &src[e * extent + d..e * extent + d + l];
                let b = &dst[e * extent + d..e * extent + d + l];
                assert_eq!(a, b, "case {case}");
            }
        }
    }
}

#[test]
fn dc3_matches_naive() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let text: Vec<u8> = gen_vec(&mut rng, 1, 80, |r| r.gen_range(97u8..100));
        let p = rng.gen_range(1usize..4);
        let want = kamping_sort::suffix::naive_suffix_array(&text);
        let got: Vec<u64> = kamping::run(p, |comm| {
            let local = kamping_sort::suffix::text_block(&text, comm.size(), comm.rank());
            kamping_sort::suffix_array_dc3(&comm, &local, text.len() as u64).unwrap()
        })
        .into_iter()
        .flatten()
        .collect();
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn grid_alltoall_matches_dense() {
    use kamping_plugins::GridAlltoall;
    for case in 0..CASES {
        let mut rng = case_rng(11, case);
        // pattern[s][d] = elements rank s sends to rank d; p = 5 (non-square).
        let p = 5;
        let pattern: Vec<Vec<usize>> = (0..p)
            .map(|_| (0..p).map(|_| rng.gen_range(0usize..4)).collect())
            .collect();
        let outs = kamping::run(p, |comm| {
            let me = comm.rank();
            let counts = pattern[me].clone();
            let data: Vec<u64> = (0..p)
                .flat_map(|d| (0..counts[d]).map(move |k| (me * 1000 + d * 10 + k) as u64))
                .collect();
            let dense = comm.alltoallv_vec(&data, &counts).unwrap();
            let grid = comm.make_grid().unwrap();
            let (gridded, rc) = grid.alltoallv(&data, &counts).unwrap();
            (dense, gridded, rc)
        });
        for (dense, gridded, rc) in outs {
            assert_eq!(dense, gridded, "case {case}");
            let total: usize = rc.iter().sum();
            assert_eq!(total, dense.len(), "case {case}");
        }
    }
}

#[test]
fn sparse_alltoall_matches_dense() {
    use kamping_plugins::SparseAlltoall;
    use std::collections::HashMap;
    for case in 0..CASES {
        let mut rng = case_rng(12, case);
        let p = 4;
        let pattern: Vec<Vec<usize>> = (0..p)
            .map(|_| (0..p).map(|_| rng.gen_range(0usize..3)).collect())
            .collect();
        let outs = kamping::run(p, |comm| {
            let me = comm.rank();
            let counts = pattern[me].clone();
            let data: Vec<u64> = (0..p)
                .flat_map(|d| (0..counts[d]).map(move |k| (me * 1000 + d * 10 + k) as u64))
                .collect();
            let dense = comm.alltoallv_vec(&data, &counts).unwrap();
            let mut buckets: HashMap<usize, Vec<u64>> = HashMap::new();
            let mut off = 0;
            for d in 0..p {
                if counts[d] > 0 {
                    buckets.insert(d, data[off..off + counts[d]].to_vec());
                }
                off += counts[d];
            }
            let sparse: Vec<u64> = comm
                .sparse_alltoall(buckets)
                .unwrap()
                .into_iter()
                .flat_map(|m| m.data)
                .collect();
            (dense, sparse)
        });
        for (dense, sparse) in outs {
            assert_eq!(dense, sparse, "case {case}");
        }
    }
}

#[test]
fn suffix_array_matches_naive() {
    for case in 0..CASES {
        let mut rng = case_rng(13, case);
        let text: Vec<u8> = gen_vec(&mut rng, 1, 60, |r| r.gen_range(97u8..102));
        let p = rng.gen_range(1usize..4);
        let want = kamping_sort::suffix::naive_suffix_array(&text);
        let got: Vec<u64> = kamping::run(p, |comm| {
            let local = kamping_sort::suffix::text_block(&text, comm.size(), comm.rank());
            kamping_sort::suffix::suffix_array_prefix_doubling(&comm, &local, text.len() as u64)
                .unwrap()
        })
        .into_iter()
        .flatten()
        .collect();
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn resize_policies_respect_contracts() {
    use kamping::resize::{GrowOnly, NoResize, ResizePolicy, ResizeToFit};
    for pre in 0usize..8 {
        for incoming in 0usize..8 {
            let mut v = vec![0u8; pre];
            ResizeToFit::prepare(&mut v, incoming, 0).unwrap();
            assert_eq!(v.len(), incoming);

            let mut v = vec![0u8; pre];
            GrowOnly::prepare(&mut v, incoming, 0).unwrap();
            assert_eq!(v.len(), pre.max(incoming));

            let mut v = vec![0u8; pre];
            let r = NoResize::prepare(&mut v, incoming, 0);
            assert_eq!(r.is_ok(), pre >= incoming);
            assert_eq!(v.len(), pre);
        }
    }
}

#[test]
fn bcast_object_arbitrary_depth_smoke() {
    // Universe-heavy; a fixed nested payload.
    kamping::run(3, |comm| {
        let mut v: Vec<Option<(String, Vec<u8>)>> = if comm.rank() == 0 {
            vec![
                Some(("x".into(), vec![1, 2])),
                None,
                Some((String::new(), vec![])),
            ]
        } else {
            Vec::new()
        };
        comm.bcast_object(&mut v, 0).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], Some(("x".into(), vec![1, 2])));
    });
}
