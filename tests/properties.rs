//! Property-based tests (proptest) on the core invariants of the stack:
//! collectives against sequential references, serialization round-trips,
//! sorting permutation/sortedness, reproducible-reduce p-independence and
//! suffix arrays against the naive construction.
//!
//! Each case spins up its own universe, so case counts are kept moderate.

use proptest::collection::vec;
use proptest::prelude::*;

use kamping_plugins::ReproducibleReduce;
use kamping_sort::sample_sort_kamping;

fn chunks<T: Clone>(data: &[T], p: usize) -> Vec<Vec<T>> {
    let base = data.len() / p;
    let extra = data.len() % p;
    let mut out = Vec::new();
    let mut off = 0;
    for r in 0..p {
        let len = base + usize::from(r < extra);
        out.push(data[off..off + len].to_vec());
        off += len;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn allgatherv_is_concatenation(data in vec(vec(any::<u32>(), 0..8), 1..5)) {
        let p = data.len();
        let outs = kamping::run(p, |comm| {
            comm.allgatherv_vec(&data[comm.rank()]).unwrap()
        });
        let want: Vec<u32> = data.concat();
        for o in outs {
            prop_assert_eq!(&o, &want);
        }
    }

    #[test]
    fn allreduce_equals_fold(data in vec(any::<u32>(), 1..5)) {
        let p = data.len();
        let outs = kamping::run(p, |comm| {
            comm.allreduce_single(data[comm.rank()] as u64, |a, b| a.wrapping_add(b)).unwrap()
        });
        let want: u64 = data.iter().map(|&x| x as u64).fold(0, |a, b| a.wrapping_add(b));
        for o in outs {
            prop_assert_eq!(o, want);
        }
    }

    #[test]
    fn scan_equals_prefix_fold(data in vec(any::<u16>(), 1..6)) {
        let p = data.len();
        let outs = kamping::run(p, |comm| {
            comm.scan_single(data[comm.rank()] as u64, |a, b| a + b).unwrap()
        });
        let mut acc = 0u64;
        for (r, &x) in data.iter().enumerate() {
            acc += x as u64;
            prop_assert_eq!(outs[r], acc, "rank {}", r);
        }
    }

    #[test]
    fn alltoallv_routes_every_element(matrix in vec(vec(vec(any::<u16>(), 0..4), 3), 3)) {
        // matrix[s][d] = elements rank s sends to rank d (p = 3 fixed).
        let p = 3;
        let outs = kamping::run(p, |comm| {
            let me = comm.rank();
            let counts: Vec<usize> = matrix[me].iter().map(Vec::len).collect();
            let data: Vec<u16> = matrix[me].concat();
            comm.alltoallv_vec(&data, &counts).unwrap()
        });
        for d in 0..p {
            let want: Vec<u16> = (0..p).flat_map(|s| matrix[s][d].clone()).collect();
            prop_assert_eq!(&outs[d], &want, "dest {}", d);
        }
    }

    #[test]
    fn sample_sort_sorts_any_distribution(data in vec(vec(any::<u64>(), 0..40), 1..5)) {
        let p = data.len();
        let outs = kamping::run(p, |comm| {
            let mut local = data[comm.rank()].clone();
            sample_sort_kamping(&comm, &mut local, 3).unwrap();
            local
        });
        let got: Vec<u64> = outs.concat();
        let mut want: Vec<u64> = data.concat();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn reproducible_reduce_independent_of_p(data in vec(any::<f32>(), 1..64)) {
        // f32 inputs promoted to f64 sums; NaN-free by filtering.
        let data: Vec<f64> = data.into_iter()
            .map(|x| if x.is_finite() { x as f64 } else { 1.0 })
            .collect();
        let mut bits = Vec::new();
        for p in [1usize, 2, 3] {
            let parts = chunks(&data, p);
            let outs = kamping::run(p, |comm| {
                comm.reproducible_allreduce(&parts[comm.rank()], |a, b| a + b)
                    .unwrap().unwrap()
            });
            for o in &outs {
                prop_assert_eq!(o.to_bits(), outs[0].to_bits());
            }
            bits.push(outs[0].to_bits());
        }
        prop_assert!(bits.iter().all(|&b| b == bits[0]), "results differ across p: {:?}", bits);
    }

    #[test]
    fn serialization_roundtrips(map in proptest::collection::hash_map(".{0,8}", vec(any::<i64>(), 0..5), 0..6)) {
        let wire = kamping_serial::to_bytes(&map);
        let back: std::collections::HashMap<String, Vec<i64>> =
            kamping_serial::from_bytes(&wire).unwrap();
        prop_assert_eq!(back, map);
    }

    #[test]
    fn serializer_never_panics_on_corrupt_input(wire in vec(any::<u8>(), 0..64)) {
        // Decoding arbitrary bytes must fail gracefully, never panic/OOM.
        let _ = kamping_serial::from_bytes::<std::collections::HashMap<String, Vec<u64>>>(&wire);
        let _ = kamping_serial::from_bytes::<Vec<String>>(&wire);
        let _ = kamping_serial::from_bytes::<(u64, Option<String>, bool)>(&wire);
    }

    #[test]
    fn typedesc_pack_unpack_roundtrip(
        blocks in vec((0usize..16, 1usize..4), 1..4),
        count in 1usize..3,
    ) {
        use kamping_mpi::dtype::TypeDesc;
        // Normalize to non-overlapping ascending blocks within the extent.
        let mut displ = 0usize;
        let mut norm = Vec::new();
        for (gap, len) in blocks {
            norm.push((displ + gap, len));
            displ += gap + len;
        }
        let extent = displ + 3;
        let desc = TypeDesc::Indexed { blocks: norm.clone(), extent };
        let src: Vec<u8> = (0..extent * count).map(|i| i as u8).collect();
        let wire = desc.pack_n(&src, count).unwrap();
        prop_assert_eq!(wire.len(), desc.packed_size() * count);
        let mut dst = vec![0xAAu8; extent * count];
        desc.unpack_n(&wire, &mut dst, count).unwrap();
        for e in 0..count {
            for &(d, l) in &norm {
                let a = &src[e * extent + d..e * extent + d + l];
                let b = &dst[e * extent + d..e * extent + d + l];
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn dc3_matches_naive(text in vec(97u8..100, 1..80), p in 1usize..4) {
        let want = kamping_sort::suffix::naive_suffix_array(&text);
        let got: Vec<u64> = kamping::run(p, |comm| {
            let local = kamping_sort::suffix::text_block(&text, comm.size(), comm.rank());
            kamping_sort::suffix_array_dc3(&comm, &local, text.len() as u64).unwrap()
        })
        .into_iter()
        .flatten()
        .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn grid_alltoall_matches_dense(pattern in vec(vec(0usize..4, 5), 5)) {
        // pattern[s][d] = elements rank s sends to rank d; p = 5 (non-square).
        use kamping_plugins::GridAlltoall;
        let p = 5;
        let outs = kamping::run(p, |comm| {
            let me = comm.rank();
            let counts = pattern[me].clone();
            let data: Vec<u64> = (0..p)
                .flat_map(|d| (0..counts[d]).map(move |k| (me * 1000 + d * 10 + k) as u64))
                .collect();
            let dense = comm.alltoallv_vec(&data, &counts).unwrap();
            let grid = comm.make_grid().unwrap();
            let (gridded, rc) = grid.alltoallv(&data, &counts).unwrap();
            (dense, gridded, rc)
        });
        for (dense, gridded, rc) in outs {
            prop_assert_eq!(&dense, &gridded);
            let total: usize = rc.iter().sum();
            prop_assert_eq!(total, dense.len());
        }
    }

    #[test]
    fn sparse_alltoall_matches_dense(pattern in vec(vec(0usize..3, 4), 4)) {
        use kamping_plugins::SparseAlltoall;
        use std::collections::HashMap;
        let p = 4;
        let outs = kamping::run(p, |comm| {
            let me = comm.rank();
            let counts = pattern[me].clone();
            let data: Vec<u64> = (0..p)
                .flat_map(|d| (0..counts[d]).map(move |k| (me * 1000 + d * 10 + k) as u64))
                .collect();
            let dense = comm.alltoallv_vec(&data, &counts).unwrap();
            let mut buckets: HashMap<usize, Vec<u64>> = HashMap::new();
            let mut off = 0;
            for d in 0..p {
                if counts[d] > 0 {
                    buckets.insert(d, data[off..off + counts[d]].to_vec());
                }
                off += counts[d];
            }
            let sparse: Vec<u64> = comm
                .sparse_alltoall(buckets)
                .unwrap()
                .into_iter()
                .flat_map(|m| m.data)
                .collect();
            (dense, sparse)
        });
        for (dense, sparse) in outs {
            prop_assert_eq!(dense, sparse);
        }
    }

    #[test]
    fn suffix_array_matches_naive(text in vec(97u8..102, 1..60), p in 1usize..4) {
        let want = kamping_sort::suffix::naive_suffix_array(&text);
        let got: Vec<u64> = kamping::run(p, |comm| {
            let local = kamping_sort::suffix::text_block(&text, comm.size(), comm.rank());
            kamping_sort::suffix::suffix_array_prefix_doubling(&comm, &local, text.len() as u64)
                .unwrap()
        })
        .into_iter()
        .flatten()
        .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn resize_policies_respect_contracts(
        pre in 0usize..8,
        incoming in 0usize..8,
    ) {
        use kamping::resize::{GrowOnly, NoResize, ResizePolicy, ResizeToFit};
        let mut v = vec![0u8; pre];
        ResizeToFit::prepare(&mut v, incoming, 0).unwrap();
        prop_assert_eq!(v.len(), incoming);

        let mut v = vec![0u8; pre];
        GrowOnly::prepare(&mut v, incoming, 0).unwrap();
        prop_assert_eq!(v.len(), pre.max(incoming));

        let mut v = vec![0u8; pre];
        let r = NoResize::prepare(&mut v, incoming, 0);
        prop_assert_eq!(r.is_ok(), pre >= incoming);
        prop_assert_eq!(v.len(), pre);
    }
}

#[test]
fn bcast_object_arbitrary_depth_smoke() {
    // Not proptest (universe-heavy); a fixed nested payload.
    kamping::run(3, |comm| {
        let mut v: Vec<Option<(String, Vec<u8>)>> = if comm.rank() == 0 {
            vec![Some(("x".into(), vec![1, 2])), None, Some((String::new(), vec![]))]
        } else {
            Vec::new()
        };
        comm.bcast_object(&mut v, 0).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], Some(("x".into(), vec![1, 2])));
    });
}
