//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the API subset the workspace's `harness = false` benches use:
//! [`Criterion`] with `sample_size`/`warm_up_time`/`measurement_time`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`]/[`Bencher::iter_custom`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are intentionally simple — per-sample timing with
//! median/min/mean reporting — because the benches themselves do the
//! interesting timing with `iter_custom` over whole simulated worlds.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark driver configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group {name}");
        BenchmarkGroup {
            criterion: self,
            group: name,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let report = run_bench(self, &mut f);
        report.print("", id);
    }
}

/// Identifier shown for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` labelling.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only labelling.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// A set of benchmarks reported under a common prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input` passed through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_bench(self.criterion, &mut |b: &mut Bencher| f(b, input));
        report.print(&self.group, &id.label);
        self
    }

    /// Benchmarks `f` without an input parameter.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.criterion, &mut |b: &mut Bencher| f(b));
        report.print(&self.group, &id.label);
        self
    }

    /// Ends the group (reporting happens eagerly; this is for API parity).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` repetitions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the closure time `iters` iterations itself and report the total.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

struct Report {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Report {
    fn print(&self, group: &str, label: &str) {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let full = if group.is_empty() {
            label.to_string()
        } else {
            format!("{group}/{label}")
        };
        eprintln!(
            "{full:<48} median {:>12}  mean {:>12}  min {:>12}",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(config: &Criterion, f: &mut F) -> Report {
    // Warm up and estimate the per-iteration cost.
    let mut per_iter = {
        let warm_start = Instant::now();
        let mut iters = 1u64;
        let mut last = run_once(f, iters);
        while warm_start.elapsed() < config.warm_up_time && last < Duration::from_millis(100) {
            iters = iters.saturating_mul(2);
            last = run_once(f, iters);
        }
        last.as_secs_f64() / iters as f64
    };
    if per_iter <= 0.0 {
        per_iter = 1e-9;
    }
    // Size each sample so the whole measurement fits the time budget.
    let budget = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    let iters_per_sample = ((budget / per_iter).ceil() as u64).clamp(1, 1 << 24);
    let samples = (0..config.sample_size)
        .map(|_| {
            let d = run_once(f, iters_per_sample);
            d.as_secs_f64() * 1e9 / iters_per_sample as f64
        })
        .collect();
    Report { samples }
}

/// Declares a function running the listed benchmark targets
/// (`name`/`config`/`targets` form and the positional form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_measures() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("shim");
        let mut ran = 0u64;
        g.bench_with_input(BenchmarkId::new("count", 1), &(), |b, _| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_custom_reports_closure_duration() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.bench_function("custom", |b| b.iter_custom(Duration::from_nanos));
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
