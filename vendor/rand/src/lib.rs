//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of the `rand 0.8` API the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`RngCore::next_u64`],
//! [`Rng::gen_range`] over integer ranges and [`Rng::gen_bool`], with
//! [`rngs::SmallRng`] (and [`rngs::StdRng`]) backed by xoshiro256++.
//!
//! Determinism matters more than statistical strength here: every consumer
//! seeds explicitly, and the tests rely on reproducible streams.

/// Low-level generator interface (`rand::RngCore` subset).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// Explicit-seed construction (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to u64 for arithmetic.
    fn to_u64(self) -> u64;
    /// Narrows back after sampling (value is guaranteed in range).
    fn from_u64(v: u64) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformInt for $ty {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $ty }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize);

/// Range argument of [`Rng::gen_range`] (`rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Half-open bounds `[lo, hi)` of the range. Panics if empty.
    fn bounds(self) -> (u64, u64);
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (u64, u64) {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "gen_range called with an empty range");
        (lo, hi)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (u64, u64) {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "gen_range called with an empty range");
        (lo, hi + 1)
    }
}

/// Convenience sampling methods (`rand::Rng` subset).
pub trait Rng: RngCore {
    /// Uniform integer in `range` (half-open or inclusive).
    fn gen_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        let span = hi - lo; // != 0 by SampleRange contract
                            // Lemire-style widening multiply avoids modulo bias for the span
                            // sizes used here without a rejection loop.
        let hi64 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_u64(lo + hi64)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of [0, 1]"
        );
        // 53 uniform mantissa bits, exactly like rand's float conversion.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (`rand::rngs` subset).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family real `SmallRng` uses on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// The workspace never needs a cryptographic stream; `StdRng` aliases
    /// the small generator.
    pub type StdRng = SmallRng;

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let b = rng.gen_range(b'a'..=b'z');
            assert!(b.is_ascii_lowercase());
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(
            (4_000..6_000).contains(&hits),
            "p=0.5 produced {hits}/10000"
        );
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
